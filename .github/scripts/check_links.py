"""Link-check the documentation tree.

Validates every Markdown link in README.md and docs/*.md that points
inside the repository:

* repo-relative file targets must exist on disk;
* ``#fragment`` anchors (own-page or cross-page) must match a heading
  in the target document, using GitHub's heading-slug rules.

External ``http(s)://`` links are skipped — CI must not depend on the
network — as are ``mailto:`` links.  Exit status is the number of
broken links (capped at process-exit semantics), so CI fails on any.

Usage: python .github/scripts/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^\s*(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop everything but
    alphanumerics/spaces/hyphens/underscores, spaces become hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)        # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All heading anchors a document exposes, with GitHub's ``-N``
    deduplication for repeated headings."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def check_file(doc: Path, root: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors: list[str] = []
    in_fence = False
    for lineno, line in enumerate(doc.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
            else:
                resolved = doc.resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append(f"{doc}:{lineno}: escapes the repo: {target}")
                continue
            if not resolved.exists():
                errors.append(f"{doc}:{lineno}: missing file: {target}")
                continue
            if fragment:
                if resolved.suffix != ".md":
                    errors.append(
                        f"{doc}:{lineno}: anchor into non-markdown: {target}"
                    )
                    continue
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if fragment not in anchor_cache[resolved]:
                    errors.append(f"{doc}:{lineno}: missing anchor: {target}")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path.cwd()
    docs = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
    anchor_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    for doc in docs:
        errors.extend(check_file(doc, root, anchor_cache))
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(docs)
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} documents",
              file=sys.stderr)
        return 1
    print(f"link check ok: {checked} documents")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
