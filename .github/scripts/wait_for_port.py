"""Bounded TCP port polling: wait for a listener or fail loudly.

Shared by the CI smoke jobs (service smoke, protocol smoke) instead of
racing process start-up with a sleep: the DKG bootstrap behind a
service can take tens of seconds before the port opens (2048-bit modp
or curve arithmetic, cold caches).

Usage: python .github/scripts/wait_for_port.py PORT [TIMEOUT_S] [HOST]
"""

import socket
import sys
import time


def wait_for_port(port: int, timeout: float = 240.0, host: str = "127.0.0.1") -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1):
                return True
        except OSError:
            time.sleep(0.5)
    return False


if __name__ == "__main__":
    port = int(sys.argv[1])
    timeout = float(sys.argv[2]) if len(sys.argv) > 2 else 240.0
    host = sys.argv[3] if len(sys.argv) > 3 else "127.0.0.1"
    if not wait_for_port(port, timeout, host):
        sys.exit(f"nothing listening on {host}:{port} after {timeout:.0f}s")
