"""Tests for node addition (§6.2), removal (§6.3), and threshold
modification (§6.4) via the GroupManager lifecycle."""

from __future__ import annotations

import pytest

from repro.crypto.polynomials import interpolate_at
from repro.dkg import DkgConfig
from repro.groupmod import GroupManager, ModProposal, run_node_addition

from tests.helpers import default_test_group

G = default_test_group()


def _manager(n: int = 7, t: int = 2, f: int = 0, seed: int = 1) -> GroupManager:
    gm = GroupManager(DkgConfig(n=n, t=t, f=f, group=G), seed=seed)
    gm.bootstrap()
    return gm


class TestNodeAddition:
    def test_new_node_receives_valid_share(self) -> None:
        gm = _manager()
        secret = gm.reconstruct()
        gm.add_node(8)
        assert 8 in gm.members
        assert gm.commitment.verify_share(8, gm.shares[8])
        assert gm.reconstruct() == secret

    def test_existing_shares_unchanged(self) -> None:
        gm = _manager(seed=2)
        before = dict(gm.shares)
        gm.add_node(8)
        for i, share in before.items():
            assert gm.shares[i] == share

    def test_new_share_is_on_the_same_polynomial(self) -> None:
        # The joining share interpolates with any t existing shares to
        # the same secret.
        gm = _manager(seed=3)
        secret = gm.reconstruct()
        gm.add_node(8)
        pts = [(1, gm.shares[1]), (2, gm.shares[2]), (8, gm.shares[8])]
        assert interpolate_at(pts, 0, G.q) == secret

    def test_multiple_sequential_additions(self) -> None:
        gm = _manager(seed=4)
        secret = gm.reconstruct()
        gm.add_node(8)
        gm.add_node(9)
        assert gm.members == (1, 2, 3, 4, 5, 6, 7, 8, 9)
        assert gm.reconstruct() == secret

    def test_adding_existing_member_rejected(self) -> None:
        gm = _manager(seed=5)
        with pytest.raises(ValueError, match="already a member"):
            run_node_addition(gm.config, gm.shares, gm.commitment, 3, seed=0)

    def test_subshare_vector_matches_share_pk(self) -> None:
        gm = _manager(seed=6)
        result = run_node_addition(gm.config, gm.shares, gm.commitment, 8, seed=6)
        assert result.vector is not None
        from repro.proactive.renewal import share_commitment_at

        assert result.vector.public_key() == share_commitment_at(gm.commitment, 8)


class TestNodeRemoval:
    def test_removal_at_phase_change(self) -> None:
        gm = _manager(n=8, seed=7)  # one node of slack above 3t+1
        secret = gm.reconstruct()
        gm.agree({1: ModProposal("remove", 4)})
        gm.phase_change()
        assert 4 not in gm.members
        assert gm.reconstruct() == secret

    def test_removed_node_share_is_useless_after_renewal(self) -> None:
        gm = _manager(n=8, seed=8)
        secret = gm.reconstruct()
        old_share_4 = gm.shares[4]
        gm.agree({1: ModProposal("remove", 4)})
        gm.phase_change()
        # Old share + t fresh shares interpolate to garbage.
        pts = [(4, old_share_4)] + sorted(gm.shares.items())[:2]
        assert interpolate_at(pts, 0, G.q) != secret

    def test_removal_that_breaks_bound_never_agreed(self) -> None:
        gm = _manager(n=7, t=2, f=0, seed=9)  # exactly 3t+1
        report = gm.agree({1: ModProposal("remove", 4)})
        assert report.common_queue() == []
        gm.phase_change()  # no-op reconfiguration (plain renewal)
        assert 4 in gm.members


class TestThresholdModification:
    def test_raise_threshold_with_additions(self) -> None:
        # The per-proposal policy checks each proposal against the
        # *current* configuration (commutativity forbids cross-proposal
        # awareness), so raising t needs existing slack: n=9, t=2 can
        # accept an add carrying t_delta=1 (n'=10 >= 3*3+1).
        gm = _manager(n=9, t=2, f=0, seed=10)
        secret = gm.reconstruct()
        gm.agree({3: ModProposal("add", 10, t_delta=1)})
        gm.phase_change()
        assert gm.config.t == 3
        assert gm.config.n == 10
        assert gm.reconstruct() == secret
        # New sharing degree: t+1 = 4 shares needed now; 3 insufficient.
        pts = sorted(gm.shares.items())[:3]
        assert interpolate_at(pts, 0, G.q) != secret

    def test_lower_threshold_with_removals(self) -> None:
        gm = _manager(n=11, t=3, f=0, seed=11)
        secret = gm.reconstruct()
        gm.agree(
            {
                1: ModProposal("remove", 9, t_delta=-1),
                2: ModProposal("remove", 10),
            }
        )
        gm.phase_change()
        assert gm.config.t == 2
        assert gm.config.n == 9
        assert gm.reconstruct() == secret
        # t+1 = 3 fresh shares now suffice.
        pts = sorted(gm.shares.items())[:3]
        assert interpolate_at(pts, 0, G.q) == secret

    def test_crash_limit_modification(self) -> None:
        gm = _manager(n=8, t=2, f=0, seed=12)
        secret = gm.reconstruct()
        gm.agree(
            {
                1: ModProposal("add", 9),
                2: ModProposal("add", 10, f_delta=1),
            }
        )
        gm.phase_change()
        assert gm.config.f == 1
        assert gm.config.n == 10
        assert gm.reconstruct() == secret

    def test_new_member_participates_in_next_phase(self) -> None:
        gm = _manager(seed=13)
        secret = gm.reconstruct()
        gm.agree({1: ModProposal("add", 8)})
        gm.phase_change()
        assert 8 in gm.members
        assert 8 in gm.shares  # received a share through the renewal
        assert gm.commitment.verify_share(8, gm.shares[8])
        # And it can deal in the following phase.
        gm.phase_change()
        assert gm.reconstruct() == secret


class TestLifecycleIntegration:
    def test_full_lifecycle(self) -> None:
        """bootstrap -> add mid-phase -> agree remove+add -> phase change
        -> renew again: the secret never changes."""
        gm = _manager(seed=14)
        secret = gm.reconstruct()
        pk = gm.public_key
        gm.add_node(8)
        gm.agree({1: ModProposal("remove", 2), 3: ModProposal("add", 9)})
        gm.phase_change()
        assert gm.members == (1, 3, 4, 5, 6, 7, 8, 9)
        gm.phase_change()  # plain renewal
        assert gm.reconstruct() == secret
        assert gm.commitment.public_key() == pk
