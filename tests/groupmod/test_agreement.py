"""Tests for group modification agreement (§6.1)."""

from __future__ import annotations

import pytest

from repro.sim.adversary import Adversary
from repro.sim.node import ProtocolNode
from repro.sim.runner import Simulation
from repro.vss.config import VssConfig
from repro.groupmod.agreement import (
    GroupModAgreementNode,
    apply_proposals,
    default_policy,
)
from repro.groupmod.messages import ModProposal, ProposeInput

from tests.helpers import default_test_group

G = default_test_group()


def _run(proposals: dict[int, ModProposal], n: int = 7, t: int = 2, f: int = 0,
         seed: int = 0, byzantine: set[int] | None = None):
    cfg = VssConfig(n=n, t=t, f=f, group=G)
    adv = (
        Adversary.corrupting(t, f, byzantine)
        if byzantine
        else Adversary.passive(t, f)
    )
    sim = Simulation(adversary=adv, seed=seed)
    nodes = {}
    for i in cfg.indices:
        if byzantine and i in byzantine:
            sim.add_node(ProtocolNode(i))  # silent
        else:
            node = GroupModAgreementNode(i, cfg)
            sim.add_node(node)
            nodes[i] = node
    for proposer, proposal in proposals.items():
        sim.inject(proposer, ProposeInput(proposal), at=0.0)
    sim.run()
    return nodes, sim


class TestAgreement:
    def test_valid_proposal_delivered_everywhere(self) -> None:
        p = ModProposal("add", 8)
        nodes, _ = _run({1: p})
        assert all(node.queue == [p] for node in nodes.values())

    def test_multiple_proposals_all_delivered(self) -> None:
        p1 = ModProposal("add", 9)
        p2 = ModProposal("remove", 7)
        nodes, _ = _run({1: p1, 2: p2}, n=8)
        for node in nodes.values():
            assert set(node.queue) == {p1, p2}

    def test_policy_rejected_proposal_not_delivered(self) -> None:
        # Removing a node when n = 3t+2f+1 exactly would break the
        # bound: honest nodes refuse to echo.
        p = ModProposal("remove", 3)
        nodes, _ = _run({1: p}, n=7, t=2, f=0)
        assert all(node.queue == [] for node in nodes.values())

    def test_duplicate_adds_rejected_by_policy(self) -> None:
        p = ModProposal("add", 3)  # node 3 already a member
        nodes, _ = _run({1: p}, n=7)
        assert all(node.queue == [] for node in nodes.values())

    def test_remove_unknown_node_rejected(self) -> None:
        p = ModProposal("remove", 99)
        nodes, _ = _run({1: p}, n=10, t=2)
        assert all(node.queue == [] for node in nodes.values())

    def test_silent_byzantine_minority_does_not_block(self) -> None:
        p = ModProposal("add", 9)
        nodes, _ = _run({1: p}, byzantine={6, 7})
        assert all(node.queue == [p] for node in nodes.values())

    def test_delivery_needs_quorum(self) -> None:
        # With t+1 silent nodes (over budget), delivery stalls but never
        # yields divergent queues.
        p = ModProposal("add", 9)
        cfg = VssConfig(n=7, t=2, f=0, group=G)
        sim = Simulation(seed=1)
        nodes = {}
        for i in cfg.indices:
            if i >= 5:
                sim.add_node(ProtocolNode(i))
            else:
                node = GroupModAgreementNode(i, cfg)
                sim.add_node(node)
                nodes[i] = node
        sim.inject(1, ProposeInput(p), at=0.0)
        sim.run()
        assert all(node.queue == [] for node in nodes.values())


class TestDefaultPolicy:
    def test_add_keeping_bound_ok(self) -> None:
        cfg = VssConfig(n=7, t=2, f=0, group=G)
        assert default_policy(cfg, ModProposal("add", 8))

    def test_threshold_raise_requires_enough_nodes(self) -> None:
        cfg = VssConfig(n=7, t=2, f=0, group=G)
        assert not default_policy(cfg, ModProposal("add", 8, t_delta=1))
        cfg_big = VssConfig(n=9, t=2, f=0, group=G)
        assert default_policy(cfg_big, ModProposal("add", 10, t_delta=1))

    def test_negative_deltas_validated(self) -> None:
        cfg = VssConfig(n=7, t=2, f=0, group=G)
        assert default_policy(cfg, ModProposal("remove", 7, t_delta=-1))
        assert not default_policy(cfg, ModProposal("remove", 7, t_delta=-3))


class TestApplyProposals:
    def test_commutativity(self) -> None:
        members = (1, 2, 3, 4, 5, 6, 7)
        ps = [
            ModProposal("add", 8),
            ModProposal("remove", 2),
            ModProposal("add", 9, t_delta=-1),
        ]
        a = apply_proposals(members, 2, 0, ps)
        b = apply_proposals(members, 2, 0, list(reversed(ps)))
        assert a == b == ((1, 3, 4, 5, 6, 7, 8, 9), 1, 0)

    def test_invalid_result_raises(self) -> None:
        with pytest.raises(ValueError):
            apply_proposals((1, 2, 3, 4), 1, 0, [ModProposal("remove", 4)])

    def test_empty_is_identity(self) -> None:
        assert apply_proposals((1, 2, 3, 4), 1, 0, []) == ((1, 2, 3, 4), 1, 0)

    def test_proposal_validation(self) -> None:
        with pytest.raises(ValueError):
            ModProposal("frobnicate", 1)
        with pytest.raises(ValueError):
            ModProposal("add", 0)
