"""Clause-level tests for node addition: gates, subshare algebra,
multi-joiner behaviour, and JoiningNode filtering."""

from __future__ import annotations

import random

import pytest

from repro.crypto.feldman import FeldmanVector
from repro.crypto.polynomials import Polynomial
from repro.dkg import DkgConfig
from repro.groupmod import run_node_additions
from repro.groupmod.addition import JoiningNode
from repro.groupmod.messages import SubshareMsg

from tests.helpers import StubContext, default_test_group

G = default_test_group()


def _sharing(t: int = 2, secret: int = 99, seed: int = 0):
    rng = random.Random(seed)
    poly = Polynomial.random(t, G.q, rng, constant_term=secret)
    vector = FeldmanVector.commit(poly, G)
    return poly, vector


class TestJoiningNode:
    def _msgs(self, poly, vector, senders):
        return [
            (m, SubshareMsg(1, vector, poly(m), 100)) for m in senders
        ]

    def test_joins_after_t_plus_one_consistent_subshares(self) -> None:
        poly, vector = _sharing()
        node = JoiningNode(8, t=2, group_q=G.q)
        ctx = StubContext(node_id=8)
        for sender, msg in self._msgs(poly, vector, [1, 2, 3]):
            node.on_message(sender, msg, ctx)
        assert node.joined is not None
        assert node.joined.share == poly(0) == 99
        assert len(ctx.outputs) == 1

    def test_rejects_subshares_failing_vector_check(self) -> None:
        poly, vector = _sharing()
        node = JoiningNode(8, t=2, group_q=G.q)
        ctx = StubContext(node_id=8)
        node.on_message(1, SubshareMsg(1, vector, 12345, 100), ctx)
        for sender, msg in self._msgs(poly, vector, [2, 3]):
            node.on_message(sender, msg, ctx)
        assert node.joined is None  # only 2 valid
        node.on_message(4, SubshareMsg(1, vector, poly(4), 100), ctx)
        assert node.joined is not None

    def test_rejects_vector_with_wrong_public_value(self) -> None:
        poly, vector = _sharing(secret=99)
        wrong_poly, wrong_vector = _sharing(secret=55, seed=1)
        node = JoiningNode(
            8, t=2, group_q=G.q, expected_share_pk=G.commit(99)
        )
        ctx = StubContext(node_id=8)
        # subshares of the wrong sharing verify against their own vector
        # but the vector's public value does not match expectations
        for sender, msg in [
            (m, SubshareMsg(1, wrong_vector, wrong_poly(m), 100))
            for m in (1, 2, 3)
        ]:
            node.on_message(sender, msg, ctx)
        assert node.joined is None

    def test_mixed_vectors_bucketed_separately(self) -> None:
        p1, v1 = _sharing(seed=2)
        p2, v2 = _sharing(seed=3)
        node = JoiningNode(8, t=2, group_q=G.q)
        ctx = StubContext(node_id=8)
        node.on_message(1, SubshareMsg(1, v1, p1(1), 100), ctx)
        node.on_message(2, SubshareMsg(1, v2, p2(2), 100), ctx)
        node.on_message(3, SubshareMsg(1, v1, p1(3), 100), ctx)
        assert node.joined is None  # neither bucket has t+1
        node.on_message(4, SubshareMsg(1, v1, p1(4), 100), ctx)
        assert node.joined is not None
        assert node.joined.vector == v1

    def test_duplicate_sender_ignored(self) -> None:
        poly, vector = _sharing()
        node = JoiningNode(8, t=2, group_q=G.q)
        ctx = StubContext(node_id=8)
        msg = SubshareMsg(1, vector, poly(1), 100)
        node.on_message(1, msg, ctx)
        node.on_message(1, msg, ctx)
        node.on_message(2, SubshareMsg(1, vector, poly(2), 100), ctx)
        assert node.joined is None


class TestMultiJoin:
    def test_duplicate_joiners_rejected(self) -> None:
        from repro.dkg import run_dkg

        res = run_dkg(DkgConfig(n=7, t=2, group=G), seed=1)
        with pytest.raises(ValueError, match="duplicate"):
            run_node_additions(
                res.config, res.shares, res.commitment, [8, 8], seed=1
            )

    def test_three_simultaneous_joiners(self) -> None:
        from repro.crypto.polynomials import interpolate_at
        from repro.dkg import run_dkg

        res = run_dkg(DkgConfig(n=7, t=2, group=G), seed=2)
        secret = res.reconstruct()
        results = run_node_additions(
            res.config, res.shares, res.commitment, [8, 9, 10], seed=2
        )
        assert all(r.share is not None for r in results.values())
        for new, r in results.items():
            assert res.commitment.verify_share(new, r.share)
        # the three new shares alone reconstruct (t+1 = 3 points)
        pts = [(new, r.share) for new, r in sorted(results.items())]
        assert interpolate_at(pts, 0, G.q) == secret

    def test_single_wrapper_matches_plural(self) -> None:
        from repro.dkg import run_dkg
        from repro.groupmod import run_node_addition

        res = run_dkg(DkgConfig(n=7, t=2, group=G), seed=3)
        single = run_node_addition(
            res.config, res.shares, res.commitment, 8, seed=3
        )
        plural = run_node_additions(
            res.config, res.shares, res.commitment, [8], seed=3
        )[8]
        assert single.share == plural.share
