"""Tests for the DDH distributed PRF / common coin."""

from __future__ import annotations

import random

import pytest

from repro.apps import dprf
from repro.dkg import DkgConfig, run_dkg

from tests.helpers import default_test_group

G = default_test_group()


@pytest.fixture(scope="module")
def dkg():
    return run_dkg(DkgConfig(n=7, t=2, f=0, group=G), seed=55)


class TestDprf:
    def test_evaluation_matches_oracle(self, dkg) -> None:
        # The combined value equals H1(x)^s computed with the oracle
        # secret available to the test.
        rng = random.Random(1)
        secret = dkg.reconstruct()
        tag = b"epoch-7"
        partials = [
            dprf.partial_eval(G, tag, i, dkg.shares[i], rng) for i in (1, 4, 6)
        ]
        value = dprf.combine(G, tag, dkg.commitment, partials, t=2)
        assert value == G.power(dprf.input_point(G, tag), secret)

    def test_uniqueness_across_subsets(self, dkg) -> None:
        rng = random.Random(2)
        tag = b"round-1"
        values = set()
        for subset in [(1, 2, 3), (4, 5, 6), (2, 5, 7)]:
            partials = [
                dprf.partial_eval(G, tag, i, dkg.shares[i], rng) for i in subset
            ]
            values.add(dprf.combine(G, tag, dkg.commitment, partials, t=2))
        assert len(values) == 1  # no subset can bias the output

    def test_different_tags_different_outputs(self, dkg) -> None:
        rng = random.Random(3)
        outs = []
        for tag in (b"a", b"b"):
            partials = [
                dprf.partial_eval(G, tag, i, dkg.shares[i], rng) for i in (1, 2, 3)
            ]
            outs.append(dprf.combine(G, tag, dkg.commitment, partials, t=2))
        assert outs[0] != outs[1]

    def test_bad_partials_rejected(self, dkg) -> None:
        rng = random.Random(4)
        tag = b"x"
        bad = dprf.partial_eval(G, tag, 1, dkg.shares[1] + 1, rng)
        assert not dprf.verify_partial(G, tag, dkg.commitment, bad)
        good = [
            dprf.partial_eval(G, tag, i, dkg.shares[i], rng) for i in (2, 3, 4)
        ]
        value = dprf.combine(G, tag, dkg.commitment, [bad] + good, t=2)
        oracle = G.power(dprf.input_point(G, tag), dkg.reconstruct())
        assert value == oracle

    def test_too_few_partials_raises(self, dkg) -> None:
        with pytest.raises(dprf.EvaluationError):
            dprf.combine(G, b"t", dkg.commitment, [], t=2)

    def test_prf_bytes_deterministic_and_sized(self, dkg) -> None:
        value = G.commit(5)
        assert dprf.prf_bytes(G, value, 48) == dprf.prf_bytes(G, value, 48)
        assert len(dprf.prf_bytes(G, value, 48)) == 48

    def test_coin_flip_unbiased_empirically(self, dkg) -> None:
        rng = random.Random(5)
        flips = []
        for round_no in range(60):
            tag = f"coin-{round_no}".encode()
            partials = [
                dprf.partial_eval(G, tag, i, dkg.shares[i], rng) for i in (1, 2, 3)
            ]
            flips.append(dprf.coin_flip(G, tag, dkg.commitment, partials, t=2))
        ones = sum(flips)
        assert 12 <= ones <= 48  # loose binomial bounds, deterministic seed

    def test_coin_agreement_between_observers(self, dkg) -> None:
        # Two combiners using different partial subsets see the same coin.
        rng = random.Random(6)
        tag = b"agree"
        a = dprf.coin_flip(
            G, tag, dkg.commitment,
            [dprf.partial_eval(G, tag, i, dkg.shares[i], rng) for i in (1, 2, 3)],
            t=2,
        )
        b = dprf.coin_flip(
            G, tag, dkg.commitment,
            [dprf.partial_eval(G, tag, i, dkg.shares[i], rng) for i in (5, 6, 7)],
            t=2,
        )
        assert a == b
