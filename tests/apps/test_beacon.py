"""Tests for the chained randomness beacon service."""

from __future__ import annotations

import random

import pytest

from repro.apps.beacon import GENESIS, Beacon
from repro.dkg import DkgConfig, run_dkg

from tests.helpers import default_test_group

G = default_test_group()


@pytest.fixture(scope="module")
def dkg():
    return run_dkg(DkgConfig(n=7, t=2, f=0, group=G), seed=88)


def _advance(beacon: Beacon, dkg, committee, rng) -> None:
    partials = [beacon.contribute(i, dkg.shares[i], rng) for i in committee]
    beacon.advance(partials)


class TestBeacon:
    def test_chain_grows_and_verifies(self, dkg) -> None:
        rng = random.Random(1)
        beacon = Beacon(G, dkg.commitment, t=2)
        for committee in [(1, 2, 3), (2, 4, 6), (5, 6, 7)]:
            _advance(beacon, dkg, committee, rng)
        assert beacon.height == 3
        assert beacon.verify_chain()
        assert len({r.output for r in beacon.rounds}) == 3

    def test_outputs_committee_independent(self, dkg) -> None:
        rng = random.Random(2)
        a = Beacon(G, dkg.commitment, t=2)
        b = Beacon(G, dkg.commitment, t=2)
        _advance(a, dkg, (1, 2, 3), rng)
        _advance(b, dkg, (5, 6, 7), rng)
        assert a.rounds[0].output == b.rounds[0].output

    def test_tag_chains_previous_output(self, dkg) -> None:
        rng = random.Random(3)
        beacon = Beacon(G, dkg.commitment, t=2)
        tag0 = beacon.next_tag()
        assert GENESIS in tag0
        _advance(beacon, dkg, (1, 2, 3), rng)
        tag1 = beacon.next_tag()
        assert beacon.rounds[0].output in tag1
        assert tag0 != tag1

    def test_bad_contribution_rejected(self, dkg) -> None:
        rng = random.Random(4)
        beacon = Beacon(G, dkg.commitment, t=2)
        bad = beacon.contribute(1, dkg.shares[1] + 1, rng)
        assert not beacon.verify_contribution(bad)
        good = [beacon.contribute(i, dkg.shares[i], rng) for i in (2, 3, 4)]
        round_ = beacon.advance([bad] + good)
        # output equals the oracle value regardless of the bad partial
        from repro.apps import dprf

        oracle = G.power(
            dprf.input_point(G, b"beacon|" + (0).to_bytes(8, "big") + b"|" + GENESIS),
            dkg.reconstruct(),
        )
        assert round_.value == oracle

    def test_tampered_history_detected(self, dkg) -> None:
        rng = random.Random(5)
        beacon = Beacon(G, dkg.commitment, t=2)
        _advance(beacon, dkg, (1, 2, 3), rng)
        _advance(beacon, dkg, (1, 2, 3), rng)
        from repro.apps.beacon import BeaconRound

        forged = BeaconRound(0, b"\xff" * 32, beacon.rounds[0].value)
        beacon.rounds[0] = forged
        assert not beacon.verify_chain()

    def test_randint_draws(self, dkg) -> None:
        rng = random.Random(6)
        beacon = Beacon(G, dkg.commitment, t=2)
        with pytest.raises(RuntimeError):
            beacon.randint(0, 10)
        _advance(beacon, dkg, (1, 2, 3), rng)
        draw = beacon.randint(1, 100)
        assert 1 <= draw <= 100
        assert beacon.randint(1, 100) == draw  # deterministic per round
        with pytest.raises(ValueError):
            beacon.randint(5, 4)
