"""Tests for the distributed key distribution centre (§1's [4])."""

from __future__ import annotations

import random

import pytest

from repro.apps.kdc import AccessDenied, KdcClient, KdcServer, build_kdc
from repro.dkg import DkgConfig, run_dkg

from tests.helpers import default_test_group

G = default_test_group()
CID_TEAM = b"conv:team-alpha"
CID_OPEN = b"conv:town-square"


@pytest.fixture(scope="module")
def kdc():
    dkg = run_dkg(DkgConfig(n=7, t=2, f=0, group=G), seed=31)
    servers = build_kdc(
        dkg,
        acl={CID_TEAM: {"alice", "bob"}, CID_OPEN: None},
    )
    return dkg, servers


class TestKdc:
    def test_authorized_clients_derive_same_key(self, kdc) -> None:
        dkg, servers = kdc
        rng = random.Random(1)
        alice = KdcClient("alice", G, dkg.commitment, t=2)
        bob = KdcClient("bob", G, dkg.commitment, t=2)
        k1 = alice.derive_key(CID_TEAM, servers[:3], rng)
        k2 = bob.derive_key(CID_TEAM, servers[4:], rng)  # disjoint servers
        assert k1 == k2
        assert len(k1) == 32

    def test_unauthorized_client_denied(self, kdc) -> None:
        dkg, servers = kdc
        rng = random.Random(2)
        eve = KdcClient("eve", G, dkg.commitment, t=2)
        with pytest.raises(AccessDenied, match="not authorized"):
            eve.derive_key(CID_TEAM, servers, rng)

    def test_unknown_conversation_denied(self, kdc) -> None:
        dkg, servers = kdc
        rng = random.Random(3)
        alice = KdcClient("alice", G, dkg.commitment, t=2)
        with pytest.raises(AccessDenied, match="unknown conversation"):
            alice.derive_key(b"conv:nonexistent", servers, rng)

    def test_open_conversation_for_anyone(self, kdc) -> None:
        dkg, servers = kdc
        rng = random.Random(4)
        eve = KdcClient("eve", G, dkg.commitment, t=2)
        key = eve.derive_key(CID_OPEN, servers, rng)
        assert len(key) == 32

    def test_distinct_conversations_distinct_keys(self, kdc) -> None:
        dkg, servers = kdc
        rng = random.Random(5)
        alice = KdcClient("alice", G, dkg.commitment, t=2)
        assert alice.derive_key(CID_TEAM, servers, rng) != alice.derive_key(
            CID_OPEN, servers, rng
        )

    def test_corrupt_server_response_skipped(self, kdc) -> None:
        dkg, servers = kdc
        rng = random.Random(6)
        # Server 0 holds a corrupted share: its partials fail DLEQ and
        # the client transparently uses the next servers.
        bad = KdcServer(servers[0].index, servers[0].share + 1, G,
                        acl=dict(servers[0].acl))
        alice = KdcClient("alice", G, dkg.commitment, t=2)
        key = alice.derive_key(CID_TEAM, [bad] + servers[1:], rng)
        honest_key = alice.derive_key(CID_TEAM, servers[1:], rng)
        assert key == honest_key

    def test_grant_log_records_requests(self, kdc) -> None:
        dkg, servers = kdc
        rng = random.Random(7)
        server = KdcServer(1, dkg.shares[1], G)
        server.authorize(CID_OPEN, None)
        server.request_key_share("carol", CID_OPEN, rng)
        assert ("carol", CID_OPEN) in server.grant_log

    def test_t_servers_cannot_compute_key_alone(self, kdc) -> None:
        dkg, servers = kdc
        rng = random.Random(8)
        alice = KdcClient("alice", G, dkg.commitment, t=2)
        from repro.apps.dprf import EvaluationError

        with pytest.raises(EvaluationError):
            alice.derive_key(CID_TEAM, servers[:2], rng)  # only t = 2
