"""Tests for threshold ElGamal over real DKG output."""

from __future__ import annotations

import random

import pytest

from repro.apps import threshold_elgamal as eg
from repro.dkg import DkgConfig, run_dkg

from tests.helpers import default_test_group

G = default_test_group()


@pytest.fixture(scope="module")
def dkg():
    return run_dkg(DkgConfig(n=7, t=2, f=0, group=G), seed=42)


class TestElementEncryption:
    def test_roundtrip_with_t_plus_one_partials(self, dkg) -> None:
        rng = random.Random(1)
        message = G.commit(123456)  # a group element
        ct = eg.encrypt(G, dkg.public_key, message, rng)
        partials = [
            eg.partial_decrypt(G, ct, i, dkg.shares[i], rng) for i in (1, 3, 5)
        ]
        assert eg.combine(G, ct, dkg.commitment, partials, t=2) == message

    def test_any_subset_works(self, dkg) -> None:
        rng = random.Random(2)
        message = G.commit(999)
        ct = eg.encrypt(G, dkg.public_key, message, rng)
        for subset in [(1, 2, 3), (2, 4, 6), (5, 6, 7), (1, 4, 7)]:
            partials = [
                eg.partial_decrypt(G, ct, i, dkg.shares[i], rng) for i in subset
            ]
            assert eg.combine(G, ct, dkg.commitment, partials, t=2) == message

    def test_surplus_partials_fine(self, dkg) -> None:
        rng = random.Random(3)
        message = G.commit(31337)
        ct = eg.encrypt(G, dkg.public_key, message, rng)
        partials = [
            eg.partial_decrypt(G, ct, i, dkg.shares[i], rng) for i in range(1, 8)
        ]
        assert eg.combine(G, ct, dkg.commitment, partials, t=2) == message

    def test_too_few_partials_raises(self, dkg) -> None:
        rng = random.Random(4)
        ct = eg.encrypt(G, dkg.public_key, G.commit(5), rng)
        partials = [
            eg.partial_decrypt(G, ct, i, dkg.shares[i], rng) for i in (1, 2)
        ]
        with pytest.raises(eg.DecryptionError):
            eg.combine(G, ct, dkg.commitment, partials, t=2)

    def test_byzantine_partials_filtered(self, dkg) -> None:
        rng = random.Random(5)
        message = G.commit(777)
        ct = eg.encrypt(G, dkg.public_key, message, rng)
        good = [
            eg.partial_decrypt(G, ct, i, dkg.shares[i], rng) for i in (1, 2, 3)
        ]
        # A forged partial: right index, wrong share.
        bad = eg.partial_decrypt(G, ct, 4, dkg.shares[4] + 1, rng)
        assert not eg.verify_partial(G, ct, dkg.commitment, bad)
        assert eg.combine(G, ct, dkg.commitment, [bad] + good, t=2) == message

    def test_byzantine_majority_of_submission_fails_loudly(self, dkg) -> None:
        rng = random.Random(6)
        ct = eg.encrypt(G, dkg.public_key, G.commit(8), rng)
        bad = [
            eg.partial_decrypt(G, ct, i, dkg.shares[i] + 1, rng) for i in (1, 2, 3)
        ]
        with pytest.raises(eg.DecryptionError):
            eg.combine(G, ct, dkg.commitment, bad, t=2)

    def test_non_element_message_rejected(self, dkg) -> None:
        with pytest.raises(ValueError):
            eg.encrypt(G, dkg.public_key, 0, random.Random(7))

    def test_wrong_key_garbles(self, dkg) -> None:
        rng = random.Random(8)
        message = G.commit(55)
        wrong_pk = G.commit(1)
        ct = eg.encrypt(G, wrong_pk, message, rng)
        partials = [
            eg.partial_decrypt(G, ct, i, dkg.shares[i], rng) for i in (1, 2, 3)
        ]
        assert eg.combine(G, ct, dkg.commitment, partials, t=2) != message


class TestHybridEncryption:
    def test_bytes_roundtrip(self, dkg) -> None:
        rng = random.Random(9)
        plaintext = b"attack at dawn -- threshold edition"
        ct = eg.encrypt_bytes(G, dkg.public_key, plaintext, rng)
        partials = [
            eg.partial_decrypt_hybrid(G, ct, i, dkg.shares[i], rng)
            for i in (2, 5, 7)
        ]
        assert (
            eg.decrypt_bytes_combine(G, ct, dkg.commitment, partials, t=2)
            == plaintext
        )

    def test_empty_plaintext(self, dkg) -> None:
        rng = random.Random(10)
        ct = eg.encrypt_bytes(G, dkg.public_key, b"", rng)
        partials = [
            eg.partial_decrypt_hybrid(G, ct, i, dkg.shares[i], rng)
            for i in (1, 2, 3)
        ]
        assert eg.decrypt_bytes_combine(G, ct, dkg.commitment, partials, t=2) == b""

    def test_too_few_partials(self, dkg) -> None:
        rng = random.Random(11)
        ct = eg.encrypt_bytes(G, dkg.public_key, b"x", rng)
        with pytest.raises(eg.DecryptionError):
            eg.decrypt_bytes_combine(G, ct, dkg.commitment, [], t=2)
