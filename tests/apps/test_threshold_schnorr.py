"""Tests for threshold Schnorr signing over two DKG instances
(key DKG + per-message nonce DKG)."""

from __future__ import annotations

import random

import pytest

from repro.apps import threshold_schnorr as ts
from repro.crypto import schnorr
from repro.dkg import DkgConfig, run_dkg

from tests.helpers import default_test_group

G = default_test_group()


@pytest.fixture(scope="module")
def key_dkg():
    return run_dkg(DkgConfig(n=7, t=2, f=0, group=G), seed=100)


@pytest.fixture(scope="module")
def nonce_dkg():
    return run_dkg(DkgConfig(n=7, t=2, f=0, group=G), seed=200)


def _partials(key_dkg, nonce_dkg, message: bytes, signers) -> list[ts.PartialSignature]:
    return [
        ts.PartialSignature(
            i,
            ts.partial_sign(
                G,
                message,
                key_dkg.shares[i],
                nonce_dkg.shares[i],
                key_dkg.public_key,
                nonce_dkg.public_key,
            ),
        )
        for i in signers
    ]


class TestThresholdSchnorr:
    def test_signature_verifies_under_plain_schnorr(self, key_dkg, nonce_dkg) -> None:
        message = b"threshold signing works"
        partials = _partials(key_dkg, nonce_dkg, message, (1, 3, 6))
        sig = ts.combine(
            G, message, partials, key_dkg.commitment, nonce_dkg.commitment, t=2
        )
        assert schnorr.verify(G, key_dkg.public_key, message, sig)

    def test_any_quorum_gives_identical_signature(self, key_dkg, nonce_dkg) -> None:
        # Same nonce + same message => the interpolated z is unique.
        message = b"determinism"
        sigs = set()
        for subset in [(1, 2, 3), (3, 5, 7), (2, 4, 6)]:
            partials = _partials(key_dkg, nonce_dkg, message, subset)
            sigs.add(
                ts.combine(
                    G, message, partials, key_dkg.commitment,
                    nonce_dkg.commitment, t=2,
                )
            )
        assert len(sigs) == 1

    def test_partial_verification_catches_bad_share(self, key_dkg, nonce_dkg) -> None:
        message = b"audit"
        good = _partials(key_dkg, nonce_dkg, message, (1, 2))
        bad = ts.PartialSignature(3, (good[0].response + 1) % G.q)
        assert not ts.verify_partial(
            G, message, bad, key_dkg.commitment, nonce_dkg.commitment
        )
        # Combine succeeds once a third honest partial joins.
        more = _partials(key_dkg, nonce_dkg, message, (4,))
        sig = ts.combine(
            G, message, good + [bad] + more,
            key_dkg.commitment, nonce_dkg.commitment, t=2,
        )
        assert schnorr.verify(G, key_dkg.public_key, message, sig)

    def test_too_few_partials_raises(self, key_dkg, nonce_dkg) -> None:
        with pytest.raises(ts.SigningError):
            ts.combine(
                G, b"m", _partials(key_dkg, nonce_dkg, b"m", (1, 2)),
                key_dkg.commitment, nonce_dkg.commitment, t=2,
            )

    def test_signature_bound_to_message(self, key_dkg, nonce_dkg) -> None:
        message = b"original"
        partials = _partials(key_dkg, nonce_dkg, message, (1, 2, 3))
        sig = ts.combine(
            G, message, partials, key_dkg.commitment, nonce_dkg.commitment, t=2
        )
        assert not schnorr.verify(G, key_dkg.public_key, b"forged", sig)

    def test_nonce_reuse_across_messages_is_caught_by_uniqueness(
        self, key_dkg, nonce_dkg
    ) -> None:
        # Two different messages under the same nonce yield signatures
        # whose responses leak the key: the classic Schnorr pitfall.
        # We verify the algebra (the library deliberately exposes the
        # raw primitives; per-message nonce DKGs are the caller's job).
        m1, m2 = b"first", b"second"
        s1 = ts.combine(
            G, m1, _partials(key_dkg, nonce_dkg, m1, (1, 2, 3)),
            key_dkg.commitment, nonce_dkg.commitment, t=2,
        )
        s2 = ts.combine(
            G, m2, _partials(key_dkg, nonce_dkg, m2, (1, 2, 3)),
            key_dkg.commitment, nonce_dkg.commitment, t=2,
        )
        dc = (s1.challenge - s2.challenge) % G.q
        dz = (s1.response - s2.response) % G.q
        recovered = (dz * pow(dc, -1, G.q)) % G.q
        assert G.commit(recovered) == key_dkg.public_key  # key recovered!

    def test_batch_verify_accepts_all_honest(self, key_dkg, nonce_dkg) -> None:
        message = b"batch"
        partials = _partials(key_dkg, nonce_dkg, message, range(1, 8))
        valid, bad = ts.batch_verify(
            G, message, partials, key_dkg.commitment, nonce_dkg.commitment,
            random.Random(1),
        )
        assert bad == []
        assert valid == partials

    def test_batch_verify_identifies_bad_signers(self, key_dkg, nonce_dkg) -> None:
        message = b"batch-audit"
        partials = _partials(key_dkg, nonce_dkg, message, (1, 2, 4, 5))
        forged = ts.PartialSignature(3, (partials[0].response + 7) % G.q)
        also_forged = ts.PartialSignature(6, 12345)
        valid, bad = ts.batch_verify(
            G, message, partials + [forged, also_forged],
            key_dkg.commitment, nonce_dkg.commitment, random.Random(2),
        )
        assert sorted(bad) == [3, 6]
        assert valid == partials

    def test_batch_verify_keeps_first_duplicate(self, key_dkg, nonce_dkg) -> None:
        # A second submission for an index must not be able to spoil
        # (or sneak past) the batch: only the first one counts.
        message = b"dup"
        partials = _partials(key_dkg, nonce_dkg, message, (1, 2, 3))
        spoiler = ts.PartialSignature(1, (partials[0].response + 1) % G.q)
        valid, bad = ts.batch_verify(
            G, message, partials + [spoiler],
            key_dkg.commitment, nonce_dkg.commitment, random.Random(3),
        )
        assert bad == []
        assert valid == partials

    def test_batch_verify_empty(self, key_dkg, nonce_dkg) -> None:
        assert ts.batch_verify(
            G, b"m", [], key_dkg.commitment, nonce_dkg.commitment,
            random.Random(4),
        ) == ([], [])

    def test_combine_batch_path_matches_sequential(self, key_dkg, nonce_dkg) -> None:
        message = b"same signature either way"
        partials = _partials(key_dkg, nonce_dkg, message, (2, 4, 6, 7))
        forged = ts.PartialSignature(5, 99)
        sequential = ts.combine(
            G, message, partials + [forged],
            key_dkg.commitment, nonce_dkg.commitment, t=2,
        )
        batched = ts.combine(
            G, message, partials + [forged],
            key_dkg.commitment, nonce_dkg.commitment, t=2,
            rng=random.Random(5),
        )
        assert batched == sequential
        assert schnorr.verify(G, key_dkg.public_key, message, batched)

    def test_fresh_nonce_prevents_key_recovery(self, key_dkg, nonce_dkg) -> None:
        nonce2 = run_dkg(DkgConfig(n=7, t=2, f=0, group=G), seed=300)
        m1, m2 = b"first", b"second"
        s1 = ts.combine(
            G, m1, _partials(key_dkg, nonce_dkg, m1, (1, 2, 3)),
            key_dkg.commitment, nonce_dkg.commitment, t=2,
        )
        s2 = ts.combine(
            G, m2, _partials(key_dkg, nonce2, m2, (1, 2, 3)),
            key_dkg.commitment, nonce2.commitment, t=2,
        )
        dc = (s1.challenge - s2.challenge) % G.q
        dz = (s1.response - s2.response) % G.q
        if dc != 0:
            recovered = (dz * pow(dc, -1, G.q)) % G.q
            assert G.commit(recovered) != key_dkg.public_key
