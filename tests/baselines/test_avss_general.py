"""Tests for the general-bivariate AVSS cost model (E9 ablation)."""

from __future__ import annotations

from repro.baselines import run_general_avss
from repro.vss.config import VssConfig
from repro.vss.node import run_vss

from tests.helpers import default_test_group

G = default_test_group()


class TestGeneralAvssCostModel:
    def _configs(self):
        return VssConfig(n=7, t=2, f=0, group=G)

    def test_protocol_still_completes_and_agrees(self) -> None:
        cfg = self._configs()
        res = run_general_avss(cfg, secret=5, seed=1)
        assert res.completed_nodes == list(range(1, 8))
        assert res.agreed_commitment()

    def test_same_message_counts_as_symmetric(self) -> None:
        cfg = self._configs()
        sym = run_vss(cfg, secret=5, seed=2)
        gen = run_general_avss(cfg, secret=5, seed=2)
        assert (
            sym.metrics.messages_by_kind == gen.metrics.messages_by_kind
        )

    def test_general_costs_strictly_more_bytes(self) -> None:
        cfg = self._configs()
        sym = run_vss(cfg, secret=5, seed=3)
        gen = run_general_avss(cfg, secret=5, seed=3)
        assert gen.metrics.bytes_total > sym.metrics.bytes_total

    def test_constant_factor_shape(self) -> None:
        # The scalar payload roughly doubles; the commitment matrix is
        # shared, so the overall factor sits strictly between 1x and 2x.
        cfg = self._configs()
        sym = run_vss(cfg, secret=5, seed=4)
        gen = run_general_avss(cfg, secret=5, seed=4)
        ratio = gen.metrics.bytes_total / sym.metrics.bytes_total
        assert 1.0 < ratio < 2.0
