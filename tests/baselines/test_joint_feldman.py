"""Tests for the synchronous Joint-Feldman DKG baseline."""

from __future__ import annotations

from repro.baselines import run_joint_feldman
from repro.crypto.polynomials import interpolate_at

from tests.helpers import default_test_group

G = default_test_group()


class TestJointFeldman:
    def test_honest_run_agrees(self) -> None:
        result = run_joint_feldman(n=7, t=2, group=G, seed=1)
        assert len(result.shares) == 7
        assert result.public_key  # raises on disagreement
        quals = {node.qual for node in result.nodes.values()}
        assert len(quals) == 1
        assert quals.pop() == tuple(range(1, 8))

    def test_shares_reconstruct_to_public_key(self) -> None:
        result = run_joint_feldman(n=7, t=2, group=G, seed=2)
        pts = sorted(result.shares.items())[:3]
        secret = interpolate_at(pts, 0, G.q)
        assert G.commit(secret) == result.public_key

    def test_cheating_dealer_disqualified(self) -> None:
        # Dealer 3 cheats against t+1 nodes: > t complaints, out of QUAL.
        result = run_joint_feldman(
            n=7, t=2, group=G, seed=3, misbehaving={3: {1, 2, 4}}
        )
        quals = {node.qual for node in result.nodes.values()}
        assert len(quals) == 1
        assert 3 not in quals.pop()
        # DKG still completes and agrees.
        assert result.public_key

    def test_mildly_cheating_dealer_survives_with_agreement(self) -> None:
        # Cheating against <= t nodes: stays in QUAL by complaint count,
        # but recipients of bad shares exclude it locally in our
        # simplified model — which is exactly the subtlety the full
        # protocol's justification round repairs.  We assert only that
        # the honest majority agrees.
        result = run_joint_feldman(
            n=7, t=2, group=G, seed=4, misbehaving={3: {1}}
        )
        quals = {node.qual for node in result.nodes.values()}
        # Node 1 excludes dealer 3; others keep it: this is the known
        # JF-DKG complaint-handling gap our simplification surfaces.
        assert len(quals) <= 2

    def test_round_count_and_latency(self) -> None:
        result = run_joint_feldman(n=7, t=2, group=G, seed=5, delta=10.0)
        assert result.sync.rounds <= 5
        assert result.sync.latency == result.sync.rounds * 10.0

    def test_message_complexity_quadratic(self) -> None:
        result = run_joint_feldman(n=7, t=2, group=G, seed=6)
        # n deals of n messages; no complaints in the honest case.
        assert result.sync.metrics.messages_by_kind["jf.deal"] == 49
        assert result.sync.metrics.messages_by_kind.get("jf.complaint", 0) == 0

    def test_determinism(self) -> None:
        a = run_joint_feldman(n=7, t=2, group=G, seed=7)
        b = run_joint_feldman(n=7, t=2, group=G, seed=7)
        assert a.public_key == b.public_key
        assert a.shares == b.shares
