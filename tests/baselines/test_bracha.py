"""Tests for the classic Bracha reliable broadcast baseline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines import BrachaNode, BroadcastInput
from repro.baselines.bracha import BrachaEcho, BrachaInitial
from repro.sim.adversary import Adversary
from repro.sim.node import Context, ProtocolNode
from repro.sim.runner import Simulation


def _deploy(n: int, t: int, seed: int = 0, replace: dict[int, Any] | None = None):
    sim = Simulation(seed=seed, adversary=Adversary.passive(t, 0))
    nodes = {}
    for i in range(1, n + 1):
        node = (replace or {}).get(i) or BrachaNode(i, n=n, t=t)
        sim.add_node(node)
        if isinstance(node, BrachaNode):
            nodes[i] = node
    return sim, nodes


class TestBracha:
    def test_all_deliver_same_value(self) -> None:
        sim, nodes = _deploy(7, 2, seed=1)
        sim.inject(1, BroadcastInput("m1", "hello"), at=0.0)
        sim.run()
        assert all(node.delivered.get("m1") == "hello" for node in nodes.values())

    def test_message_complexity(self) -> None:
        sim, nodes = _deploy(7, 2, seed=2)
        sim.inject(1, BroadcastInput("m", "v"), at=0.0)
        sim.run()
        m = sim.metrics
        assert m.messages_by_kind["bracha.initial"] == 7
        assert m.messages_by_kind["bracha.echo"] == 49
        assert m.messages_by_kind["bracha.ready"] == 49

    def test_silent_byzantine_minority_tolerated(self) -> None:
        @dataclass
        class Silent(ProtocolNode):
            pass

        sim, nodes = _deploy(
            7, 2, seed=3, replace={6: Silent(6), 7: Silent(7)}
        )
        sim.inject(1, BroadcastInput("m", "v"), at=0.0)
        sim.run()
        assert all(node.delivered.get("m") == "v" for node in nodes.values())

    def test_equivocating_sender_cannot_split(self) -> None:
        @dataclass
        class Equivocator(ProtocolNode):
            n: int = 7

            def on_operator(self, payload: Any, ctx: Context) -> None:
                for j in range(1, self.n + 1):
                    value = "a" if j <= self.n // 2 else "b"
                    ctx.send(j, BrachaInitial("m", value))

        sim, nodes = _deploy(7, 2, seed=4, replace={1: Equivocator(1)})
        sim.inject(1, BroadcastInput("m", "ignored"), at=0.0)
        sim.run()
        delivered = {node.delivered.get("m") for node in nodes.values()}
        # Nobody delivers, or everybody delivers one value; never both.
        assert len(delivered - {None}) <= 1

    def test_multiple_tags_independent(self) -> None:
        sim, nodes = _deploy(4, 1, seed=5)
        sim.inject(1, BroadcastInput("x", 1), at=0.0)
        sim.inject(2, BroadcastInput("y", 2), at=0.0)
        sim.run()
        for node in nodes.values():
            assert node.delivered == {"x": 1, "y": 2}

    def test_forged_echoes_below_quorum_ignored(self) -> None:
        @dataclass
        class EchoForger(ProtocolNode):
            n: int = 7

            def on_operator(self, payload: Any, ctx: Context) -> None:
                for j in range(1, self.n + 1):
                    ctx.send(j, BrachaEcho("m", "forged"))

        sim, nodes = _deploy(7, 2, seed=6, replace={1: EchoForger(1)})
        sim.inject(1, BroadcastInput("m", "x"), at=0.0)
        sim.run()
        assert all("m" not in node.delivered for node in nodes.values())
