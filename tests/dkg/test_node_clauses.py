"""Clause-by-clause unit tests of the DKG node (Figs. 2-3), driven
message-by-message through a stub context."""

from __future__ import annotations

import random

import pytest

from repro.crypto.hashing import commitment_digest
from repro.sim.clock import TimeoutPolicy
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.vss.messages import SendMsg, SessionId
from repro.dkg.config import DkgConfig
from repro.dkg.messages import (
    DkgEchoMsg,
    DkgReadyMsg,
    DkgSendMsg,
    LeadChMsg,
    RTypeProof,
    dkg_echo_bytes,
    dkg_ready_bytes,
    lead_ch_bytes,
)
from repro.dkg.node import DkgNode

from tests.helpers import StubContext, default_test_group

G = default_test_group()
N, T = 7, 2


@pytest.fixture()
def world():
    """A CA, keystores for all nodes, and a DkgNode under test (node 2)."""
    rng = random.Random(77)
    ca = CertificateAuthority(G)
    stores = {i: KeyStore.enroll(i, ca, rng) for i in range(1, N + 1)}
    config = DkgConfig(
        n=N, t=T, group=G, timeout=TimeoutPolicy(initial=30.0)
    )
    node = DkgNode(2, config, stores[2], ca, tau=0, secret=5)
    ctx = StubContext(node_id=2, n_nodes=N)
    return node, ctx, stores, ca, config, rng


def _drive_vss_to_completion(node, ctx, stores, rng, dealers):
    """Run enough extended-VSS traffic through the node for each dealer's
    session to complete, yielding ready certificates in q_hat."""
    from repro.crypto.bivariate import BivariatePolynomial
    from repro.crypto.feldman import FeldmanCommitment
    from repro.vss.messages import ReadyMsg, ready_signing_bytes

    for dealer in dealers:
        f = BivariatePolynomial.random_symmetric(
            T, G.q, random.Random(1000 + dealer), secret=dealer
        )
        c = FeldmanCommitment.commit(f, G)
        sid = SessionId(dealer, 0)
        payload = ready_signing_bytes(sid, commitment_digest(c))
        senders = [m for m in range(1, N + 1) if m != node.node_id][:5]
        for m in senders:  # n - t - f = 5 signed readies
            sig = stores[m].sign(payload, rng)
            node.on_message(
                m, ReadyMsg(sid, c, f.evaluate(m, node.node_id), sig, 50), ctx
            )
        assert node.sessions[dealer].completed is not None


class TestVssCompletionClause:
    def test_t_plus_one_completions_arm_timer_for_non_leader(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        _drive_vss_to_completion(node, ctx, stores, rng, [1, 3])
        assert ctx.timers == []
        _drive_vss_to_completion(node, ctx, stores, rng, [4])  # t+1 = 3rd
        assert len(ctx.timers) == 1
        _, delay, tag = ctx.timers[0]
        assert delay == 30.0 and tag == ("dkg-timeout", 0)

    def test_leader_proposes_instead_of_arming_timer(self, world) -> None:
        _, ctx, stores, ca, config, rng = world
        leader = DkgNode(1, config, stores[1], ca, tau=0, secret=5)
        lctx = StubContext(node_id=1, n_nodes=N)
        _drive_vss_to_completion(leader, lctx, stores, rng, [3, 4, 5])
        sends = lctx.sent_of_kind("dkg.send")
        assert len(sends) == N
        assert lctx.timers == []
        proposal = sends[0][1]
        assert proposal.q_set == (3, 4, 5)
        assert isinstance(proposal.proof, RTypeProof)

    def test_ready_certificates_collected(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        _drive_vss_to_completion(node, ctx, stores, rng, [1])
        cert = node.q_hat[1]
        assert cert.dealer == 1
        assert len(cert.witnesses) == 5


class TestUponDkgSend:
    def _valid_proposal(self, world):
        node, ctx, stores, ca, config, rng = world
        leader = DkgNode(1, config, stores[1], ca, tau=0, secret=5)
        lctx = StubContext(node_id=1, n_nodes=N)
        _drive_vss_to_completion(leader, lctx, stores, rng, [3, 4, 5])
        return lctx.sent_of_kind("dkg.send")[0][1]

    def test_valid_proposal_triggers_signed_echo(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        proposal = self._valid_proposal(world)
        node.on_message(1, proposal, ctx)
        echoes = ctx.sent_of_kind("dkg.echo")
        assert len(echoes) == N
        _, echo = echoes[0]
        assert ca.verify(2, dkg_echo_bytes(0, echo.q), echo.signature)

    def test_proposal_from_non_leader_ignored(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        proposal = self._valid_proposal(world)
        node.on_message(3, proposal, ctx)  # node 3 is not view-0 leader
        assert ctx.sent_of_kind("dkg.echo") == []

    def test_proposal_with_tampered_certs_ignored(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        proposal = self._valid_proposal(world)
        from repro.dkg.messages import DkgSendMsg, ReadyCert

        bad_certs = tuple(
            ReadyCert(c.dealer, b"\x00" * 32, c.witnesses)
            for c in proposal.proof.certs
        )
        forged = DkgSendMsg(0, 0, RTypeProof(bad_certs), (), 100)
        node.on_message(1, forged, ctx)
        assert ctx.sent_of_kind("dkg.echo") == []

    def test_locked_node_refuses_conflicting_proposal(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        node.locked_q = (1, 2, 3)
        proposal = self._valid_proposal(world)  # proposes (3, 4, 5)
        node.on_message(1, proposal, ctx)
        assert ctx.sent_of_kind("dkg.echo") == []


class TestUponDkgEchoReady:
    def _signed_echo(self, stores, rng, voter, q):
        sig = stores[voter].sign(dkg_echo_bytes(0, q), rng)
        return DkgEchoMsg(0, 0, q, sig, 50)

    def _signed_ready(self, stores, rng, voter, q):
        sig = stores[voter].sign(dkg_ready_bytes(0, q), rng)
        return DkgReadyMsg(0, 0, q, sig, 50)

    def test_echo_quorum_locks_and_sends_ready(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        q = (3, 4, 5)
        for voter in (1, 3, 4, 5):  # quorum = ceil(10/2) = 5
            node.on_message(voter, self._signed_echo(stores, rng, voter, q), ctx)
        assert node.locked_q is None
        node.on_message(6, self._signed_echo(stores, rng, 6, q), ctx)
        assert node.locked_q == q
        assert len(ctx.sent_of_kind("dkg.ready")) == N

    def test_bad_signature_echo_not_counted(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        q = (3, 4, 5)
        good = [self._signed_echo(stores, rng, v, q) for v in (1, 3, 4, 5)]
        for voter, msg in zip((1, 3, 4, 5), good):
            node.on_message(voter, msg, ctx)
        # echo signed by the wrong key (claims sender 6, signed by 7)
        forged = self._signed_echo(stores, rng, 7, q)
        node.on_message(6, forged, ctx)
        assert node.locked_q is None

    def test_t_plus_one_readies_amplify(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        q = (3, 4, 5)
        for voter in (1, 3):
            node.on_message(voter, self._signed_ready(stores, rng, voter, q), ctx)
        assert ctx.sent_of_kind("dkg.ready") == []
        node.on_message(4, self._signed_ready(stores, rng, 4, q), ctx)
        assert len(ctx.sent_of_kind("dkg.ready")) == N
        assert node.locked_q == q

    def test_output_threshold_decides_q(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        q = (3, 4, 5)
        for voter in (1, 3, 4, 5, 6):  # n - t - f = 5
            node.on_message(voter, self._signed_ready(stores, rng, voter, q), ctx)
        assert node.decided_q == q
        # completion waits for the VSS sessions of Q to finish
        assert node.completed is None
        _drive_vss_to_completion(node, ctx, stores, rng, [3, 4, 5])
        assert node.completed is not None
        assert node.completed.q_set == q
        # share = sum of the three VSS shares
        expected = sum(node.sessions[d].completed.share for d in q) % G.q
        assert node.completed.share == expected


class TestLeaderChange:
    def test_timeout_broadcasts_lead_ch(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        _drive_vss_to_completion(node, ctx, stores, rng, [1, 3, 4])
        ctx.clear()
        node.on_timer(("dkg-timeout", 0), ctx)
        msgs = ctx.sent_of_kind("dkg.lead-ch")
        assert len(msgs) == N
        _, lead_ch = msgs[0]
        assert lead_ch.view == 1
        assert ca.verify(2, lead_ch_bytes(0, 1), lead_ch.signature)
        assert node.lcflag

    def test_stale_timeout_ignored(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        node.view = 1
        node.on_timer(("dkg-timeout", 0), ctx)
        assert ctx.sent == []

    def test_t_plus_one_lead_ch_joins_smallest(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        # votes for views 2 and 1 from two other nodes
        sig3 = stores[3].sign(lead_ch_bytes(0, 2), rng)
        node.on_message(3, LeadChMsg(0, 2, None, sig3, 50), ctx)
        assert ctx.sent_of_kind("dkg.lead-ch") == []
        sig4 = stores[4].sign(lead_ch_bytes(0, 1), rng)
        node.on_message(4, LeadChMsg(0, 1, None, sig4, 50), ctx)
        # t+1 = 3 voters total? node's own vote counts after it sends.
        # With 2 distinct voters the rule hasn't fired yet:
        sig5 = stores[5].sign(lead_ch_bytes(0, 1), rng)
        node.on_message(5, LeadChMsg(0, 1, None, sig5, 50), ctx)
        sent = ctx.sent_of_kind("dkg.lead-ch")
        assert len(sent) == N
        assert sent[0][1].view == 1  # the smallest requested view

    def test_quorum_of_lead_ch_enters_view(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        for voter in (1, 3, 4, 5, 6):  # n - t - f = 5 votes for view 1
            sig = stores[voter].sign(lead_ch_bytes(0, 1), rng)
            node.on_message(voter, LeadChMsg(0, 1, None, sig, 50), ctx)
        assert node.view == 1
        assert not node.lcflag
        assert ctx.leader_changes == 1
        # node 2 is the leader of view 1 (initial leader 1 + 1)
        assert node._is_leader()

    def test_new_leader_proposes_adopted_evidence(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        _drive_vss_to_completion(node, ctx, stores, rng, [1, 3, 4])
        ctx.clear()
        for voter in (1, 3, 4, 5, 6):
            sig = stores[voter].sign(lead_ch_bytes(0, 1), rng)
            node.on_message(voter, LeadChMsg(0, 1, None, sig, 50), ctx)
        # as the view-1 leader with t+1 certs it proposes immediately
        sends = ctx.sent_of_kind("dkg.send")
        assert len(sends) == N
        assert sends[0][1].view == 1
        assert len(sends[0][1].election) >= 5

    def test_lead_ch_for_current_or_past_view_ignored(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        node.view = 2
        sig = stores[3].sign(lead_ch_bytes(0, 1), rng)
        node.on_message(3, LeadChMsg(0, 1, None, sig, 50), ctx)
        assert node.lc_votes.get(1) is None or 3 not in node.lc_votes[1]

    def test_proposal_with_election_proof_fast_forwards_view(self, world) -> None:
        node, ctx, stores, ca, config, rng = world
        # Build a valid view-1 proposal from node 2's perspective...
        # leader of view 1 is node 2 itself, so use a node-3 instance
        # (leader of view 1 from initial leader 1 is node 2; craft for
        # a third node's perspective instead).
        node3 = DkgNode(3, config, stores[3], ca, tau=0, secret=5)
        ctx3 = StubContext(node_id=3, n_nodes=N)
        _drive_vss_to_completion(node3, ctx3, stores, rng, [4, 5, 6])
        # election proof: 5 signed lead-ch votes for view 1
        from repro.dkg.messages import LeadChWitness

        witnesses = tuple(
            LeadChWitness(v, 1, stores[v].sign(lead_ch_bytes(0, 1), rng))
            for v in (1, 4, 5, 6, 7)
        )
        proof = RTypeProof(tuple(node3.q_hat[d] for d in (4, 5, 6)))
        proposal = DkgSendMsg(0, 1, proof, witnesses, 100)
        node3.on_message(2, proposal, ctx3)  # node 2 leads view 1
        assert node3.view == 1
        assert len(ctx3.sent_of_kind("dkg.echo")) == N
