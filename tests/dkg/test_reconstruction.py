"""Tests for the DKG-layer Rec protocol (Definition 4.1 consistency:
every honest reconstructor obtains the same fixed value s)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.adversary import Adversary
from repro.sim.node import Context, ProtocolNode
from repro.dkg import DkgConfig, DkgSharePointMsg, run_dkg

from tests.helpers import default_test_group

G = default_test_group()


class TestDkgRec:
    def test_all_nodes_reconstruct_same_value(self) -> None:
        res = run_dkg(DkgConfig(n=7, t=2, group=G), seed=5, reconstruct=True)
        values = res.protocol_reconstructions
        assert len(values) == 7
        assert set(values.values()) == {res.expected_secret()}

    def test_protocol_rec_matches_client_side(self) -> None:
        res = run_dkg(DkgConfig(n=7, t=2, group=G), seed=6, reconstruct=True)
        assert set(res.protocol_reconstructions.values()) == {res.reconstruct()}

    def test_rec_with_crashed_nodes(self) -> None:
        cfg = DkgConfig(n=9, t=2, f=1, group=G)
        adv = Adversary.crash_only(t=2, f=1, crash_plan=[(0.0, 9, None)])
        res = run_dkg(cfg, seed=7, adversary=adv, reconstruct=True)
        values = res.protocol_reconstructions
        assert set(values) == set(range(1, 9))
        assert len(set(values.values())) == 1

    def test_byzantine_bad_rec_shares_filtered(self) -> None:
        """A corrupt node flooding wrong share points cannot corrupt or
        block reconstruction — points failing verify-share are dropped."""

        @dataclass
        class BadRecNode(ProtocolNode):
            fired: bool = False

            def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
                if isinstance(payload, DkgSharePointMsg) and not self.fired:
                    self.fired = True
                    for j in range(1, 8):
                        ctx.send(j, DkgSharePointMsg(0, 12345, 20))

        def factory(i, config, keystore, ca):
            return BadRecNode(i) if i == 7 else None

        cfg = DkgConfig(n=7, t=2, group=G)
        adv = Adversary.corrupting(t=2, f=0, byzantine={7})
        res = run_dkg(
            cfg, seed=8, adversary=adv, node_factory=factory, reconstruct=True
        )
        values = {
            i: v for i, v in res.protocol_reconstructions.items() if i != 7
        }
        assert len(values) == 6
        assert len(set(values.values())) == 1

    def test_rec_requires_completion(self) -> None:
        import pytest
        from repro.sim.pki import CertificateAuthority, KeyStore
        from repro.dkg.node import DkgNode
        import random

        from tests.helpers import StubContext, default_test_group

        rng = random.Random(0)
        ca = CertificateAuthority(G)
        ks = KeyStore.enroll(1, ca, rng)
        node = DkgNode(1, DkgConfig(n=7, t=2, group=G), ks, ca)
        with pytest.raises(RuntimeError, match="before DKG completes"):
            node.start_reconstruction(StubContext(node_id=1))

    def test_rec_message_complexity(self) -> None:
        res = run_dkg(DkgConfig(n=7, t=2, group=G), seed=9, reconstruct=True)
        # one broadcast per node: n^2 rec-share messages
        assert res.metrics.messages_by_kind["dkg.rec-share"] == 49
