"""Unit tests for DKG proof verification (verify-signature of Fig. 2
and the election checks of Fig. 3)."""

from __future__ import annotations

import random

import pytest

from repro.crypto.hashing import commitment_digest
from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.vss.config import VssConfig
from repro.vss.messages import ReadyWitness, SessionId, ready_signing_bytes
from repro.dkg.messages import (
    LeadChWitness,
    MTypeProof,
    ReadyCert,
    RTypeProof,
    SetVote,
    dkg_echo_bytes,
    dkg_ready_bytes,
    lead_ch_bytes,
    q_encoding,
)
from repro.dkg.proofs import (
    verify_election,
    verify_m_proof,
    verify_r_proof,
    verify_ready_cert,
)

from tests.helpers import default_test_group

G = default_test_group()
TAU = 0


@pytest.fixture(scope="module")
def pki():
    rng = random.Random(11)
    ca = CertificateAuthority(G)
    stores = {i: KeyStore.enroll(i, ca, rng) for i in range(1, 8)}
    return ca, stores, rng


@pytest.fixture(scope="module")
def config() -> VssConfig:
    return VssConfig(n=7, t=2, f=0, group=G)


def _ready_cert(config, ca, stores, rng, dealer=1, signers=None):
    f = BivariatePolynomial.random_symmetric(config.t, G.q, rng)
    commitment = FeldmanCommitment.commit(f, G)
    digest = commitment_digest(commitment)
    payload = ready_signing_bytes(SessionId(dealer, TAU), digest)
    signers = signers if signers is not None else list(range(1, 6))
    witnesses = tuple(
        ReadyWitness(i, stores[i].sign(payload, rng)) for i in signers
    )
    return ReadyCert(dealer, digest, witnesses)


class TestReadyCert:
    def test_valid_cert_accepted(self, pki, config) -> None:
        ca, stores, rng = pki
        cert = _ready_cert(config, ca, stores, rng)
        assert verify_ready_cert(config, ca, TAU, cert)

    def test_too_few_witnesses_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        cert = _ready_cert(config, ca, stores, rng, signers=[1, 2, 3, 4])
        assert not verify_ready_cert(config, ca, TAU, cert)

    def test_duplicate_signers_do_not_count_twice(self, pki, config) -> None:
        ca, stores, rng = pki
        cert = _ready_cert(config, ca, stores, rng, signers=[1, 1, 1, 2, 3, 4])
        assert not verify_ready_cert(config, ca, TAU, cert)

    def test_wrong_digest_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        cert = _ready_cert(config, ca, stores, rng)
        forged = ReadyCert(cert.dealer, b"\x00" * 32, cert.witnesses)
        assert not verify_ready_cert(config, ca, TAU, forged)

    def test_wrong_tau_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        cert = _ready_cert(config, ca, stores, rng)
        assert not verify_ready_cert(config, ca, TAU + 1, cert)

    def test_out_of_range_signer_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        cert = _ready_cert(config, ca, stores, rng)
        bad = ReadyCert(
            cert.dealer,
            cert.digest,
            cert.witnesses[:-1] + (ReadyWitness(99, cert.witnesses[0].signature),),
        )
        assert not verify_ready_cert(config, ca, TAU, bad)


class TestRTypeProof:
    def test_valid_proof(self, pki, config) -> None:
        ca, stores, rng = pki
        certs = tuple(
            _ready_cert(config, ca, stores, rng, dealer=d) for d in (1, 2, 3)
        )
        assert verify_r_proof(config, ca, TAU, RTypeProof(certs))

    def test_too_few_dealers_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        certs = tuple(
            _ready_cert(config, ca, stores, rng, dealer=d) for d in (1, 2)
        )
        assert not verify_r_proof(config, ca, TAU, RTypeProof(certs))

    def test_duplicate_dealers_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        cert = _ready_cert(config, ca, stores, rng, dealer=1)
        assert not verify_r_proof(config, ca, TAU, RTypeProof((cert, cert, cert)))

    def test_one_bad_cert_poisons_proof(self, pki, config) -> None:
        ca, stores, rng = pki
        good = [_ready_cert(config, ca, stores, rng, dealer=d) for d in (1, 2)]
        bad = _ready_cert(config, ca, stores, rng, dealer=3, signers=[1, 2])
        assert not verify_r_proof(config, ca, TAU, RTypeProof(tuple(good) + (bad,)))


class TestMTypeProof:
    def _votes(self, stores, rng, q, kind, voters):
        payload = (
            dkg_echo_bytes(TAU, q) if kind == "echo" else dkg_ready_bytes(TAU, q)
        )
        return tuple(
            SetVote(i, kind, stores[i].sign(payload, rng)) for i in voters
        )

    def test_echo_quorum_accepted(self, pki, config) -> None:
        ca, stores, rng = pki
        q = (1, 2, 3)
        votes = self._votes(stores, rng, q, "echo", range(1, 6))  # 5 = ceil(10/2)
        assert verify_m_proof(config, ca, TAU, MTypeProof(q, votes))

    def test_ready_quorum_accepted(self, pki, config) -> None:
        ca, stores, rng = pki
        q = (2, 4, 6)
        votes = self._votes(stores, rng, q, "ready", range(1, 4))  # t+1 = 3
        assert verify_m_proof(config, ca, TAU, MTypeProof(q, votes))

    def test_insufficient_echoes_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        q = (1, 2, 3)
        votes = self._votes(stores, rng, q, "echo", range(1, 5))  # only 4
        assert not verify_m_proof(config, ca, TAU, MTypeProof(q, votes))

    def test_small_q_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        q = (1, 2)  # < t+1 dealers
        votes = self._votes(stores, rng, q, "echo", range(1, 6))
        assert not verify_m_proof(config, ca, TAU, MTypeProof(q, votes))

    def test_votes_for_other_set_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        votes = self._votes(stores, rng, (1, 2, 3), "echo", range(1, 6))
        assert not verify_m_proof(config, ca, TAU, MTypeProof((1, 2, 4), votes))

    def test_echo_and_ready_quorums_not_mixed(self, pki, config) -> None:
        # 4 echoes + 2 readies: neither quorum alone suffices and they
        # must not be pooled.
        ca, stores, rng = pki
        q = (1, 2, 3)
        votes = self._votes(stores, rng, q, "echo", range(1, 5)) + self._votes(
            stores, rng, q, "ready", range(5, 7)
        )
        assert not verify_m_proof(config, ca, TAU, MTypeProof(q, votes))


class TestElection:
    def test_view_zero_needs_no_proof(self, pki, config) -> None:
        ca, _, _ = pki
        assert verify_election(config, ca, TAU, 0, ())

    def test_valid_election(self, pki, config) -> None:
        ca, stores, rng = pki
        view = 2
        payload = lead_ch_bytes(TAU, view)
        witnesses = tuple(
            LeadChWitness(i, view, stores[i].sign(payload, rng))
            for i in range(1, 6)
        )
        assert verify_election(config, ca, TAU, view, witnesses)

    def test_insufficient_votes_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        view = 1
        payload = lead_ch_bytes(TAU, view)
        witnesses = tuple(
            LeadChWitness(i, view, stores[i].sign(payload, rng))
            for i in range(1, 5)
        )
        assert not verify_election(config, ca, TAU, view, witnesses)

    def test_votes_for_other_view_rejected(self, pki, config) -> None:
        ca, stores, rng = pki
        payload = lead_ch_bytes(TAU, 1)
        witnesses = tuple(
            LeadChWitness(i, 1, stores[i].sign(payload, rng)) for i in range(1, 6)
        )
        assert not verify_election(config, ca, TAU, 2, witnesses)


class TestEncodings:
    def test_q_encoding_canonical(self) -> None:
        assert q_encoding((3, 1, 2)) == q_encoding((1, 2, 3))

    def test_echo_and_ready_domains_are_separated(self) -> None:
        assert dkg_echo_bytes(0, (1, 2)) != dkg_ready_bytes(0, (1, 2))

    def test_tau_bound(self) -> None:
        assert dkg_echo_bytes(0, (1,)) != dkg_echo_bytes(1, (1,))
        assert lead_ch_bytes(0, 1) != lead_ch_bytes(1, 1)
