"""Tests for DKG-level recovery and help budgets (d-uniform bounds)."""

from __future__ import annotations

import random

import pytest

from repro.sim.pki import CertificateAuthority, KeyStore
from repro.dkg.config import DkgConfig
from repro.dkg.messages import DkgHelpMsg
from repro.dkg.node import DkgNode

from tests.helpers import StubContext, default_test_group

G = default_test_group()


@pytest.fixture()
def node_and_ctx():
    rng = random.Random(3)
    ca = CertificateAuthority(G)
    stores = {i: KeyStore.enroll(i, ca, rng) for i in range(1, 8)}
    config = DkgConfig(n=7, t=2, group=G, d_budget=2)
    node = DkgNode(1, config, stores[1], ca, tau=0, secret=4)
    ctx = StubContext(node_id=1, n_nodes=7)
    node.start(ctx)  # populates the B log with this node's VSS sends
    ctx.clear()
    return node, ctx


class TestDkgHelp:
    def test_help_replays_b_log_for_requester(self, node_and_ctx) -> None:
        node, ctx = node_and_ctx
        node.on_message(3, DkgHelpMsg(0), ctx)
        # B_3 at the DKG layer is empty (the node only dealt VSS sends,
        # which live in the session's own log); send a DKG message first
        assert ctx.sent == []

    def test_per_node_and_total_budgets(self, node_and_ctx) -> None:
        node, ctx = node_and_ctx
        # seed the DKG b_log with something addressed to node 3
        from repro.sim.network import RawPayload

        node._b_log[3].append(RawPayload("dkg.test", 5))
        for _ in range(5):
            node.on_message(3, DkgHelpMsg(0), ctx)
        # per-node budget d = 2 responses
        assert len(ctx.sent) == 2
        ctx.clear()
        node._b_log[4].append(RawPayload("dkg.test", 5))
        node._b_log[5].append(RawPayload("dkg.test", 5))
        node._b_log[6].append(RawPayload("dkg.test", 5))
        for sender in (4, 5, 6):
            for _ in range(3):
                node.on_message(sender, DkgHelpMsg(0), ctx)
        # total budget (t+1) d = 6; 2 already spent => 4 more responses
        assert len(ctx.sent) == 4

    def test_recover_triggers_session_and_dkg_help(self, node_and_ctx) -> None:
        node, ctx = node_and_ctx
        node.on_recover(ctx)
        vss_help = ctx.sent_of_kind("vss.help")
        dkg_help = ctx.sent_of_kind("dkg.help")
        # n sessions x n nodes of VSS help + n DKG help messages: the
        # O(n^2) recovery cost from §3.
        assert len(vss_help) == 7 * 7
        assert len(dkg_help) == 7
        # B replay also happened (the node's own dealt rows)
        assert len(ctx.sent_of_kind("vss.send")) == 7
