"""Tests for DkgConfig: leader rotation, member lists, q_size."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dkg.config import DkgConfig

from tests.helpers import default_test_group

G = default_test_group()


class TestLeaderRotation:
    def test_default_cycle(self) -> None:
        cfg = DkgConfig(n=7, t=2, group=G)
        assert [cfg.leader_of_view(v) for v in range(8)] == [
            1, 2, 3, 4, 5, 6, 7, 1
        ]

    @given(st.integers(0, 100))
    def test_rotation_is_periodic(self, view: int) -> None:
        cfg = DkgConfig(n=7, t=2, group=G)
        assert cfg.leader_of_view(view) == cfg.leader_of_view(view + 7)

    def test_rotation_over_sparse_members(self) -> None:
        cfg = DkgConfig(
            n=4, t=1, group=G, members=(2, 5, 8, 9), initial_leader=5
        )
        assert [cfg.leader_of_view(v) for v in range(5)] == [5, 8, 9, 2, 5]

    def test_initial_leader_must_be_member(self) -> None:
        with pytest.raises(ValueError, match="member"):
            DkgConfig(n=4, t=1, group=G, members=(2, 5, 8, 9), initial_leader=1)


class TestMembers:
    def test_member_count_must_match_n(self) -> None:
        with pytest.raises(ValueError, match="inconsistent"):
            DkgConfig(n=4, t=1, group=G, members=(1, 2, 3), initial_leader=1)

    def test_members_sorted_and_deduplicated_check(self) -> None:
        cfg = DkgConfig(n=4, t=1, group=G, members=(9, 2, 5, 8), initial_leader=2)
        assert cfg.vss().indices == [2, 5, 8, 9]
        with pytest.raises(ValueError, match="distinct"):
            DkgConfig(n=4, t=1, group=G, members=(1, 1, 2, 3), initial_leader=1)

    def test_zero_index_forbidden(self) -> None:
        # index 0 is the secret's evaluation point
        with pytest.raises(ValueError):
            DkgConfig(n=4, t=1, group=G, members=(0, 1, 2, 3), initial_leader=1)


class TestQSize:
    def test_default_is_t_plus_one(self) -> None:
        assert DkgConfig(n=7, t=2, group=G).proposal_size == 3

    def test_override(self) -> None:
        cfg = DkgConfig(n=7, t=1, group=G, q_size=4)
        assert cfg.proposal_size == 4

    def test_out_of_range_rejected(self) -> None:
        with pytest.raises(ValueError, match="q_size"):
            DkgConfig(n=7, t=2, group=G, q_size=8)
        with pytest.raises(ValueError, match="q_size"):
            DkgConfig(n=7, t=2, group=G, q_size=0)
