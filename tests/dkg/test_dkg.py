"""Integration tests for the DKG protocol: Definition 4.1 properties
under honest runs, crash faults, and Byzantine leaders/participants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import pytest

from repro.sim.adversary import Adversary
from repro.sim.clock import TimeoutPolicy
from repro.sim.network import ExponentialDelay
from repro.sim.node import Context, ProtocolNode
from repro.dkg import (
    DkgConfig,
    DkgNode,
    DkgSendMsg,
    MTypeProof,
    RTypeProof,
    run_dkg,
)

from tests.helpers import default_test_group

G = default_test_group()


def _config(n: int = 7, t: int = 2, f: int = 0, **kw: Any) -> DkgConfig:
    kw.setdefault("group", G)
    kw.setdefault("timeout", TimeoutPolicy(initial=25.0, multiplier=2.0))
    return DkgConfig(n=n, t=t, f=f, **kw)


class TestOptimisticPath:
    @pytest.mark.parametrize("n,t,f", [(4, 1, 0), (7, 2, 0), (9, 2, 1), (10, 3, 0)])
    def test_honest_run_completes_in_view_zero(self, n: int, t: int, f: int) -> None:
        res = run_dkg(_config(n, t, f), seed=1)
        assert res.succeeded
        assert all(out.view == 0 for out in res.completions.values())
        assert len(res.q_set) == t + 1

    def test_all_nodes_agree_on_everything(self) -> None:
        res = run_dkg(_config(), seed=2)
        # Single Q, single commitment, single public key across nodes.
        assert res.q_set
        assert res.commitment
        assert res.public_key

    def test_shares_reconstruct_group_secret(self) -> None:
        res = run_dkg(_config(), seed=3)
        assert res.reconstruct() == res.expected_secret()

    def test_public_key_matches_group_secret(self) -> None:
        res = run_dkg(_config(), seed=4)
        assert res.public_key == G.commit(res.expected_secret())

    def test_shares_verify_against_combined_commitment(self) -> None:
        res = run_dkg(_config(), seed=5)
        commitment = res.commitment
        for i, share in res.shares.items():
            assert commitment.verify_share(i, share)

    def test_fixed_secrets_are_respected(self) -> None:
        secrets = {i: 1000 + i for i in range(1, 8)}
        res = run_dkg(_config(), seed=6, secrets=secrets)
        expected = sum(secrets[d] for d in res.q_set) % G.q
        assert res.reconstruct() == expected

    def test_nobody_knows_the_secret(self) -> None:
        # No single node's share equals the group secret (privacy smoke
        # test; the real privacy argument is information-theoretic
        # until t+1 shares combine).
        res = run_dkg(_config(), seed=7)
        secret = res.expected_secret()
        assert all(share != secret for share in res.shares.values())

    def test_heavy_tailed_network_still_completes_optimistically(self) -> None:
        res = run_dkg(
            _config(timeout=TimeoutPolicy(initial=200.0)),
            seed=8,
            delay_model=ExponentialDelay(mean=3.0),
        )
        assert res.succeeded
        assert res.metrics.leader_changes == 0


class TestCrashFaults:
    def test_completes_with_f_crashed_non_leader(self) -> None:
        cfg = _config(n=9, t=2, f=1)
        adv = Adversary.crash_only(t=2, f=1, crash_plan=[(0.0, 5, None)])
        res = run_dkg(cfg, seed=9, adversary=adv)
        assert res.succeeded  # crashed node excluded from "finally up"
        assert 5 not in res.completed_nodes

    def test_crashed_and_recovered_node_completes(self) -> None:
        cfg = _config(n=9, t=2, f=1)
        adv = Adversary.crash_only(t=2, f=1, crash_plan=[(1.0, 5, 60.0)])
        res = run_dkg(cfg, seed=10, adversary=adv)
        assert 5 in res.completed_nodes
        assert res.metrics.recoveries == 1

    def test_crashed_leader_triggers_leader_change(self) -> None:
        cfg = _config(n=9, t=2, f=1)
        adv = Adversary.crash_only(t=2, f=1, crash_plan=[(0.5, 1, None)])
        res = run_dkg(cfg, seed=11, adversary=adv)
        completions = {i: o.view for i, o in res.completions.items()}
        assert set(completions) == set(range(2, 10))
        assert all(view >= 1 for view in completions.values())
        assert res.metrics.leader_changes > 0

    def test_leader_crash_after_proposal_is_harmless(self) -> None:
        # Leader crashes *after* its send messages are out: broadcast
        # still completes through echoes/readies, no leader change.
        cfg = _config(n=9, t=2, f=1)
        adv = Adversary.crash_only(t=2, f=1, crash_plan=[(8.0, 1, None)])
        res = run_dkg(cfg, seed=12, adversary=adv)
        assert set(res.completed_nodes) >= set(range(2, 10))


@dataclass
class SilentNode(ProtocolNode):
    """Byzantine: never sends anything."""

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        pass

    def on_operator(self, payload: Any, ctx: Context) -> None:
        pass


class _SilentFactory:
    def __init__(self, silent: set[int]):
        self.silent = silent

    def __call__(self, i, config, keystore, ca):
        return SilentNode(i) if i in self.silent else None


class TestByzantineLeader:
    def test_silent_leader_replaced_and_dkg_completes(self) -> None:
        cfg = _config()
        adv = Adversary.corrupting(t=2, f=0, byzantine={1})
        res = run_dkg(cfg, seed=13, adversary=adv, node_factory=_SilentFactory({1}))
        assert res.succeeded
        assert all(out.view >= 1 for out in res.completions.values())
        assert res.reconstruct() == res.expected_secret()

    def test_two_silent_leaders_in_a_row(self) -> None:
        cfg = _config()
        adv = Adversary.corrupting(t=2, f=0, byzantine={1, 2})
        res = run_dkg(
            cfg, seed=14, adversary=adv, node_factory=_SilentFactory({1, 2})
        )
        assert res.succeeded
        assert all(out.view >= 2 for out in res.completions.values())
        # pessimistic phase bookkeeping
        assert res.metrics.messages_by_kind["dkg.lead-ch"] > 0

    def test_equivocating_leader_cannot_split_agreement(self) -> None:
        """A Byzantine leader sends different (valid!) proposals to the
        two halves of the network.  The echo quorum forces a single Q."""

        class EquivocatingLeader(DkgNode):
            def _propose(self, ctx: Context) -> None:
                if self.view in self.proposed_in_view:
                    return
                proof = self._current_proof()
                if proof is None or not isinstance(proof, RTypeProof):
                    return
                if len(self.q_hat) < self.config.t + 2:
                    return  # wait until we can build two distinct sets
                self.proposed_in_view.add(self.view)
                dealers = sorted(self.q_hat)
                set_a = tuple(dealers[: self.config.t + 1])
                set_b = tuple(dealers[1 : self.config.t + 2])
                proof_a = RTypeProof(tuple(self.q_hat[d] for d in set_a))
                proof_b = RTypeProof(tuple(self.q_hat[d] for d in set_b))
                for j in self.vss_config.indices:
                    proof_x = proof_a if j <= self.config.n // 2 else proof_b
                    msg = self._stamp(
                        DkgSendMsg(self.tau, self.view, proof_x, ())
                    )
                    ctx.send(j, msg)

        def factory(i, config, keystore, ca):
            if i == 1:
                return EquivocatingLeader(i, config, keystore, ca)
            return None

        cfg = _config()
        adv = Adversary.corrupting(t=2, f=0, byzantine={1})
        res = run_dkg(cfg, seed=15, adversary=adv, node_factory=factory)
        # Safety: all completing nodes agree (q_set raises on divergence).
        completed = res.completions
        if completed:
            _ = res.q_set
            _ = res.public_key

    def test_leader_with_forged_proof_is_ignored(self) -> None:
        """A leader proposing without valid ready certificates gets no
        echoes; the protocol falls through to leader change."""

        class ForgingLeader(DkgNode):
            def _propose(self, ctx: Context) -> None:
                if self.view in self.proposed_in_view:
                    return
                if len(self.q_hat) < self.config.t + 1:
                    return
                self.proposed_in_view.add(self.view)
                # Tamper every digest: signatures no longer verify.
                from repro.dkg.messages import ReadyCert

                certs = tuple(
                    ReadyCert(c.dealer, b"\x11" * 32, c.witnesses)
                    for c in list(self.q_hat.values())[: self.config.t + 1]
                )
                proof = RTypeProof(certs)
                msg = self._stamp(DkgSendMsg(self.tau, self.view, proof, ()))
                for j in self.vss_config.indices:
                    ctx.send(j, msg)

        def factory(i, config, keystore, ca):
            if i == 1:
                return ForgingLeader(i, config, keystore, ca)
            return None

        cfg = _config()
        adv = Adversary.corrupting(t=2, f=0, byzantine={1})
        res = run_dkg(cfg, seed=16, adversary=adv, node_factory=factory)
        honest = [i for i in range(2, 8)]
        assert all(res.nodes[i].completed is not None for i in honest)
        assert all(res.nodes[i].completed.view >= 1 for i in honest)


class TestByzantineParticipants:
    def test_t_silent_participants_do_not_block(self) -> None:
        cfg = _config()
        adv = Adversary.corrupting(t=2, f=0, byzantine={6, 7})
        res = run_dkg(
            cfg, seed=17, adversary=adv, node_factory=_SilentFactory({6, 7})
        )
        assert res.succeeded
        assert res.reconstruct() == res.expected_secret()

    def test_silent_nodes_excluded_from_q(self) -> None:
        # Silent nodes never deal, so they cannot appear in Q.
        cfg = _config()
        adv = Adversary.corrupting(t=2, f=0, byzantine={6, 7})
        res = run_dkg(
            cfg, seed=18, adversary=adv, node_factory=_SilentFactory({6, 7})
        )
        assert not (set(res.q_set) & {6, 7})

    def test_mixed_byzantine_and_crash(self) -> None:
        cfg = _config(n=10, t=2, f=1)
        adv = Adversary(
            t=2,
            f=1,
            byzantine=frozenset({4}),
            crash_plan=[(2.0, 8, 40.0)],
            d_budget=5,
        )
        res = run_dkg(cfg, seed=19, adversary=adv, node_factory=_SilentFactory({4}))
        assert res.succeeded
        assert res.reconstruct() == res.expected_secret()


class TestDeterminismAndMetrics:
    def test_same_seed_reproduces_run(self) -> None:
        a = run_dkg(_config(), seed=77)
        b = run_dkg(_config(), seed=77)
        assert a.public_key == b.public_key
        assert a.metrics.summary() == b.metrics.summary()

    def test_different_seeds_give_different_keys(self) -> None:
        a = run_dkg(_config(), seed=1)
        b = run_dkg(_config(), seed=2)
        assert a.public_key != b.public_key

    def test_message_kind_inventory(self) -> None:
        res = run_dkg(_config(), seed=20)
        kinds = set(res.metrics.messages_by_kind)
        assert {"vss.send", "vss.echo", "vss.ready", "dkg.send", "dkg.echo",
                "dkg.ready"} <= kinds
        # n VSS instances: n sends of n rows, n^2 echoes per dealer...
        n = 7
        assert res.metrics.messages_by_kind["vss.send"] == n * n
        assert res.metrics.messages_by_kind["vss.echo"] == n * n * n
        assert res.metrics.messages_by_kind["dkg.send"] == n

    def test_last_completion_time_reflects_dkg_output(self) -> None:
        res = run_dkg(_config(), seed=21)
        assert res.last_completion_time is not None
        assert res.last_completion_time > 0


class TestResilienceBoundary:
    def test_config_rejects_sub_resilient_parameters(self) -> None:
        with pytest.raises(Exception):
            DkgConfig(n=6, t=2, f=0, group=G)

    def test_sub_resilient_run_with_t_plus_one_silent_stalls(self) -> None:
        # With enforcement off and t+1 actually-faulty nodes (more than
        # the adversary bound), the DKG cannot complete: agreement on Q
        # needs n - t - f readies, which the faulty majority denies.
        cfg = _config(
            n=7, t=2, f=0, enforce_resilience=False,
            timeout=TimeoutPolicy(initial=10.0, multiplier=1.0, cap=10.0),
        )
        adv = Adversary(t=3, f=0, byzantine=frozenset({5, 6, 7}))
        res = run_dkg(
            cfg,
            seed=22,
            adversary=adv,
            node_factory=_SilentFactory({5, 6, 7}),
            until=2_000.0,
            max_events=None,
        )
        assert not res.completions  # nobody can finish


class TestViewRotation:
    def test_leader_of_view_cycles(self) -> None:
        cfg = _config(n=7, initial_leader=6)
        assert [cfg.leader_of_view(v) for v in range(4)] == [6, 7, 1, 2]

    def test_invalid_initial_leader_rejected(self) -> None:
        with pytest.raises(ValueError):
            DkgConfig(n=7, t=2, initial_leader=8, group=G)

    def test_nonstandard_initial_leader_runs(self) -> None:
        res = run_dkg(_config(initial_leader=4), seed=23)
        assert res.succeeded
