"""Unit tests for peers, transports and the link fault models."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.net.peers import PeerRegistry
from repro.net.transport import (
    AsyncioTransport,
    DropRetryLink,
    SimTransport,
    Transport,
)
from repro.net.host import NodeHost
from repro.sim.network import ConstantDelay, RawPayload
from repro.sim.node import RecordingNode
from repro.sim.runner import Simulation

from tests.helpers import default_test_group

G = default_test_group()


class TestPeerRegistry:
    def test_register_and_lookup(self) -> None:
        reg = PeerRegistry()
        addr = reg.register(3, "127.0.0.1", 4000)
        assert reg.address_of(3) == addr
        assert reg.knows(3) and not reg.knows(4)
        assert reg.member_ids() == [3]

    def test_unknown_lookup_raises(self) -> None:
        with pytest.raises(KeyError):
            PeerRegistry().address_of(1)

    def test_static_construction(self) -> None:
        reg = PeerRegistry.static("10.0.0.1", {1: 5001, 2: 5002})
        assert len(reg) == 2
        assert list(reg) == [1, 2]
        assert reg.address_of(2).port == 5002


class TestTransportProtocol:
    def test_simulation_satisfies_transport(self) -> None:
        assert isinstance(Simulation(), Transport)

    def test_sim_transport_delegates(self) -> None:
        sim = Simulation(delay_model=ConstantDelay(1.0))
        node = RecordingNode(1)
        peer = RecordingNode(2)
        sim.add_node(node)
        sim.add_node(peer)
        transport = SimTransport(sim)
        assert transport.member_ids() == [1, 2]
        assert transport.current_time() == 0.0
        transport.enqueue_message(1, 2, RawPayload("ping", 10))
        sim.run()
        assert len(peer.received) == 1
        assert sim.metrics.messages_total == 1

    def test_sim_transport_timers(self) -> None:
        from repro.sim.node import Context

        class ArmingNode(RecordingNode):
            def on_operator(self, payload: object, ctx: Context) -> None:
                tick = ctx.set_timer(5.0, "tick")
                ctx.cancel_timer(tick)
                ctx.set_timer(7.0, "tock")

        sim = Simulation()
        node = ArmingNode(1)
        sim.add_node(node)
        sim.inject(1, "arm", at=0.0)
        sim.run()
        assert [tag for _, tag in node.timers] == ["tock"]

    def test_directly_armed_backend_timer_is_stale(self) -> None:
        # Timers not armed through machine effects have no machine-side
        # id; the driver drops them instead of forwarding raw backend
        # ids (the passthrough retired with the live-Context adapter).
        sim = Simulation()
        node = RecordingNode(1)
        sim.add_node(node)
        transport = SimTransport(sim)
        transport.set_timer(1, 5.0, "tick")
        sim.run()
        assert node.timers == []


class TestDropRetryLink:
    def test_zero_probability_is_base_delay(self) -> None:
        link = DropRetryLink(base=ConstantDelay(2.0), drop_probability=0.0)
        assert link.sample(random.Random(0), 1, 2) == 2.0

    def test_drops_add_retry_delay(self) -> None:
        link = DropRetryLink(
            base=ConstantDelay(1.0), drop_probability=0.5, retry_delay=3.0
        )
        rng = random.Random(123)
        samples = [link.sample(rng, 1, 2) for _ in range(200)]
        assert min(samples) == 1.0
        assert max(samples) > 1.0  # some messages were retried
        extra = [(s - 1.0) / 3.0 for s in samples]
        assert all(abs(e - round(e)) < 1e-9 for e in extra)

    def test_eventual_delivery_is_bounded(self) -> None:
        link = DropRetryLink(
            base=ConstantDelay(0.0),
            drop_probability=0.9,
            retry_delay=1.0,
            max_retries=4,
        )
        rng = random.Random(7)
        assert max(link.sample(rng, 1, 2) for _ in range(500)) <= 4.0

    def test_rejects_certain_loss(self) -> None:
        with pytest.raises(ValueError):
            DropRetryLink(drop_probability=1.0)

    def test_observe_time_forwards_to_base(self) -> None:
        from repro.sim.network import PartitionDelay

        inner = PartitionDelay(group_a=frozenset({1}), heal_time=10.0)
        link = DropRetryLink(base=inner, drop_probability=0.0)
        link.observe_time(4.0)
        assert inner._clock == 4.0


def _pair(seed: int = 0, **kwargs):
    registry = PeerRegistry()
    members = [1, 2]
    a = AsyncioTransport(1, registry, members, seed=seed, **kwargs)
    b = AsyncioTransport(2, registry, members, seed=seed, **kwargs)
    return registry, a, b


class TestAsyncioTransport:
    def test_frames_cross_real_sockets(self) -> None:
        async def scenario():
            _, a, b = _pair()
            received: list = []
            b.on_message = lambda sender, msg: received.append((sender, msg))
            await a.start()
            await b.start()
            from repro.vss.messages import HelpMsg, SessionId

            a.enqueue_message(1, 2, HelpMsg(SessionId(1, 0)))
            for _ in range(100):
                if received:
                    break
                await asyncio.sleep(0.01)
            await a.stop()
            await b.stop()
            return received

        received = asyncio.run(scenario())
        assert len(received) == 1
        sender, msg = received[0]
        assert sender == 1
        assert msg.kind == "vss.help"

    def test_send_to_unreachable_peer_is_dropped(self) -> None:
        async def scenario():
            registry, a, _ = _pair(connect_attempts=2, connect_backoff=0.01)
            await a.start()
            registry.register(2, "127.0.0.1", 1)  # nothing listens there
            from repro.vss.messages import HelpMsg, SessionId

            a.enqueue_message(1, 2, HelpMsg(SessionId(1, 0)))
            for _ in range(200):
                if a.metrics.deliveries_dropped:
                    break
                await asyncio.sleep(0.02)
            await a.stop()
            return a.metrics.deliveries_dropped

        assert asyncio.run(scenario()) == 1

    def test_crashed_transport_sends_and_delivers_nothing(self) -> None:
        async def scenario():
            _, a, b = _pair()
            received: list = []
            b.on_message = lambda sender, msg: received.append(msg)
            await a.start()
            await b.start()
            from repro.vss.messages import HelpMsg, SessionId

            b.crash()
            a.enqueue_message(1, 2, HelpMsg(SessionId(1, 0)))
            await asyncio.sleep(0.2)
            a.crash()
            a.enqueue_message(1, 2, HelpMsg(SessionId(1, 0)))
            await asyncio.sleep(0.1)
            sent_while_crashed = a.metrics.messages_total
            await a.stop()
            await b.stop()
            return received, sent_while_crashed

        received, sent = asyncio.run(scenario())
        assert received == []
        assert sent == 1  # only the pre-crash send was metered

    def test_timers_fire_and_cancel(self) -> None:
        async def scenario():
            _, a, _ = _pair(time_scale=0.01)
            fired: list = []
            a.on_timer = lambda tag, timer_id: fired.append(tag)
            await a.start()
            keep = a.set_timer(1, 2.0, "keep")
            kill = a.set_timer(1, 2.0, "kill")
            a.cancel_timer(1, kill)
            assert keep != kill
            await asyncio.sleep(0.1)
            await a.stop()
            return fired

        assert asyncio.run(scenario()) == ["keep"]

    def test_timer_lost_while_crashed(self) -> None:
        async def scenario():
            _, a, _ = _pair(time_scale=0.01)
            fired: list = []
            a.on_timer = lambda tag, timer_id: fired.append(tag)
            await a.start()
            a.set_timer(1, 2.0, "tick")
            a.crash()
            await asyncio.sleep(0.1)
            await a.recover()
            await asyncio.sleep(0.05)
            await a.stop()
            return fired

        assert asyncio.run(scenario()) == []

    def test_recover_rebinds_same_port(self) -> None:
        async def scenario():
            registry, a, _ = _pair()
            await a.start()
            before = registry.address_of(1).port
            a.crash()
            await a.recover()
            after = registry.address_of(1).port
            await a.stop()
            return before, after

        before, after = asyncio.run(scenario())
        assert before == after

    def test_delay_model_shapes_wall_clock(self) -> None:
        async def scenario():
            _, a, b = _pair(
                delay_model=ConstantDelay(5.0), time_scale=0.01
            )
            received: list = []
            b.on_message = lambda sender, msg: received.append(
                asyncio.get_running_loop().time()
            )
            await a.start()
            await b.start()
            from repro.vss.messages import HelpMsg, SessionId

            t0 = asyncio.get_running_loop().time()
            a.enqueue_message(1, 2, HelpMsg(SessionId(1, 0)))
            for _ in range(100):
                if received:
                    break
                await asyncio.sleep(0.01)
            await a.stop()
            await b.stop()
            return received[0] - t0 if received else None

        elapsed = asyncio.run(scenario())
        assert elapsed is not None
        assert elapsed >= 0.05  # 5 units * 0.01 s/unit

    def test_node_host_dispatches_to_node(self) -> None:
        async def scenario():
            registry = PeerRegistry()
            members = [1, 2]
            ta = AsyncioTransport(1, registry, members)
            tb = AsyncioTransport(2, registry, members)
            na, nb = RecordingNode(1), RecordingNode(2)
            ha, hb = NodeHost(na, ta), NodeHost(nb, tb)
            await ha.start()
            await hb.start()
            from repro.vss.messages import HelpMsg, SessionId

            ta.enqueue_message(1, 2, HelpMsg(SessionId(1, 0)))
            for _ in range(100):
                if nb.received:
                    break
                await asyncio.sleep(0.01)
            await ha.stop()
            await hb.stop()
            return na, nb

        na, nb = asyncio.run(scenario())
        assert len(nb.received) == 1
        assert nb.received[0][1] == 1  # sender attribution via handshake
