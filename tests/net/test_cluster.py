"""End-to-end: full DKG sessions over real asyncio TCP on localhost.

These are the acceptance tests for the network runtime: the *same*
``DkgNode`` state machines the simulator drives complete a DKG across
kernel sockets, all honest nodes agree on one group public key, and the
transport-level fault scenarios (crash, added latency, loss, partition)
behave like their simulated counterparts.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.crypto.shares import Share, reconstruct_secret
from repro.dkg import DkgConfig
from repro.net import DropRetryLink, LocalCluster, run_local_cluster
from repro.sim.network import PartitionDelay, UniformDelay

from tests.helpers import default_test_group

G = default_test_group()

# Fast wall clocks for CI: 10 ms per protocol time unit.
SCALE = 0.01


def _config(n: int = 4, t: int = 1, f: int = 0) -> DkgConfig:
    return DkgConfig(n=n, t=t, f=f, group=G)


class TestRealSocketDkg:
    def test_dkg_completes_with_agreement(self) -> None:
        result = run_local_cluster(_config(), seed=7, time_scale=SCALE)
        assert result.errors == []
        assert result.succeeded
        assert result.completed_nodes == [1, 2, 3, 4]
        # Single public key and Q set across all nodes (Definition 4.1).
        assert result.public_key
        assert len(result.q_set) == 2  # t + 1 dealers

    def test_shares_reconstruct_the_group_secret(self) -> None:
        result = run_local_cluster(_config(), seed=11, time_scale=SCALE)
        assert result.succeeded
        commitment = next(iter(result.completions.values())).commitment
        shares = [
            Share(i, value, commitment)
            for i, value in result.shares.items()
        ]
        secret = reconstruct_secret(shares, 1, G.q)
        assert G.commit(secret) == result.public_key

    def test_real_bytes_are_metered(self) -> None:
        result = run_local_cluster(_config(), seed=1, time_scale=SCALE)
        assert result.metrics.messages_total > 0
        assert result.metrics.bytes_total > result.metrics.messages_total

    def test_crash_fault_scenario(self) -> None:
        """n=6, t=1, f=1: node 6 crashes mid-run; every other node must
        still complete and agree — the paper's crash-resilience clause."""
        result = run_local_cluster(
            _config(n=6, t=1, f=1),
            seed=3,
            time_scale=SCALE,
            crash_plan=[(6, 2.0, None)],
        )
        assert result.errors == []
        assert 6 in result.crashed
        assert result.succeeded
        assert set(result.completed_nodes) >= {1, 2, 3, 4, 5}
        assert result.public_key

    def test_added_latency_slows_but_completes(self) -> None:
        fast = run_local_cluster(_config(), seed=5, time_scale=SCALE)
        slow = run_local_cluster(
            _config(),
            seed=5,
            time_scale=SCALE,
            delay_model=UniformDelay(1.0, 2.0),
        )
        assert fast.succeeded and slow.succeeded
        assert slow.wall_seconds > fast.wall_seconds

    def test_message_loss_with_retry(self) -> None:
        result = run_local_cluster(
            _config(),
            seed=9,
            time_scale=SCALE,
            delay_model=DropRetryLink(drop_probability=0.15, retry_delay=0.5),
        )
        assert result.succeeded

    def test_partition_heals_and_dkg_finishes(self) -> None:
        """{1,2} vs {3,4} cannot reach quorum; completion must wait for
        the heal — mirroring the simulator's E11 partition scenario."""
        result = run_local_cluster(
            _config(),
            seed=2,
            time_scale=SCALE,
            delay_model=PartitionDelay(
                group_a=frozenset({1, 2}),
                heal_time=5.0,
                base=UniformDelay(0.05, 0.2),
            ),
        )
        assert result.succeeded
        # No quorum without cross-partition traffic: completion is after
        # the heal, in protocol units.
        assert result.wall_seconds / SCALE >= 5.0


class TestClusterOrchestration:
    def test_async_context_manager_lifecycle(self) -> None:
        async def scenario():
            async with LocalCluster(
                _config(), seed=4, time_scale=SCALE
            ) as cluster:
                assert len(cluster.registry) == 4
                result = await cluster.run_dkg(timeout=30.0)
            return result

        result = asyncio.run(scenario())
        assert result.succeeded

    def test_ports_are_ephemeral_and_distinct(self) -> None:
        async def scenario():
            async with LocalCluster(
                _config(), seed=4, time_scale=SCALE
            ) as cluster:
                return [
                    cluster.registry.address_of(i).port
                    for i in cluster.registry
                ]

        ports = asyncio.run(scenario())
        assert len(set(ports)) == 4

    def test_crash_of_unknown_node_rejected(self) -> None:
        cluster = LocalCluster(_config(), seed=0)
        with pytest.raises(KeyError):
            cluster.crash(99, at=1.0)

    def test_finally_up_excludes_unrecovered_crashes(self) -> None:
        cluster = LocalCluster(_config(n=6, t=1, f=1), seed=0)
        cluster.crash(6, at=1.0)
        cluster.crash(5, at=1.0, up_after=3.0)
        assert cluster.finally_up() == {1, 2, 3, 4, 5}

    def test_crash_registered_after_start_still_fires(self) -> None:
        async def scenario():
            cluster = LocalCluster(
                _config(n=6, t=1, f=1), seed=3, time_scale=SCALE
            )
            try:
                await cluster.start()
                cluster.crash(6, at=2.0)  # after start(): must schedule
                result = await cluster.run_dkg(timeout=30.0)
            finally:
                await cluster.stop()
            return result

        result = asyncio.run(scenario())
        assert 6 in result.crashed
        assert result.succeeded

    def test_hashed_codec_compresses_real_wire_traffic(self) -> None:
        """With the Cachin hash-compressed codec, echo/ready frames on
        the real wire carry digests; total bytes shrink and the run
        still completes (receivers buffer votes until the matrix)."""
        from repro.crypto.hashing import HashedMatrixCodec

        full = run_local_cluster(_config(), seed=8, time_scale=SCALE)
        hashed = run_local_cluster(
            DkgConfig(n=4, t=1, group=G, codec=HashedMatrixCodec()),
            seed=8,
            time_scale=SCALE,
        )
        assert full.succeeded and hashed.succeeded
        assert hashed.metrics.bytes_total < full.metrics.bytes_total
        assert hashed.public_key

    def test_timeout_yields_failed_result(self) -> None:
        # An impossible deadline: the run returns (rather than hangs)
        # with succeeded=False.
        result = run_local_cluster(
            _config(), seed=6, time_scale=SCALE, timeout=0.001
        )
        assert not result.succeeded

    def test_sim_and_cluster_build_identical_nodes(self) -> None:
        """Both execution layers share build_dkg_deployment: same PKI
        derivation, same per-node secrets."""
        from repro.dkg.runner import build_dkg_deployment

        _, sim_nodes = build_dkg_deployment(_config(), seed=7)
        cluster = LocalCluster(_config(), seed=7)
        for i, node in cluster.nodes.items():
            assert node.secret == sim_nodes[i].secret
            assert (
                node.keystore.signing_key.secret
                == sim_nodes[i].keystore.signing_key.secret
            )
