"""SessionCluster: concurrent sessions, renewal and groupmod on TCP.

Everything here crosses real kernel sockets: concurrent DKG sessions
multiplexed over one endpoint per node, the §5 renewal lifecycle and
the §6 agree-then-add lifecycle, with crash/recovery against live
endpoints.  The scales are kept small (n <= 5, toy group) so the whole
module stays a few seconds.
"""

from __future__ import annotations

import asyncio
import logging

import pytest

from repro.crypto.groups import toy_group
from repro.net.cluster import COMPLETED_KIND, LocalCluster, SessionCluster
from repro.net.groupmod import run_groupmod_cluster
from repro.net.proactive import run_renewal_cluster
from repro.sim.network import UniformDelay
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.dkg import DkgConfig
from repro.dkg.messages import DkgStartInput
from repro.dkg.node import DkgNode

G = toy_group()
FAST = 0.005  # wall seconds per protocol time unit


def _dkg_nodes(config: DkgConfig, ca, keystores, tau: int) -> dict:
    return {
        i: DkgNode(i, config, keystores[i], ca, tau=tau)
        for i in config.vss().indices
    }


class TestConcurrentSessionsOverTcp:
    def test_four_concurrent_dkg_sessions_share_one_endpoint_set(self) -> None:
        """The acceptance bar, on real sockets: >= 4 concurrent DKG
        sessions over ONE endpoint per node (n sockets total, not
        4n), all completing with independent keys."""
        config = DkgConfig(n=4, t=1, group=G)
        members = config.vss().indices

        async def scenario():
            import random

            ca = CertificateAuthority(G)
            rng = random.Random(1)
            keystores = {i: KeyStore.enroll(i, ca, rng) for i in members}
            async with SessionCluster(
                list(members), seed=3, group=G, time_scale=FAST
            ) as cluster:
                for k in range(4):
                    cluster.open_session(
                        f"dkg-{k}", _dkg_nodes(config, ca, keystores, tau=k)
                    )
                # One server socket per member, however many sessions.
                assert len(cluster.hosts) == len(members)
                for k in range(4):
                    cluster.inject_all(f"dkg-{k}", DkgStartInput(k))
                completions = {}
                for k in range(4):
                    completions[k] = await cluster.wait_session_outputs(
                        f"dkg-{k}", COMPLETED_KIND, set(members), timeout=60.0
                    )
                assert cluster.collect_errors() == []
                return completions

        completions = asyncio.run(scenario())
        keys = set()
        for k, outs in completions.items():
            assert sorted(outs) == list(range(1, 5)), f"session dkg-{k}"
            session_keys = {o.public_key for o in outs.values()}
            assert len(session_keys) == 1  # agreement inside the session
            keys |= session_keys
        assert len(keys) == 4  # independence across sessions

    def test_local_cluster_is_a_session_cluster(self) -> None:
        cluster = LocalCluster(DkgConfig(n=4, t=1, group=G), seed=2)
        assert isinstance(cluster, SessionCluster)
        assert "dkg" in cluster.hosts[1].runtime.sessions

    def test_add_member_updates_every_endpoints_membership(self) -> None:
        async def scenario():
            async with SessionCluster([1, 2, 3], seed=1, group=G) as cluster:
                await cluster.add_member(4)
                return {
                    i: host.transport.member_ids()
                    for i, host in cluster.hosts.items()
                }

        views = asyncio.run(scenario())
        # Pre-join endpoints see the joiner too: Broadcast effects and
        # Env.members must include node 4 from now on.
        assert all(view == [1, 2, 3, 4] for view in views.values()), views


class TestRenewalOverTcp:
    def test_renewal_phase_with_crash_and_recover(self) -> None:
        result = run_renewal_cluster(
            DkgConfig(n=5, t=1, group=G),
            seed=7,
            phases=1,
            time_scale=0.01,
            delay_model=UniformDelay(1.0, 3.0),
            crash_plan=[(3, 2.0, 25.0)],
            timeout=90.0,
        )
        assert result.succeeded, result.errors
        assert result.metrics.crashes == 1
        assert result.metrics.recoveries == 1
        [phase] = result.phases
        assert phase.renewed_nodes == [1, 2, 3, 4, 5]
        assert phase.public_key_stable
        assert result.secret_invariant

    def test_two_phases_share_stable_public_key(self) -> None:
        result = run_renewal_cluster(
            DkgConfig(n=4, t=1, group=G), seed=3, phases=2, time_scale=FAST
        )
        assert result.succeeded, result.errors
        assert [p.phase for p in result.phases] == [1, 2]
        assert all(p.public_key_stable for p in result.phases)


class TestGroupModOverTcp:
    def test_agree_then_add_with_crash_and_recover(self) -> None:
        result = run_groupmod_cluster(
            DkgConfig(n=5, t=1, group=G),
            seed=9,
            time_scale=0.01,
            delay_model=UniformDelay(1.0, 3.0),
            crash_plan=[(2, 2.0, 25.0)],
            timeout=90.0,
        )
        assert result.succeeded, result.errors
        assert result.new_node == 6
        assert result.metrics.crashes == 1
        assert result.metrics.recoveries == 1
        assert result.share_verified
        assert result.secret_invariant
        assert result.agreement_nodes == [1, 2, 3, 4, 5]


class TestInjectReportsDrops:
    def test_inject_on_crashed_endpoint_returns_false_and_logs(
        self, caplog: pytest.LogCaptureFixture
    ) -> None:
        cluster = LocalCluster(DkgConfig(n=4, t=1, group=G), seed=4)

        async def scenario():
            async with cluster:
                host = cluster.hosts[2]
                assert host.inject(DkgStartInput(0)) is True
                host.crash()
                with caplog.at_level(logging.WARNING, "repro.net.host"):
                    accepted = host.inject(DkgStartInput(0))
                return accepted

        assert asyncio.run(scenario()) is False
        assert "dropped" in caplog.text
        assert "dkg.in.start" in caplog.text
