"""Round-trip and rejection tests for the binary wire codec.

The acceptance bar: ``decode(encode(m)) == m`` for *every* protocol
message type in :mod:`repro.vss.messages`, :mod:`repro.dkg.messages`
and :mod:`repro.proactive.messages`, and truncated/garbled frames are
rejected with :class:`~repro.net.wire.WireError` rather than producing
a wrong message.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.groups import SchnorrGroup, small_group, toy_group
from repro.crypto.hashing import FullMatrixCodec, HashedMatrixCodec, commitment_digest
from repro.crypto.polynomials import Polynomial
from repro.crypto.schnorr import SigningKey
from repro.groupmod.messages import (
    JoinedOutput,
    ModProposal,
    NodeAddInput,
    NodeAddRequestMsg,
    ProposalDeliveredOutput,
    ProposalEchoMsg,
    ProposalMsg,
    ProposalReadyMsg,
    ProposeInput,
    SubshareMsg,
)
from repro.net import wire
from repro.proactive.messages import ClockTickMsg, RenewedOutput, RenewInput
from repro.runtime.envelope import SessionEnvelope
from repro.service.shard.api import (
    FleetOpsRequest,
    FleetOpsResponse,
    ShardCtlRequest,
    ShardCtlResponse,
    ShardSignRequest,
    ShardStatusRequest,
)
from repro.service.protocol import (
    ERR_UNAVAILABLE,
    BeaconGetRequest,
    BeaconNextRequest,
    BeaconResponse,
    DecryptRequest,
    DecryptResponse,
    DprfEvalRequest,
    DprfResponse,
    ErrorResponse,
    OpsRequest,
    OpsResponse,
    SignRequest,
    SignResponse,
    StatusRequest,
    StatusResponse,
)
from repro.vss.messages import (
    EchoMsg,
    HelpMsg,
    ReadyMsg,
    ReadyWitness,
    ReconstructInput,
    ReconstructedOutput,
    RecoverInput,
    SendMsg,
    SessionId,
    SharedOutput,
    ShareInput,
    SharePointMsg,
)
from repro.dkg.messages import (
    DkgCompletedOutput,
    DkgEchoMsg,
    DkgHelpMsg,
    DkgReadyMsg,
    DkgReconstructedOutput,
    DkgReconstructInput,
    DkgRecoverInput,
    DkgSendMsg,
    DkgSharePointMsg,
    DkgStartInput,
    LeadChMsg,
    LeadChWitness,
    MTypeProof,
    ReadyCert,
    RTypeProof,
    SetVote,
)

G = toy_group()
RNG = random.Random(42)
POLY = BivariatePolynomial.random_symmetric(2, G.q, RNG)
C = FeldmanCommitment.commit(POLY, G)
VEC = C.column_vector(0)
KEY = SigningKey.generate(G, RNG)
SIG = KEY.sign(b"wire-test", RNG)
SID = SessionId(3, 7)

WITNESSES = (ReadyWitness(1, SIG), ReadyWitness(4, KEY.sign(b"w2", RNG)))
CERT = ReadyCert(2, b"\xab" * 32, WITNESSES)
R_PROOF = RTypeProof((CERT, ReadyCert(5, b"\xcd" * 32, WITNESSES[:1])))
M_PROOF = MTypeProof(
    (1, 2, 3),
    (SetVote(1, "echo", SIG), SetVote(6, "ready", KEY.sign(b"v", RNG))),
)
ELECTION = (LeadChWitness(2, 1, SIG), LeadChWitness(5, 1, KEY.sign(b"l", RNG)))

from repro.crypto.pedersen import PedersenCommitment  # noqa: E402

_PEDERSEN = PedersenCommitment.commit(
    Polynomial((3, 1, 4), G.q), Polynomial((1, 5, 9), G.q), G
)

# One representative instance per wire-codec message type.  Every type
# the codec registers must appear here — enforced below.
MESSAGES = [
    SendMsg(SID, C, POLY.row_polynomial(2)),
    SendMsg(SID, C, None),  # §5.2 erased-polynomial retransmission
    EchoMsg(SID, C, 12345),
    ReadyMsg(SID, C, 99, SIG),
    ReadyMsg(SID, C, 99, None),
    HelpMsg(SID),
    SharePointMsg(SID, 42),
    ShareInput(SID, 5),
    ReconstructInput(SID),
    RecoverInput(SID),
    SharedOutput(SID, C, 77, WITNESSES),
    ReconstructedOutput(SID, 123),
    DkgSendMsg(0, 0, R_PROOF),
    DkgSendMsg(1, 2, M_PROOF, ELECTION),
    DkgEchoMsg(0, 1, (1, 2, 3), SIG),
    DkgReadyMsg(9, 0, (2, 5), SIG),
    LeadChMsg(0, 1, None, SIG),
    LeadChMsg(0, 1, M_PROOF, SIG),
    LeadChMsg(0, 2, R_PROOF, SIG),
    DkgSharePointMsg(0, 888),
    DkgHelpMsg(4),
    DkgStartInput(0),
    DkgRecoverInput(1),
    DkgReconstructInput(2),
    DkgReconstructedOutput(0, 55),
    DkgCompletedOutput(0, 1, (1, 2, 3), C, 10, C.public_key()),
    DkgCompletedOutput(0, 1, (1, 2), VEC, 10, VEC.public_key()),
    DkgCompletedOutput(0, 1, (1, 2), _PEDERSEN, 10, 1),
    ClockTickMsg(3),
    RenewInput(2),
    RenewedOutput(1, VEC, 9, (1, 2)),
    # group modification frames (codec v4)
    ProposalMsg(ModProposal("add", 8, 1, 0)),
    ProposalEchoMsg(ModProposal("remove", 2, -1, 0)),
    ProposalReadyMsg(ModProposal("add", 9)),
    ProposeInput(ModProposal("add", 10, 0, 1)),
    ProposalDeliveredOutput(ModProposal("remove", 3)),
    NodeAddRequestMsg(8, 3),
    NodeAddInput(8, 3),
    SubshareMsg(2, VEC, 4242),
    JoinedOutput(2, 77, VEC),
    # session envelopes (codec v4): multiplexed protocol traffic
    SessionEnvelope("dkg-0", DkgStartInput(0)),
    SessionEnvelope("renew-1", ClockTickMsg(1)),
    SessionEnvelope("vss", EchoMsg(SID, C, 12345)),
    # service frames (codec v2)
    SignRequest(7, b"pay carol"),
    SignResponse(7, 123, 456, True),
    BeaconNextRequest(8),
    BeaconGetRequest(9, 4),
    BeaconResponse(9, 4, b"\xaa" * 32, 5),
    DprfEvalRequest(10, b"tag"),
    DprfResponse(10, b"\xbb" * 32),
    DecryptRequest(11, 4, b"\x01\x02"),
    DecryptResponse(11, b"plaintext"),
    StatusRequest(12),
    StatusResponse(12, 7, 2, 6, 5, 16, 100, 2, 3, 9, "toy-0"),
    ErrorResponse(13, ERR_UNAVAILABLE, "too few signers"),
    # observability frames (codec v5)
    OpsRequest(14),
    OpsResponse(14, b'{"schema":1,"status":{},"metrics":{}}'),
    # shard-router frames (codec v6)
    ShardSignRequest(15, b"wallet-7", b"pay carol"),
    ShardStatusRequest(16, b"wallet-7"),
    FleetOpsRequest(17),
    FleetOpsResponse(17, b'{"schema":1,"api_version":1,"fleet":{}}'),
    ShardCtlRequest(18, "drain", "shard-1"),
    ShardCtlRequest(19, "add", ""),
    ShardCtlResponse(18, b'{"api_version":1,"state":"retired"}'),
]

_IDS = [f"{type(m).__name__}-{i}" for i, m in enumerate(MESSAGES)]


class TestRoundTrip:
    @pytest.mark.parametrize("message", MESSAGES, ids=_IDS)
    def test_decode_encode_identity(self, message) -> None:
        assert wire.decode(wire.encode(message)) == message

    @pytest.mark.parametrize("message", MESSAGES, ids=_IDS)
    def test_round_trip_with_group_context(self, message) -> None:
        assert wire.decode(wire.encode(message, group=G)) == message

    def test_every_registered_type_is_covered(self) -> None:
        covered = {type(m) for m in MESSAGES}
        registered = {typ for typ, _, _ in wire._CODECS.values()}
        assert registered <= covered, registered - covered

    def test_decode_stamps_true_size(self) -> None:
        msg = EchoMsg(SID, C, 5)
        data = wire.encode(msg, group=G)
        assert wire.decode(data).byte_size() == len(data)

    def test_fixed_size_messages_report_true_frame_length(self) -> None:
        # Messages without a size field bake the framing overhead into
        # byte_size() — kept in sync with the codec by construction.
        for msg in (HelpMsg(SID), DkgHelpMsg(4), ClockTickMsg(3)):
            assert msg.byte_size() == len(wire.encode(msg)), msg.kind

    def test_sizes_are_value_independent_given_group(self) -> None:
        low = wire.encoded_size(EchoMsg(SID, C, 1), group=G)
        high = wire.encoded_size(EchoMsg(SID, C, G.q - 1), group=G)
        assert low == high

    def test_custom_group_is_inlined(self) -> None:
        custom = SchnorrGroup(G.p, G.q, G.g, name="custom")
        commitment = FeldmanCommitment(C.matrix, custom)
        back = wire.decode(wire.encode(EchoMsg(SID, commitment, 5)))
        # Groups compare by parameters, not name.
        assert back.commitment == commitment

    def test_named_group_reference_is_compact(self) -> None:
        named = len(wire.encode(EchoMsg(SID, C, 5)))
        custom = SchnorrGroup(G.p, G.q, G.g, name="custom")
        inlined = len(
            wire.encode(EchoMsg(SID, FeldmanCommitment(C.matrix, custom), 5))
        )
        assert named < inlined

    def test_larger_group_round_trips(self) -> None:
        big = small_group()
        rng = random.Random(1)
        poly = BivariatePolynomial.random_symmetric(1, big.q, rng)
        commitment = FeldmanCommitment.commit(poly, big)
        msg = SendMsg(SessionId(1, 0), commitment, poly.row_polynomial(1))
        assert wire.decode(wire.encode(msg, group=big)) == msg

    @given(
        dealer=st.integers(0, 2**31 - 1),
        tau=st.integers(0, 2**31 - 1),
        point=st.integers(0, G.q - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_echo_round_trip_property(self, dealer, tau, point) -> None:
        msg = EchoMsg(SessionId(dealer, tau), C, point)
        assert wire.decode(wire.encode(msg, group=G)) == msg


class TestDigestCompression:
    def test_digest_frames_resolve_against_store(self) -> None:
        msg = ReadyMsg(SID, C, 7, SIG)
        data = wire.encode(msg, group=G, commitments="digest")
        store = {commitment_digest(C): C}
        assert wire.decode(data, resolve=store.get) == msg

    def test_digest_frame_without_resolver_is_rejected(self) -> None:
        data = wire.encode(EchoMsg(SID, C, 7), commitments="digest")
        with pytest.raises(wire.WireError):
            wire.decode(data)
        with pytest.raises(wire.WireError):
            wire.decode(data, resolve=lambda digest: None)

    def test_digest_mode_is_smaller(self) -> None:
        msg = EchoMsg(SID, C, 7)
        assert len(wire.encode(msg, commitments="digest")) < len(
            wire.encode(msg)
        )

    def test_encoded_size_tracks_codec(self) -> None:
        msg = EchoMsg(SID, C, 7)
        full = wire.encoded_size(msg, FullMatrixCodec(), G)
        hashed = wire.encoded_size(msg, HashedMatrixCodec(), G)
        assert full == len(wire.encode(msg, group=G))
        assert hashed == len(wire.encode(msg, group=G, commitments="digest"))
        assert hashed < full

    def test_unknown_commitment_mode_rejected(self) -> None:
        with pytest.raises(wire.WireError):
            wire.encode(EchoMsg(SID, C, 7), commitments="zstd")


class TestRejection:
    def _frame(self) -> bytes:
        return wire.encode(DkgEchoMsg(0, 1, (1, 2, 3), SIG), group=G)

    def test_truncation_every_prefix_rejected(self) -> None:
        data = self._frame()
        for cut in range(len(data)):
            with pytest.raises(wire.WireError):
                wire.decode(data[:cut])

    def test_trailing_garbage_rejected(self) -> None:
        data = self._frame()
        with pytest.raises(wire.WireError):
            wire.decode(data + b"\x00")

    def test_bad_magic_rejected(self) -> None:
        data = bytearray(self._frame())
        data[4:6] = b"XX"
        with pytest.raises(wire.WireError):
            wire.decode(bytes(data))

    def test_unknown_version_rejected(self) -> None:
        data = bytearray(self._frame())
        data[6] = 99
        with pytest.raises(wire.WireError):
            wire.decode(bytes(data))

    def test_unknown_kind_rejected(self) -> None:
        data = bytearray(self._frame())
        data[7] = 0xEE
        with pytest.raises(wire.WireError):
            wire.decode(bytes(data))

    def test_length_mismatch_rejected(self) -> None:
        data = bytearray(self._frame())
        data[0:4] = (len(data) + 5).to_bytes(4, "big")
        with pytest.raises(wire.WireError):
            wire.decode(bytes(data))

    def test_oversized_length_rejected(self) -> None:
        header = (wire.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(wire.WireError):
            wire.decode(header + b"KG" + bytes([wire.VERSION, 0x02]))

    def test_unencodable_type_rejected(self) -> None:
        with pytest.raises(wire.WireError):
            wire.encode(object())

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_never_crash(self, blob: bytes) -> None:
        # Garbage must raise WireError — never another exception, never
        # a silently wrong message.
        try:
            wire.decode(blob)
        except wire.WireError:
            pass

    @given(st.integers(8, 200), st.randoms())
    @settings(max_examples=100, deadline=None)
    def test_bitflip_garbling_rejected_or_parsed(self, pos, rnd) -> None:
        data = bytearray(self._frame())
        pos %= len(data)
        data[pos] ^= 1 << rnd.randrange(8)
        try:
            decoded = wire.decode(bytes(data))
        except wire.WireError:
            return
        # A surviving parse must at least be a registered message type —
        # flipped signature bits are caught by signature verification
        # one layer up, not by framing.
        assert type(decoded) in {typ for typ, _, _ in wire._CODECS.values()}


class TestSessionSizesAreWireTrue:
    """The sizes protocol nodes stamp match real encoded frames, so the
    metrics layer meters true serialized bytes (E1/E3)."""

    def test_dealer_send_stamp_equals_encoded_length(self) -> None:
        from repro.vss.config import VssConfig
        from repro.vss.session import VssSession
        from tests.helpers import StubContext

        config = VssConfig(n=4, t=1, group=G)
        session = VssSession(
            config, 1, SessionId(1, 0), on_shared=lambda o: None
        )
        ctx = StubContext(node_id=1, n_nodes=4)
        session.start_dealing(11, ctx)
        assert ctx.sent
        for _, payload in ctx.sent:
            assert payload.byte_size() == len(
                wire.encode(payload, group=config.group)
            )

    def test_every_simulated_vss_message_is_wire_true(self) -> None:
        from repro.sim.events import MessageDelivery
        from repro.vss import VssConfig, run_vss

        class Tap:
            def __init__(self) -> None:
                self.payloads: list = []

            def on_event(self, time, event) -> None:
                if isinstance(event, MessageDelivery):
                    self.payloads.append(event.payload)

        tap = Tap()
        config = VssConfig(n=4, t=1, group=G)
        run_vss(config, secret=9, seed=0, observers=[tap])
        assert tap.payloads
        for payload in tap.payloads:
            expected = wire.encoded_size(
                payload, config.codec, group=config.group
            )
            assert payload.byte_size() == expected, payload.kind
