"""Clause-level tests for the RenewalNode modifications (§5.2)."""

from __future__ import annotations

import random

import pytest

from repro.sim.pki import CertificateAuthority, KeyStore
from repro.dkg.config import DkgConfig
from repro.proactive.messages import ClockTickMsg, RenewInput
from repro.proactive.renewal import RenewalNode, share_commitment_at

from tests.helpers import StubContext, default_test_group

G = default_test_group()
N, T = 7, 2


@pytest.fixture()
def world():
    rng = random.Random(5)
    ca = CertificateAuthority(G)
    stores = {i: KeyStore.enroll(i, ca, rng) for i in range(1, N + 1)}
    config = DkgConfig(n=N, t=T, group=G)
    return stores, ca, config


def _node(stores, ca, config, me=2, share=777):
    node = RenewalNode(
        me, config, stores[me], ca, phase=1, prev_share=share
    )
    return node, StubContext(node_id=me, n_nodes=N)


class TestTickGate:
    def test_local_tick_deals_and_broadcasts(self, world) -> None:
        stores, ca, config = world
        node, ctx = _node(stores, ca, config)
        node.on_operator(RenewInput(1), ctx)
        assert len(ctx.sent_of_kind("proactive.tick")) == N
        assert len(ctx.sent_of_kind("vss.send")) == N
        # the dealt commitment commits to the previous share
        _, send = ctx.sent_of_kind("vss.send")[0]
        assert send.commitment.public_key() == G.commit(777)

    def test_old_share_erased_after_dealing(self, world) -> None:
        stores, ca, config = world
        node, ctx = _node(stores, ca, config)
        node.on_operator(RenewInput(1), ctx)
        assert node.secret is None  # erased
        # logged sends are commitment-only after erasure
        ctx.clear()
        node.sessions[2].start_recovery(ctx)
        for _, msg in ctx.sent_of_kind("vss.send"):
            assert msg.poly is None

    def test_messages_buffered_until_t_plus_one_ticks(self, world) -> None:
        stores, ca, config = world
        dealer, dctx = _node(stores, ca, config, me=3, share=10)
        dealer.on_operator(RenewInput(1), dctx)
        send_to_2 = next(
            msg for recipient, msg in dctx.sent_of_kind("vss.send")
            if recipient == 2
        )

        node, ctx = _node(stores, ca, config, me=2)
        node.on_message(3, send_to_2, ctx)  # gate closed: buffered
        assert ctx.sent_of_kind("vss.echo") == []
        node.on_message(3, ClockTickMsg(1), ctx)
        node.on_message(4, ClockTickMsg(1), ctx)
        assert ctx.sent_of_kind("vss.echo") == []  # still only 2 ticks
        node.on_message(5, ClockTickMsg(1), ctx)  # t+1 = 3 ticks
        # buffer drains: the send is processed, echoes go out
        assert len(ctx.sent_of_kind("vss.echo")) == N

    def test_own_tick_counts_toward_gate(self, world) -> None:
        stores, ca, config = world
        node, ctx = _node(stores, ca, config)
        node.on_operator(RenewInput(1), ctx)
        node.on_message(3, ClockTickMsg(1), ctx)
        node.on_message(4, ClockTickMsg(1), ctx)
        assert node._gate_open  # 2 remote + own

    def test_ticks_for_other_phase_ignored(self, world) -> None:
        stores, ca, config = world
        node, ctx = _node(stores, ca, config)
        for sender in (3, 4, 5):
            node.on_message(sender, ClockTickMsg(2), ctx)
        assert not node._gate_open

    def test_shareless_member_does_not_deal(self, world) -> None:
        stores, ca, config = world
        node = RenewalNode(
            2, config, stores[2], ca, phase=1, prev_share=None
        )
        ctx = StubContext(node_id=2, n_nodes=N)
        node.on_operator(RenewInput(1), ctx)
        assert ctx.sent_of_kind("vss.send") == []
        assert len(ctx.sent_of_kind("proactive.tick")) == N


class TestShareCommitmentAt:
    def test_matrix_and_vector_shapes(self) -> None:
        from repro.crypto.bivariate import BivariatePolynomial
        from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
        from repro.crypto.polynomials import Polynomial

        rng = random.Random(1)
        f = BivariatePolynomial.random_symmetric(2, G.q, rng, secret=5)
        matrix = FeldmanCommitment.commit(f, G)
        assert share_commitment_at(matrix, 3) == G.commit(f.evaluate(3, 0))

        poly = Polynomial.random(2, G.q, rng, constant_term=5)
        vector = FeldmanVector.commit(poly, G)
        assert share_commitment_at(vector, 3) == G.commit(poly(3))
