"""Tests for share renewal (§5.2) and the proactive system (§5)."""

from __future__ import annotations

import pytest

from repro.crypto.polynomials import interpolate_at
from repro.sim.network import ExponentialDelay
from repro.dkg import DkgConfig
from repro.proactive import ProactiveSystem

from tests.helpers import default_test_group

G = default_test_group()


def _system(n: int = 7, t: int = 2, f: int = 0, seed: int = 1) -> ProactiveSystem:
    system = ProactiveSystem(DkgConfig(n=n, t=t, f=f, group=G), seed=seed)
    system.bootstrap()
    return system


class TestRenewalCorrectness:
    def test_secret_is_preserved(self) -> None:
        system = _system()
        before = system.reconstruct()
        system.renew()
        assert system.reconstruct() == before

    def test_public_key_is_preserved(self) -> None:
        system = _system(seed=2)
        pk = system.public_key
        report = system.renew()
        assert report.public_key == pk

    def test_shares_change_every_phase(self) -> None:
        system = _system(seed=3)
        first = dict(system.shares)
        r1 = system.renew()
        assert all(first[i] != r1.shares[i] for i in r1.shares)
        r2 = system.renew()
        assert all(r1.shares[i] != r2.shares[i] for i in r2.shares)

    def test_renewed_shares_verify_against_new_commitment(self) -> None:
        system = _system(seed=4)
        report = system.renew()
        for i, share in report.shares.items():
            assert report.commitment.verify_share(i, share)

    def test_multiple_phases(self) -> None:
        system = _system(seed=5)
        secret = system.reconstruct()
        for _ in range(4):
            system.renew()
            assert system.reconstruct() == secret

    def test_renewal_with_clock_skew(self) -> None:
        system = _system(seed=6)
        secret = system.reconstruct()
        skews = {i: 0.5 * i for i in range(1, 8)}  # staggered local clocks
        system.renew(clock_skews=skews)
        assert system.reconstruct() == secret

    def test_renewal_under_heavy_delays(self) -> None:
        system = _system(seed=7)
        secret = system.reconstruct()
        system.renew(delay_model=ExponentialDelay(mean=2.0))
        assert system.reconstruct() == secret

    def test_renewal_with_crash_and_recovery(self) -> None:
        system = _system(n=9, t=2, f=1, seed=8)
        secret = system.reconstruct()
        report = system.renew(crash_plan=[(0.5, 4, 100.0)])
        assert 4 in report.shares  # recovered node got its new share
        assert system.reconstruct() == secret


class TestMobileAdversary:
    """§5: t corruptions per phase never accumulate into the secret."""

    def test_cross_phase_shares_do_not_interpolate_to_secret(self) -> None:
        system = _system(seed=9)
        secret = system.reconstruct()
        system.renew(corrupted={1, 2})  # adversary sees 2 shares of phase 0
        system.renew(corrupted={3, 4})  # ... 2 shares of phase 1
        view = system.adversary_view
        # Across two phases the adversary saw 4 distinct node shares —
        # more than t+1 = 3 — but from different polynomials.
        leaked = [(i, s) for phase in view.values() for i, s in phase.items()]
        assert len(leaked) == 4
        mixed = leaked[:3]
        assert interpolate_at(mixed, 0, G.q) != secret

    def test_within_phase_t_shares_still_insufficient(self) -> None:
        system = _system(seed=10)
        secret = system.reconstruct()
        report = system.renew(corrupted={1, 2})
        exposed = sorted(report.exposed_shares.items())
        assert len(exposed) == 2  # exactly t
        # Interpolating t points at 0 misses the secret (degree t poly).
        assert interpolate_at(exposed, 0, G.q) != secret

    def test_adversary_cannot_exceed_t_per_phase(self) -> None:
        system = _system(seed=11)
        with pytest.raises(ValueError, match="exceeds t"):
            system.renew(corrupted={1, 2, 3})

    def test_phase_t_plus_one_fresh_shares_do_reconstruct(self) -> None:
        # Sanity check of the model: t+1 *same-phase* shares break it.
        system = _system(seed=12)
        secret = system.reconstruct()
        report = system.renew()
        same_phase = sorted(report.shares.items())[:3]
        assert interpolate_at(same_phase, 0, G.q) == secret


class TestRenewalProtocolHygiene:
    def test_dealer_resharing_wrong_value_is_rejected(self) -> None:
        # Corrupt one node's stored share before renewal: its dealing
        # no longer matches g^{s_d} and gets no echoes; the phase still
        # completes via the other dealers.
        system = _system(seed=13)
        secret = system.reconstruct()
        system.shares[5] = (system.shares[5] + 1) % G.q
        report = system.renew()
        # The cheating dealer cannot appear in the agreed set Q: its
        # send fails the expected-commitment check everywhere.
        assert 5 not in report.q_set
        # Main property: the secret survives.
        assert system.reconstruct() == secret

    def test_renewal_requires_bootstrap(self) -> None:
        system = ProactiveSystem(DkgConfig(n=4, t=1, group=G), seed=14)
        with pytest.raises(RuntimeError, match="bootstrap"):
            system.renew()

    def test_tick_gate_counts(self) -> None:
        # The renewal completes even when one node's clock never ticks
        # locally (it is carried by the other t+1 ticks).
        system = _system(seed=15)
        secret = system.reconstruct()
        skews = {i: 0.0 for i in range(1, 8)}
        skews[7] = 500.0  # effectively never ticks during the run
        system.renew(clock_skews=skews, until=400.0)
        # Node 7 participates once its buffered messages replay after
        # the t+1 tick gate opens via *other* nodes' ticks.
        assert system.reconstruct() == secret
