"""Unit tests for the repro.obs.metrics registry.

The registry is the single schema every layer reports into, so its
edge behaviour — bucket boundaries, quantile interpolation, label
cardinality limits, thread safety, and the disabled (None-registry)
mode the overhead benchmark relies on — is pinned here.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    CardinalityError,
    MetricsRegistry,
    counter_inc,
    gauge_set,
    observe,
    registry,
    set_registry,
)


class TestCountersAndGauges:
    def test_counter_accumulates_per_label_set(self) -> None:
        reg = MetricsRegistry()
        reg.counter("frames_total", kind="echo").inc()
        reg.counter("frames_total", kind="echo").inc(3)
        reg.counter("frames_total", kind="ready").inc()
        snap = reg.snapshot()["frames_total"]
        by_kind = {s["labels"]["kind"]: s["value"] for s in snap["samples"]}
        assert by_kind == {"echo": 4, "ready": 1}

    def test_gauge_set_inc_dec(self) -> None:
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert reg.snapshot()["depth"]["samples"][0]["value"] == 8

    def test_label_values_are_stringified(self) -> None:
        reg = MetricsRegistry()
        reg.counter("c", node=3).inc()
        reg.counter("c", node="3").inc()
        samples = reg.snapshot()["c"]["samples"]
        assert len(samples) == 1 and samples[0]["value"] == 2

    def test_kind_mismatch_raises(self) -> None:
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_cardinality_limit_enforced(self) -> None:
        reg = MetricsRegistry(label_limit=4)
        for i in range(4):
            reg.counter("busy", shard=i).inc()
        with pytest.raises(CardinalityError):
            reg.counter("busy", shard=99)


class TestHistogram:
    def test_empty_histogram_quantiles_are_zero(self) -> None:
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        assert hist.quantile(0.5) == 0.0
        sample = reg.snapshot()["lat"]["samples"][0]
        assert sample["count"] == 0 and sample["p99"] == 0.0

    def test_observation_on_edge_lands_in_that_bucket(self) -> None:
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)  # le-inclusive: exactly 2.0 -> the 2.0 bucket
        assert hist.counts == [0, 1, 0, 0]

    def test_overflow_lands_in_inf_bucket_and_clamps(self) -> None:
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.counts == [0, 0, 1]
        # Quantiles falling in +Inf clamp to the last finite edge.
        assert hist.quantile(0.99) == 2.0

    def test_quantiles_interpolate_within_bucket(self) -> None:
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)  # all in the (1.0, 2.0] bucket
        p50 = hist.quantile(0.50)
        assert 1.0 < p50 <= 2.0
        assert hist.quantile(0.99) <= 2.0

    def test_default_buckets_are_ascending(self) -> None:
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-4)

    def test_sum_and_count_track_observations(self) -> None:
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for value in (0.001, 0.01, 0.1):
            hist.observe(value)
        sample = reg.snapshot()["lat"]["samples"][0]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(0.111)


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self) -> None:
        reg = MetricsRegistry()
        per_thread = 2000

        def work() -> None:
            for _ in range(per_thread):
                reg.counter("hits", worker="shared").inc()
                reg.histogram("lat", worker="shared").observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["hits"]["samples"][0]["value"] == 8 * per_thread
        assert snap["lat"]["samples"][0]["count"] == 8 * per_thread


class TestExposition:
    def test_snapshot_is_json_serializable(self) -> None:
        reg = MetricsRegistry()
        reg.counter("a", kind="x").inc()
        reg.histogram("b").observe(0.5)
        json.dumps(reg.snapshot())  # must not raise

    def test_render_text_prometheus_shape(self) -> None:
        reg = MetricsRegistry()
        reg.counter("repro_t_total", help="help text", kind="echo").inc(3)
        reg.histogram("repro_lat", buckets=(1.0, 2.0)).observe(1.5)
        text = reg.render_text()
        assert "# HELP repro_t_total help text" in text
        assert "# TYPE repro_t_total counter" in text
        assert 'repro_t_total{kind="echo"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text

    def test_label_values_escaped(self) -> None:
        reg = MetricsRegistry()
        reg.counter("c", kind='with"quote').inc()
        assert '\\"' in reg.render_text()


class TestActiveRegistry:
    def test_helpers_disabled_with_none_registry(self) -> None:
        previous = set_registry(None)
        try:
            # All three helpers must be silent no-ops.
            counter_inc("never")
            gauge_set("never", 1.0)
            observe("never", 0.5)
            assert registry() is None
        finally:
            set_registry(previous)

    def test_helpers_route_to_installed_registry(self) -> None:
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            counter_inc("routed_total", kind="a")
            snap = mine.snapshot(collect=False)
            assert snap["routed_total"]["samples"][0]["value"] == 1
        finally:
            set_registry(previous)
