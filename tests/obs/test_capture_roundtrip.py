"""Payload-capture fidelity: hex wire frames must round-trip exactly.

The flight recorder stores each event as ``wire.encode(payload).hex()``
and replay decodes it back — so the capture format is only as good as
``decode(fromhex(hex(encode(m)))) == m`` over *every* registered wire
message kind.  The first class sweeps the wire suite's exhaustive
per-kind catalogue (toy modp); the second builds commitment-carrying
messages on the suite-wide ``group`` fixture, which is secp256k1 in the
CI curve lane — covering the backend-tagged encodings.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.schnorr import SigningKey
from repro.dkg.messages import DkgCompletedOutput, DkgStartInput
from repro.groupmod.messages import JoinedOutput, SubshareMsg
from repro.net import wire
from repro.obs.trace import PayloadCodec
from repro.proactive.messages import RenewedOutput
from repro.runtime.envelope import SessionEnvelope
from repro.runtime.events import MessageReceived, OperatorInput, TimerFired
from repro.vss.messages import EchoMsg, ReadyMsg, SendMsg, SessionId

from tests.net.test_wire import G, MESSAGES, _IDS


class TestEveryRegisteredKind:
    """Exhaustive sweep: the wire suite's catalogue covers every kind
    registered in ``wire._CODECS`` (enforced there), so hex round-trip
    over it is hex round-trip over the whole codec."""

    @pytest.mark.parametrize("message", MESSAGES, ids=_IDS)
    def test_hex_frame_round_trips(self, message) -> None:
        codec = PayloadCodec(G)
        frame = codec.encode_frame(message)
        decoded = wire.decode(bytes.fromhex(frame), group=G)
        # decode stamps `size`; compare through a re-encode, which is
        # the byte-stability replay actually relies on.
        assert codec.encode_frame(decoded) == frame

    def test_event_data_shapes(self) -> None:
        codec = PayloadCodec(G)
        start = DkgStartInput(0)
        msg = codec.event_data(MessageReceived(3, start))
        assert msg["type"] == "message" and msg["sender"] == 3
        assert wire.decode(bytes.fromhex(msg["frame"])) == start
        op = codec.event_data(OperatorInput(SessionEnvelope("dkg", start)))
        assert op["type"] == "operator"
        timer = codec.event_data(TimerFired(("dkg-timeout", 2), 7))
        assert timer == {
            "type": "timer",
            "tag": {"__tuple__": ["dkg-timeout", 2]},
            "id": 7,
        }


def _backend_messages(group):
    """Commitment-carrying messages built on the suite group fixture."""
    rng = random.Random(17)
    poly = BivariatePolynomial.random_symmetric(2, group.q, rng)
    commitment = FeldmanCommitment.commit(poly, group)
    vector = commitment.column_vector(0)
    sig = SigningKey.generate(group, rng).sign(b"capture", rng)
    sid = SessionId(1, 4)
    return [
        SendMsg(sid, commitment, poly.row_polynomial(1)),
        EchoMsg(sid, commitment, 1234),
        ReadyMsg(sid, commitment, 99, sig),
        DkgCompletedOutput(0, 1, (1, 2, 3), commitment, 10, commitment.public_key()),
        RenewedOutput(1, vector, 9, (1, 2)),
        SubshareMsg(2, vector, 4242),
        JoinedOutput(2, 77, vector),
        SessionEnvelope("renew-1", EchoMsg(sid, commitment, 8)),
    ]


class TestBackendTaggedFrames:
    def test_hex_frames_round_trip_on_suite_backend(self, group) -> None:
        codec = PayloadCodec(group)
        for message in _backend_messages(group):
            frame = codec.encode_frame(message)
            decoded = wire.decode(bytes.fromhex(frame), group=group)
            assert codec.encode_frame(decoded) == frame, message

    def test_decoded_values_match_originals(self, group) -> None:
        codec = PayloadCodec(group)
        for message in _backend_messages(group):
            decoded = wire.decode(
                bytes.fromhex(codec.encode_frame(message)), group=group
            )
            inner = (
                decoded.payload
                if isinstance(decoded, SessionEnvelope)
                else decoded
            )
            original = (
                message.payload
                if isinstance(message, SessionEnvelope)
                else message
            )
            for field in ("commitment", "share", "public_key"):
                if hasattr(original, field):
                    assert getattr(inner, field) == getattr(original, field)
