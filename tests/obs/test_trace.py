"""Tests for repro.obs.trace: the MachineDriver-seam transcript.

The headline property is backend equivalence: the same DKG traced over
the deterministic simulator and over real asyncio TCP sockets produces
the same *protocol-level* transcript shape — the same nodes exchanging
the same message kinds and emitting the same outputs — because both
backends step machines through the one shared driver.  Ordering and
timing legitimately differ, so equivalence is asserted on kind sets,
never on sequences.
"""

from __future__ import annotations

import io
import json

from repro.dkg import DkgConfig, run_dkg
from repro.obs.trace import (
    JsonlTraceSink,
    MemoryTraceSink,
    TraceSpan,
    describe_event,
    set_trace_sink,
)
from repro.runtime.envelope import SessionEnvelope
from repro.runtime.events import MessageReceived, TimerFired


def _traced_sim_dkg(n: int = 4, t: int = 1, seed: int = 3) -> MemoryTraceSink:
    sink = MemoryTraceSink()
    previous = set_trace_sink(sink)
    try:
        result = run_dkg(DkgConfig(n=n, t=t), seed=seed)
        assert result.succeeded
    finally:
        set_trace_sink(previous)
    return sink


class TestDescribe:
    def test_envelope_unwrapped_to_session(self) -> None:
        class _Msg:
            kind = "dkg.echo"

        label, session = describe_event(
            MessageReceived(1, SessionEnvelope("nonce-7", _Msg()))
        )
        assert label == "message:dkg.echo"
        assert session == "nonce-7"

    def test_session_namespaced_timer_tag_unwrapped(self) -> None:
        label, session = describe_event(
            TimerFired(("nonce-7", "echo-timeout"), 42)
        )
        assert label == "timer:echo-timeout"
        assert session == "nonce-7"

    def test_plain_timer_tag_has_no_session(self) -> None:
        label, session = describe_event(TimerFired("echo-timeout", 42))
        assert label == "timer:echo-timeout"
        assert session is None


class TestSimulatedRunCapture:
    def test_sim_dkg_produces_complete_transcript(self) -> None:
        sink = _traced_sim_dkg()
        kinds = {span.event for span in sink.spans}
        # The paper's DKG round structure is visible in the transcript.
        assert "message:dkg.send" in kinds
        assert "message:dkg.echo" in kinds
        assert "message:dkg.ready" in kinds
        # Every node both received events and completed.
        for node in range(1, 5):
            assert sink.for_node(node), f"no spans for node {node}"
            assert "output:dkg.out.completed" in sink.output_kinds(node)

    def test_memory_sink_bounds_growth(self) -> None:
        sink = MemoryTraceSink(limit=2)
        span = TraceSpan(1, "message:x", None, (), 0.0, 0.0)
        for _ in range(5):
            sink.record(span)
        assert len(sink.spans) == 2
        assert sink.dropped == 3


class TestJsonlSink:
    def test_lines_parse_and_carry_span_fields(self) -> None:
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        previous = set_trace_sink(sink)
        try:
            result = run_dkg(DkgConfig(n=4, t=1), seed=5)
            assert result.succeeded
        finally:
            set_trace_sink(previous)
            sink.close()
        lines = [line for line in buffer.getvalue().splitlines() if line]
        assert sink.recorded == len(lines) > 0
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"node", "event", "session", "effects", "t", "wall"}
        events = {json.loads(line)["event"] for line in lines}
        assert "message:dkg.echo" in events


class TestBackendEquivalence:
    def test_sim_and_tcp_transcripts_agree_on_kinds(self) -> None:
        from repro.net.cluster import run_local_cluster

        sim_sink = _traced_sim_dkg(seed=7)

        tcp_sink = MemoryTraceSink()
        previous = set_trace_sink(tcp_sink)
        try:
            result = run_local_cluster(
                DkgConfig(n=4, t=1), seed=7, time_scale=0.01, timeout=60.0
            )
            assert result.succeeded
        finally:
            set_trace_sink(previous)

        def message_kinds(sink: MemoryTraceSink) -> set[str]:
            return {
                span.event
                for span in sink.spans
                if span.event.startswith("message:")
            }

        shared = {"message:dkg.send", "message:dkg.echo", "message:dkg.ready"}
        assert shared <= message_kinds(sim_sink)
        assert shared <= message_kinds(tcp_sink)
        # Identical completion picture, node by node.
        for node in range(1, 5):
            assert sim_sink.output_kinds(node) == tcp_sink.output_kinds(node)
