"""Tests for repro.obs.trace: the MachineDriver-seam transcript.

The headline property is backend equivalence: the same DKG traced over
the deterministic simulator and over real asyncio TCP sockets produces
the same *protocol-level* transcript shape — the same nodes exchanging
the same message kinds and emitting the same outputs — because both
backends step machines through the one shared driver.  Ordering and
timing legitimately differ, so equivalence is asserted on kind sets,
never on sequences.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.dkg import DkgConfig, run_dkg
from repro.obs.trace import (
    JsonlTraceSink,
    MemoryTraceSink,
    TraceSpan,
    describe_effect,
    describe_event,
    set_trace_sink,
    tag_from_json,
    tag_to_json,
)
from repro.runtime.effects import Broadcast, Send
from repro.runtime.envelope import SessionEnvelope, SessionTimerTag
from repro.runtime.events import MessageReceived, TimerFired


def _traced_sim_dkg(n: int = 4, t: int = 1, seed: int = 3) -> MemoryTraceSink:
    sink = MemoryTraceSink()
    previous = set_trace_sink(sink)
    try:
        result = run_dkg(DkgConfig(n=n, t=t), seed=seed)
        assert result.succeeded
    finally:
        set_trace_sink(previous)
    return sink


class TestDescribe:
    def test_envelope_unwrapped_to_session(self) -> None:
        class _Msg:
            kind = "dkg.echo"

        label, session = describe_event(
            MessageReceived(1, SessionEnvelope("nonce-7", _Msg()))
        )
        assert label == "message:dkg.echo"
        assert session == "nonce-7"

    def test_session_namespaced_timer_tag_unwrapped(self) -> None:
        label, session = describe_event(
            TimerFired(SessionTimerTag("nonce-7", "echo-timeout"), 42)
        )
        assert label == "timer:echo-timeout"
        assert session == "nonce-7"

    def test_plain_timer_tag_has_no_session(self) -> None:
        label, session = describe_event(TimerFired("echo-timeout", 42))
        assert label == "timer:echo-timeout"
        assert session is None

    def test_machine_tuple_tag_is_not_mistaken_for_session(self) -> None:
        # The DKG arms ("dkg-timeout", view) tags: a plain 2-tuple with
        # a leading string, which only SessionTimerTag may unwrap.
        label, session = describe_event(TimerFired(("dkg-timeout", 3), 42))
        assert session is None
        assert "dkg-timeout" in label

    def test_legacy_unenveloped_message(self) -> None:
        class _Msg:
            kind = "vss.echo"

        label, session = describe_event(MessageReceived(2, _Msg()))
        assert label == "message:vss.echo"
        assert session is None

    def test_effects_unwrap_envelopes(self) -> None:
        class _Msg:
            kind = "vss.ready"

        assert describe_effect(Send(3, _Msg())) == "send:vss.ready"
        assert (
            describe_effect(Broadcast(SessionEnvelope("s1", _Msg()), False))
            == "broadcast:vss.ready"
        )


class TestTagJson:
    @pytest.mark.parametrize(
        "tag",
        [
            "echo-timeout",
            7,
            None,
            ("dkg-timeout", 3),
            SessionTimerTag("renew-2", ("dkg-timeout", 0)),
            (("a", 1), ("b", (2, 3))),
        ],
    )
    def test_round_trip_preserves_value_and_shape(self, tag) -> None:
        decoded = tag_from_json(json.loads(json.dumps(tag_to_json(tag))))
        assert decoded == tag
        assert type(decoded) is type(tag) or isinstance(tag, SessionTimerTag)
        if isinstance(tag, SessionTimerTag):
            assert isinstance(decoded, SessionTimerTag)
            assert decoded.session == tag.session
            assert decoded.tag == tag.tag


class TestSimulatedRunCapture:
    def test_sim_dkg_produces_complete_transcript(self) -> None:
        sink = _traced_sim_dkg()
        kinds = {span.event for span in sink.spans}
        # The paper's DKG round structure is visible in the transcript.
        assert "message:dkg.send" in kinds
        assert "message:dkg.echo" in kinds
        assert "message:dkg.ready" in kinds
        # Every node both received events and completed.
        for node in range(1, 5):
            assert sink.for_node(node), f"no spans for node {node}"
            assert "output:dkg.out.completed" in sink.output_kinds(node)

    def test_memory_sink_bounds_growth(self) -> None:
        sink = MemoryTraceSink(limit=2)
        span = TraceSpan(1, "message:x", None, (), 0.0, 0.0)
        for _ in range(5):
            sink.record(span)
        assert len(sink.spans) == 2
        assert sink.dropped == 3

    def test_memory_sink_warns_once_on_drop(self, caplog) -> None:
        sink = MemoryTraceSink(limit=1)
        span = TraceSpan(1, "message:x", None, (), 0.0, 0.0)
        with caplog.at_level("WARNING", logger="repro.obs.trace"):
            for _ in range(4):
                sink.record(span)
        warnings = [
            r for r in caplog.records if "dropping" in r.getMessage()
        ]
        assert len(warnings) == 1  # one-time, not per-span
        assert sink.dropped == 3


class TestJsonlSink:
    def test_lines_parse_and_carry_span_fields(self) -> None:
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        previous = set_trace_sink(sink)
        try:
            result = run_dkg(DkgConfig(n=4, t=1), seed=5)
            assert result.succeeded
        finally:
            set_trace_sink(previous)
            sink.close()
        lines = [line for line in buffer.getvalue().splitlines() if line]
        assert sink.recorded == len(lines) > 0
        for line in lines:
            record = json.loads(line)
            assert set(record) == {
                "node", "event", "session", "effects", "t", "wall", "dur",
            }
            # The driver measures every step; decoding *old* captures
            # (without the field) backfills None via .get("dur").
            assert record["dur"] is not None and record["dur"] >= 0.0
        events = {json.loads(line)["event"] for line in lines}
        assert "message:dkg.echo" in events

    def test_flushes_every_n_records(self, tmp_path) -> None:
        path = tmp_path / "spans.jsonl"
        sink = JsonlTraceSink(path, flush_every=2)
        span = TraceSpan(1, "message:x", None, (), 0.0, 0.0)
        sink.record(span)
        assert path.read_text() == ""  # below the flush threshold
        sink.record(span)
        flushed = path.read_text().splitlines()
        assert len(flushed) == 2  # durability without close()
        sink.record(span)
        assert len(path.read_text().splitlines()) == 2
        sink.close()
        assert len(path.read_text().splitlines()) == 3

    def test_payload_mode_writes_meta_end_and_transcript(self) -> None:
        from repro.obs.replay import load_capture

        buffer = io.StringIO()
        sink = JsonlTraceSink(
            buffer, payloads=True, meta={"cmd": "dkg", "transport": "sim"}
        )
        previous = set_trace_sink(sink)
        try:
            result = run_dkg(DkgConfig(n=4, t=1), seed=5)
            assert result.succeeded
        finally:
            set_trace_sink(previous)
            sink.close()
        assert sink.transcript is not None
        buffer.seek(0)
        capture = load_capture(buffer)
        assert capture.meta["cmd"] == "dkg"
        assert capture.recorded_hash == sink.transcript
        assert capture.recorded_outputs and capture.recorded_outputs > 0
        for span in capture.spans:
            assert "data" in span  # every event captured with payload


class TestBackendEquivalence:
    def test_sim_and_tcp_transcripts_agree_on_kinds(self) -> None:
        from repro.net.cluster import run_local_cluster

        sim_sink = _traced_sim_dkg(seed=7)

        tcp_sink = MemoryTraceSink()
        previous = set_trace_sink(tcp_sink)
        try:
            result = run_local_cluster(
                DkgConfig(n=4, t=1), seed=7, time_scale=0.01, timeout=60.0
            )
            assert result.succeeded
        finally:
            set_trace_sink(previous)

        def message_kinds(sink: MemoryTraceSink) -> set[str]:
            return {
                span.event
                for span in sink.spans
                if span.event.startswith("message:")
            }

        shared = {"message:dkg.send", "message:dkg.echo", "message:dkg.ready"}
        assert shared <= message_kinds(sim_sink)
        assert shared <= message_kinds(tcp_sink)
        # Identical completion picture, node by node.
        for node in range(1, 5):
            assert sim_sink.output_kinds(node) == tcp_sink.output_kinds(node)
