"""Tests for ``repro trace`` analysis over flight-recorder captures.

All assertions run against a real sim-DKG payload capture (one per
backend lane via the ``group`` fixture), so the report shapes are
exercised on genuine span streams, not synthetic fixtures — plus a few
hand-built captures for the degenerate paths.
"""

from __future__ import annotations

import io
import json
import math

import pytest

from repro.dkg import DkgConfig, run_dkg
from repro.obs.analysis import analyze_capture, analyze_file
from repro.obs.replay import ReplayError, capture_meta, load_capture
from repro.obs.trace import JsonlTraceSink, set_trace_sink


@pytest.fixture(scope="module")
def capture_path(group, tmp_path_factory):
    """A payload-mode sim-DKG capture shared by the whole module."""
    config = DkgConfig(n=4, t=1, group=group)
    path = tmp_path_factory.mktemp("trace") / "dkg.jsonl"
    sink = JsonlTraceSink(
        path,
        payloads=True,
        group=group,
        meta=capture_meta("dkg", config, 5, "sim", tau=0),
        mode="w",
    )
    previous = set_trace_sink(sink)
    try:
        result = run_dkg(config, seed=5)
        assert result.succeeded
    finally:
        set_trace_sink(previous)
        sink.close()
    return path


@pytest.fixture(scope="module")
def report(capture_path):
    return analyze_file(capture_path)


class TestPhaseLatencies:
    def test_dkg_session_sees_all_phases(self, report) -> None:
        # The sim runner drives machines without session envelopes, so
        # the whole run lands in the "<default>" session bucket.
        phases = {p.session: p for p in report.phases}
        dkg = phases["<default>"]
        assert dkg.first_send is not None
        assert dkg.first_echo is not None
        assert dkg.first_ready is not None
        assert dkg.first_output is not None
        # Protocol order: share distribution precedes echo quorum
        # precedes ready quorum precedes output.
        assert (
            dkg.first_send
            <= dkg.first_echo
            <= dkg.first_ready
            <= dkg.first_output
        )

    def test_latency_deltas_are_consistent(self, report) -> None:
        dkg = {p.session: p for p in report.phases}["<default>"]
        latency = dkg.latencies()
        assert latency["send_to_output"] is not None
        assert latency["send_to_output"] >= 0.0
        total = (
            latency["send_to_echo"]
            + latency["echo_to_ready"]
            + latency["ready_to_output"]
        )
        assert math.isclose(total, latency["send_to_output"])

    def test_thresholds_echo_fig1_quorums(self, report) -> None:
        # n=4, t=1, f=0: echo = ceil((n+t+1)/2) = 3, ready = t+1 = 2,
        # output = n - t - f = 3, bound = 3t + 2f + 1 = 4.
        assert report.thresholds == {
            "n": 4,
            "t": 1,
            "f": 0,
            "echo": 3,
            "ready": 2,
            "output": 3,
            "bound": 4,
        }


class TestFlowMatrix:
    def test_every_node_received_round_messages(self, report) -> None:
        assert set(report.flow) == {1, 2, 3, 4}
        for node, kinds in report.flow.items():
            assert kinds, f"node {node} received nothing"
            assert any(k.endswith(".echo") for k in kinds), node

    def test_counts_are_positive(self, report) -> None:
        for kinds in report.flow.values():
            assert all(count > 0 for count in kinds.values())


class TestCriticalPath:
    def test_non_empty_and_ends_at_an_output(self, capture_path, report) -> None:
        assert report.critical_path
        capture = load_capture(capture_path)
        last = report.critical_path[-1]
        effects = capture.spans[last.index].get("effects", [])
        assert any(e.startswith("output:") for e in effects)

    def test_indices_strictly_increase(self, report) -> None:
        indices = [step.index for step in report.critical_path]
        assert indices == sorted(set(indices))

    def test_crosses_nodes(self, report) -> None:
        # Completion depends on other nodes' shares, so the dependency
        # chain cannot stay on a single node.
        assert len({step.node for step in report.critical_path}) > 1


class TestStepDurations:
    def test_percentiles_are_ordered(self, report) -> None:
        assert report.step_durations
        for event, stats in report.step_durations.items():
            assert stats["count"] >= 1, event
            assert 0.0 <= stats["p50"] <= stats["p90"] <= stats["p99"], event
            assert stats["p99"] <= stats["max"], event

    def test_null_durations_are_skipped(self) -> None:
        # Old captures (pre-duration) backfill dur=None — they analyze
        # without a durations section rather than crashing.
        lines = [
            json.dumps({"record": "meta", "cmd": "dkg", "transport": "sim"}),
            json.dumps(
                {
                    "node": 1,
                    "event": "message:dkg.echo",
                    "session": "dkg",
                    "effects": [],
                    "t": 1.0,
                    "wall": 0.0,
                    "dur": None,
                }
            ),
        ]
        report = analyze_capture(load_capture(io.StringIO("\n".join(lines))))
        assert report.step_durations == {}
        assert report.spans == 1


class TestReportSerialization:
    def test_as_dict_is_json_clean(self, report) -> None:
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["cmd"] == "dkg"
        assert payload["spans"] == report.spans
        assert payload["critical_path"]
        assert payload["thresholds"]["echo"] == 3

    def test_empty_capture_is_rejected(self) -> None:
        empty = io.StringIO(
            json.dumps({"record": "meta", "cmd": "dkg", "transport": "sim"})
            + "\n"
        )
        with pytest.raises(ReplayError, match="no spans"):
            analyze_capture(load_capture(empty))
