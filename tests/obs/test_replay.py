"""Record/replay round trips: captured runs re-execute bit-identically.

Each test records a live run with a payload-mode sink — over real
asyncio TCP sockets or the discrete-event simulator — then replays the
capture through fresh machines in the sim driver and checks the
reproduced ``transcript_hash`` against the one the recorder wrote at
close.  The configs are built on the suite-wide ``group`` fixture, so
the CI curve lane exercises the same round trips on secp256k1.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.dkg import DkgConfig, run_dkg
from repro.obs.replay import (
    ReplayError,
    capture_meta,
    load_capture,
    replay_capture,
    replay_file,
)
from repro.obs.trace import JsonlTraceSink, set_trace_sink


def _record(tmp_path, name, meta, group, run):
    """Run ``run()`` under a payload-mode recorder; returns (path, sink,
    run's result)."""
    path = tmp_path / name
    sink = JsonlTraceSink(path, payloads=True, group=group, meta=meta, mode="w")
    previous = set_trace_sink(sink)
    try:
        result = run()
    finally:
        set_trace_sink(previous)
        sink.close()
    return path, sink, result


class TestTcpReplay:
    def test_dkg_over_tcp_replays_identically(self, group, tmp_path) -> None:
        from repro.net.cluster import run_local_cluster

        config = DkgConfig(n=4, t=1, group=group)
        path, sink, result = _record(
            tmp_path,
            "dkg.jsonl",
            capture_meta("cluster", config, 3, "tcp", tau=0),
            group,
            lambda: run_local_cluster(
                config, seed=3, time_scale=0.01, timeout=60.0
            ),
        )
        assert result.succeeded
        replay = replay_file(path)
        assert replay.recorded_hash == sink.transcript
        assert replay.matched, (replay.recorded_hash, replay.replayed_hash)
        assert replay.outputs > 0 and replay.spans > 0

    def test_renewal_phases_replay_with_state_chaining(
        self, group, tmp_path
    ) -> None:
        from repro.net.proactive import run_renewal_cluster

        config = DkgConfig(n=4, t=1, group=group)
        path, sink, result = _record(
            tmp_path,
            "renew.jsonl",
            capture_meta("renew", config, 5, "tcp", phases=2),
            group,
            lambda: run_renewal_cluster(
                config, seed=5, phases=2, time_scale=0.01, timeout=60.0
            ),
        )
        assert result.succeeded
        replay = replay_file(path)
        # The renew-2 machines were rebuilt from *replayed* renew-1
        # outputs; a hash match certifies the whole chain.
        assert replay.matched

    def test_groupmod_with_crash_recover_replays(self, group, tmp_path) -> None:
        from repro.net.groupmod import run_groupmod_cluster
        from repro.sim.network import UniformDelay

        config = DkgConfig(n=5, t=1, group=group)
        path, sink, result = _record(
            tmp_path,
            "groupmod.jsonl",
            capture_meta("groupmod", config, 9, "tcp", new_node=6),
            group,
            lambda: run_groupmod_cluster(
                config,
                seed=9,
                new_node=6,
                delay_model=UniformDelay(1.0, 3.0),
                time_scale=0.01,
                crash_plan=[(2, 2.0, 25.0)],
                timeout=60.0,
            ),
        )
        assert result.succeeded
        capture = load_capture(path)
        # The mid-protocol fault is part of the transcript...
        events = {s.get("data", {}).get("type") for s in capture.spans}
        assert "crash" in events and "recover" in events
        # ...and the joiner's session opens with the grown membership.
        opens = [r for r in capture.records if r.get("record") == "open"]
        assert any(r["node"] == 6 and 6 in r["members"] for r in opens)
        assert replay_capture(capture).matched

    def test_replay_is_idempotent(self, group, tmp_path) -> None:
        from repro.net.cluster import run_local_cluster

        config = DkgConfig(n=4, t=1, group=group)
        path, _sink, _result = _record(
            tmp_path,
            "twice.jsonl",
            capture_meta("cluster", config, 11, "tcp", tau=0),
            group,
            lambda: run_local_cluster(
                config, seed=11, time_scale=0.01, timeout=60.0
            ),
        )
        first = replay_file(path)
        second = replay_file(path)
        assert first.matched and second.matched
        assert first.replayed_hash == second.replayed_hash


class TestSimReplay:
    def test_sim_dkg_replays_identically(self, group, tmp_path) -> None:
        config = DkgConfig(n=4, t=1, group=group)
        path, sink, result = _record(
            tmp_path,
            "sim.jsonl",
            capture_meta("dkg", config, 7, "sim", tau=0),
            group,
            lambda: run_dkg(config, seed=7),
        )
        assert result.succeeded
        replay = replay_file(path)
        assert replay.matched

    def test_sim_dkg_with_reconstruct_replays(self, group, tmp_path) -> None:
        config = DkgConfig(n=4, t=1, group=group)
        path, _sink, result = _record(
            tmp_path,
            "rec.jsonl",
            capture_meta("dkg", config, 7, "sim", tau=0),
            group,
            lambda: run_dkg(config, seed=7, reconstruct=True),
        )
        assert result.succeeded
        # The second-stage Rec inputs are operator spans in the same
        # capture, so they replay with everything else.
        assert replay_file(path).matched


class TestReplayRejections:
    def test_label_only_capture_is_rejected(self, group, tmp_path) -> None:
        config = DkgConfig(n=4, t=1, group=group)
        path = tmp_path / "labels.jsonl"
        meta = capture_meta("dkg", config, 7, "sim", tau=0)
        # payloads=False: spans carry labels but no event data.
        sink = JsonlTraceSink(path, group=group, meta=meta, mode="w")
        previous = set_trace_sink(sink)
        try:
            run_dkg(config, seed=7)
        finally:
            set_trace_sink(previous)
            sink.close()
        with pytest.raises(ReplayError, match="label-only"):
            replay_file(path)

    def test_capture_without_meta_is_rejected(self) -> None:
        buffer = io.StringIO('{"node": 1, "event": "crash", "t": 0.0}\n')
        with pytest.raises(ReplayError, match="meta"):
            replay_capture(load_capture(buffer))

    def test_serve_capture_is_analysis_only(self, group) -> None:
        config = DkgConfig(n=4, t=1, group=group)
        meta = {"record": "meta", **capture_meta("serve", config, 0, "tcp")}
        buffer = io.StringIO(json.dumps(meta) + "\n")
        with pytest.raises(ReplayError, match="analysis-only"):
            replay_capture(load_capture(buffer))

    def test_sim_renew_capture_is_analysis_only(self, group) -> None:
        config = DkgConfig(n=4, t=1, group=group)
        meta = {
            "record": "meta",
            **capture_meta("renew", config, 0, "sim", phases=1),
        }
        buffer = io.StringIO(json.dumps(meta) + "\n")
        with pytest.raises(ReplayError, match="analysis-only"):
            replay_capture(load_capture(buffer))

    def test_garbage_line_is_rejected(self) -> None:
        buffer = io.StringIO("not json\n")
        with pytest.raises(ReplayError, match="not JSON"):
            load_capture(buffer)


class TestTruncatedCaptures:
    """Interrupted recordings fail loudly, not with a hash mismatch."""

    def _recorded_lines(self, group, tmp_path) -> list[str]:
        config = DkgConfig(n=4, t=1, group=group)
        path, _sink, result = _record(
            tmp_path,
            "full.jsonl",
            capture_meta("dkg", config, 7, "sim", tau=0),
            group,
            lambda: run_dkg(config, seed=7),
        )
        assert result.succeeded
        return path.read_text().splitlines()

    def test_missing_end_record_is_truncation(self, group, tmp_path) -> None:
        from repro.obs.replay import TruncatedCaptureError

        lines = self._recorded_lines(group, tmp_path)
        clipped = tmp_path / "no-end.jsonl"
        clipped.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TruncatedCaptureError, match="no end record"):
            replay_file(clipped)

    def test_partial_final_line_is_truncation(self, group, tmp_path) -> None:
        from repro.obs.replay import TruncatedCaptureError

        lines = self._recorded_lines(group, tmp_path)
        # A crash mid-write leaves half a JSON object on the last line.
        clipped = tmp_path / "partial.jsonl"
        clipped.write_text("\n".join(lines[:-2]) + "\n" + lines[-2][: len(lines[-2]) // 2])
        with pytest.raises(TruncatedCaptureError, match="truncated"):
            load_capture(clipped)

    def test_garbage_middle_line_is_not_truncation(self) -> None:
        from repro.obs.replay import TruncatedCaptureError

        buffer = io.StringIO('not json\n{"record": "end"}\n')
        with pytest.raises(ReplayError, match="not JSON") as excinfo:
            load_capture(buffer)
        assert not isinstance(excinfo.value, TruncatedCaptureError)

    def test_undecodable_frame_raises_frame_decode_error(
        self, group, tmp_path
    ) -> None:
        from repro.obs.replay import FrameDecodeError, ReplayWorld

        lines = self._recorded_lines(group, tmp_path)
        world = ReplayWorld(load_capture(tmp_path / "full.jsonl"))
        with pytest.raises(FrameDecodeError, match="does not decode"):
            world.decode_frame("zz-not-hex")
        with pytest.raises(FrameDecodeError, match="does not decode"):
            world.decode_frame("00ff00ff")
        assert len(lines) > 3
