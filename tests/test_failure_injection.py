"""Failure-injection integration tests: partitions, mid-protocol
crashes at randomized times, and compound fault scenarios."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.adversary import Adversary
from repro.sim.clock import TimeoutPolicy
from repro.sim.network import PartitionDelay, UniformDelay
from repro.dkg import DkgConfig, run_dkg
from repro.vss import VssConfig, run_vss

from tests.helpers import default_test_group

G = default_test_group()

COMMON = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPartitions:
    def test_vss_completes_after_partition_heals(self) -> None:
        cfg = VssConfig(n=7, t=2, group=G)
        delays = PartitionDelay(
            group_a=frozenset({1, 2, 3}), heal_time=50.0,
            base=UniformDelay(0.5, 1.5),
        )
        res = run_vss(cfg, secret=5, seed=1, delay_model=delays)
        assert res.completed_nodes == list(range(1, 8))
        # Completion necessarily waits for the heal: the dealer is in
        # group A and the echo quorum (5) spans the partition.
        assert res.metrics.last_completion > 50.0

    def test_dkg_completes_after_partition_heals(self) -> None:
        cfg = DkgConfig(
            n=7, t=2, group=G,
            timeout=TimeoutPolicy(initial=40.0, multiplier=2.0),
        )
        delays = PartitionDelay(
            group_a=frozenset({1, 2, 3}), heal_time=30.0,
            base=UniformDelay(0.5, 1.5),
        )
        res = run_dkg(cfg, seed=2, delay_model=delays)
        assert res.succeeded
        assert res.reconstruct() == res.expected_secret()

    def test_majority_side_unaffected_when_dealer_inside(self) -> None:
        # Dealer and the whole echo quorum on one side: that side
        # finishes before the heal; the minority side after.
        cfg = VssConfig(n=7, t=2, group=G)
        delays = PartitionDelay(
            group_a=frozenset({6, 7}), heal_time=80.0,
            base=UniformDelay(0.5, 1.5),
        )
        res = run_vss(cfg, secret=5, seed=3, delay_model=delays)
        assert set(res.completed_nodes) == set(range(1, 8))
        majority_times = [
            o.time for o in res.simulation.outputs if o.node <= 5
        ]
        minority_times = [
            o.time for o in res.simulation.outputs if o.node >= 6
        ]
        assert max(majority_times) < 80.0
        assert min(minority_times) > 80.0

    @given(st.integers(0, 2**31), st.floats(min_value=5.0, max_value=60.0))
    @settings(**COMMON)
    def test_partition_never_breaks_safety(self, seed: int, heal: float) -> None:
        cfg = DkgConfig(
            n=7, t=2, group=G,
            timeout=TimeoutPolicy(initial=heal + 10.0, multiplier=2.0),
        )
        delays = PartitionDelay(
            group_a=frozenset({1, 4, 5}), heal_time=heal,
            base=UniformDelay(0.5, 1.5),
        )
        res = run_dkg(cfg, seed=seed, delay_model=delays)
        if res.completions:
            # whatever completes, it agrees
            _ = res.q_set
            _ = res.public_key
            assert res.reconstruct() == res.expected_secret()


class TestRandomizedCrashes:
    @given(
        st.integers(0, 2**31),
        st.floats(min_value=0.1, max_value=12.0),
        st.integers(min_value=1, max_value=9),
    )
    @settings(**COMMON)
    def test_dkg_survives_one_crash_anytime_anywhere(
        self, seed: int, crash_at: float, victim: int
    ) -> None:
        cfg = DkgConfig(n=9, t=2, f=1, group=G)
        adv = Adversary.crash_only(
            t=2, f=1, crash_plan=[(crash_at, victim, 60.0)]
        )
        res = run_dkg(cfg, seed=seed, adversary=adv)
        assert res.succeeded
        assert res.reconstruct() == res.expected_secret()

    @given(st.integers(0, 2**31))
    @settings(**COMMON)
    def test_serial_crash_recover_cycles(self, seed: int) -> None:
        # The same f=1 slot crashes three different nodes in sequence.
        cfg = DkgConfig(n=9, t=2, f=1, group=G)
        plan = [(0.5, 3, 5.0), (6.0, 7, 5.0), (12.0, 2, 5.0)]
        adv = Adversary.crash_only(t=2, f=1, crash_plan=plan, d_budget=6)
        res = run_dkg(cfg, seed=seed, adversary=adv)
        assert res.succeeded
        assert res.metrics.crashes == 3


class TestCompoundFaults:
    def test_partition_plus_crash_plus_byzantine(self) -> None:
        """Everything at once: a Byzantine node, a crash/recovery, and a
        partition — the DKG still completes and agrees."""
        from dataclasses import dataclass
        from typing import Any

        from repro.sim.node import Context, ProtocolNode

        @dataclass
        class SilentNode(ProtocolNode):
            def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
                pass

            def on_operator(self, payload: Any, ctx: Context) -> None:
                pass

        cfg = DkgConfig(
            n=10, t=2, f=1, group=G,
            timeout=TimeoutPolicy(initial=60.0, multiplier=2.0),
        )
        adv = Adversary(
            t=2, f=1,
            byzantine=frozenset({4}),
            crash_plan=[(1.0, 8, 45.0)],
            d_budget=4,
        )
        delays = PartitionDelay(
            group_a=frozenset({1, 2, 3}), heal_time=25.0,
            base=UniformDelay(0.5, 1.5),
        )
        res = run_dkg(
            cfg, seed=9, adversary=adv, delay_model=delays,
            node_factory=lambda i, c, k, ca: SilentNode(i) if i == 4 else None,
        )
        assert res.succeeded
        assert res.reconstruct() == res.expected_secret()
