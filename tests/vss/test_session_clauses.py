"""Clause-by-clause unit tests of the HybridVSS Sh state machine,
mirroring Fig. 1's `upon` blocks with hand-fed messages."""

from __future__ import annotations

import random

import pytest

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.vss.config import VssConfig
from repro.vss.messages import (
    EchoMsg,
    HelpMsg,
    ReadyMsg,
    SendMsg,
    SessionId,
    SharePointMsg,
)
from repro.vss.session import VssSession

from tests.helpers import StubContext, default_test_group

G = default_test_group()
CFG = VssConfig(n=7, t=2, f=0, group=G)
SID = SessionId(1, 0)


def _session(me: int = 2, on_shared=None) -> tuple[VssSession, StubContext]:
    outputs = []
    session = VssSession(
        CFG, me, SID, on_shared=(on_shared or outputs.append)
    )
    return session, StubContext(node_id=me, n_nodes=7)


def _dealing(secret: int = 42, seed: int = 0):
    f = BivariatePolynomial.random_symmetric(
        CFG.t, G.q, random.Random(seed), secret=secret
    )
    return f, FeldmanCommitment.commit(f, G)


class TestUponSend:
    def test_valid_send_triggers_n_echoes(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        session.handle(1, SendMsg(SID, c, f.row_polynomial(2), 100), ctx)
        echoes = ctx.sent_of_kind("vss.echo")
        assert len(echoes) == 7
        # echo to P_j carries a(j) = f(2, j)
        for j, msg in echoes:
            assert msg.point == f.evaluate(2, j)

    def test_send_from_non_dealer_ignored(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        session.handle(3, SendMsg(SID, c, f.row_polynomial(2), 100), ctx)
        assert ctx.sent == []

    def test_second_send_ignored_first_time_semantics(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        msg = SendMsg(SID, c, f.row_polynomial(2), 100)
        session.handle(1, msg, ctx)
        first = len(ctx.sent)
        session.handle(1, msg, ctx)
        assert len(ctx.sent) == first  # no double echo

    def test_wrong_row_polynomial_rejected(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        session.handle(1, SendMsg(SID, c, f.row_polynomial(3), 100), ctx)
        assert ctx.sent == []

    def test_commitment_mismatch_rejected_when_expected_pk_set(self) -> None:
        session, ctx = _session(me=2)
        session.expected_secret_commitment = G.commit(999)  # wrong value
        f, c = _dealing(secret=42)
        session.handle(1, SendMsg(SID, c, f.row_polynomial(2), 100), ctx)
        assert ctx.sent == []

    def test_poly_none_renewal_retransmission_is_inert(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        session.handle(1, SendMsg(SID, c, None, 100), ctx)
        assert ctx.sent == []
        # the real send may still arrive later and be processed
        session.handle(1, SendMsg(SID, c, f.row_polynomial(2), 100), ctx)
        assert len(ctx.sent_of_kind("vss.echo")) == 7


class TestUponEcho:
    def _feed_echoes(self, session, ctx, f, c, senders, me):
        for m in senders:
            session.handle(m, EchoMsg(SID, c, f.evaluate(m, me), 50), ctx)

    def test_echo_threshold_triggers_ready_with_interpolated_points(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        # ceil((7+2+1)/2) = 5 echoes needed
        self._feed_echoes(session, ctx, f, c, [1, 3, 4, 5], 2)
        assert ctx.sent_of_kind("vss.ready") == []
        self._feed_echoes(session, ctx, f, c, [6], 2)
        readies = ctx.sent_of_kind("vss.ready")
        assert len(readies) == 7
        for j, msg in readies:
            assert msg.point == f.evaluate(2, j)  # a(j) from interpolation

    def test_invalid_echo_point_not_counted(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        self._feed_echoes(session, ctx, f, c, [1, 3, 4, 5], 2)
        session.handle(6, EchoMsg(SID, c, 12345, 50), ctx)  # garbage point
        assert ctx.sent_of_kind("vss.ready") == []

    def test_duplicate_echo_from_same_sender_not_counted(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        self._feed_echoes(session, ctx, f, c, [1, 3, 4, 5], 2)
        self._feed_echoes(session, ctx, f, c, [5], 2)  # repeat
        assert ctx.sent_of_kind("vss.ready") == []

    def test_echoes_for_different_commitments_tracked_separately(self) -> None:
        session, ctx = _session(me=2)
        f1, c1 = _dealing(seed=1)
        f2, c2 = _dealing(seed=2)
        self._feed_echoes(session, ctx, f1, c1, [1, 3, 4], 2)
        self._feed_echoes(session, ctx, f2, c2, [5, 6], 2)
        assert ctx.sent_of_kind("vss.ready") == []  # neither reaches 5


class TestUponReady:
    def _ready(self, session, ctx, f, c, m, me):
        session.handle(m, ReadyMsg(SID, c, f.evaluate(m, me), None, 50), ctx)

    def test_t_plus_one_readies_amplify_without_echo_quorum(self) -> None:
        session, ctx = _session(me=2)
        f, c = _dealing()
        self._ready(session, ctx, f, c, 1, 2)
        self._ready(session, ctx, f, c, 3, 2)
        assert ctx.sent_of_kind("vss.ready") == []
        self._ready(session, ctx, f, c, 4, 2)  # t+1 = 3rd ready
        assert len(ctx.sent_of_kind("vss.ready")) == 7

    def test_output_at_n_minus_t_minus_f_readies(self) -> None:
        outputs = []
        session, ctx = _session(me=2, on_shared=outputs.append)
        f, c = _dealing(secret=42)
        for m in [1, 3, 4, 5, 6]:  # n-t-f = 5 readies
            self._ready(session, ctx, f, c, m, 2)
        assert len(outputs) == 1
        out = outputs[0]
        assert out.share == f.evaluate(2, 0)
        assert out.commitment == c
        assert session.completed is out

    def test_no_double_output(self) -> None:
        outputs = []
        session, ctx = _session(me=2, on_shared=outputs.append)
        f, c = _dealing()
        for m in [1, 3, 4, 5, 6, 7]:  # one beyond threshold
            self._ready(session, ctx, f, c, m, 2)
        assert len(outputs) == 1

    def test_share_lies_on_secret_polynomial(self) -> None:
        outputs = []
        session, ctx = _session(me=2, on_shared=outputs.append)
        f, c = _dealing(secret=1234)
        for m in [1, 3, 4, 5, 6]:
            self._ready(session, ctx, f, c, m, 2)
        assert c.verify_share(2, outputs[0].share)


class TestDealerClause:
    def test_start_dealing_sends_rows_to_everyone(self) -> None:
        session, ctx = _session(me=1)
        poly = session.start_dealing(42, ctx)
        sends = ctx.sent_of_kind("vss.send")
        assert len(sends) == 7
        assert poly.secret == 42
        assert poly.is_symmetric()
        for j, msg in sends:
            assert msg.poly.coeffs == poly.row_polynomial(j).coeffs
            assert msg.commitment.verify_poly(j, msg.poly)

    def test_non_dealer_cannot_deal(self) -> None:
        session, ctx = _session(me=2)
        with pytest.raises(RuntimeError, match="dealer"):
            session.start_dealing(42, ctx)

    def test_erase_dealt_polynomials(self) -> None:
        session, ctx = _session(me=1)
        session.start_dealing(42, ctx)
        session.erase_dealt_polynomials()
        ctx.clear()
        session.start_recovery(ctx)
        resent = ctx.sent_of_kind("vss.send")
        assert resent and all(msg.poly is None for _, msg in resent)


class TestHelpClause:
    def test_help_triggers_b_log_replay_within_budget(self) -> None:
        session, ctx = _session(me=1)
        session.start_dealing(42, ctx)
        ctx.clear()
        session.handle(3, HelpMsg(SID), ctx)
        # B_3 holds exactly the one send addressed to node 3
        assert len(ctx.sent) == 1
        assert ctx.sent[0][0] == 3

    def test_per_node_help_budget(self) -> None:
        cfg = VssConfig(n=7, t=2, f=0, group=G, d_budget=2)
        session = VssSession(cfg, 1, SID, on_shared=lambda o: None)
        ctx = StubContext(node_id=1)
        session.start_dealing(42, ctx)
        ctx.clear()
        for _ in range(5):
            session.handle(3, HelpMsg(SID), ctx)
        # only d(kappa) = 2 responses
        assert len(ctx.sent) == 2

    def test_total_help_budget(self) -> None:
        cfg = VssConfig(n=7, t=2, f=0, group=G, d_budget=1)
        session = VssSession(cfg, 1, SID, on_shared=lambda o: None)
        ctx = StubContext(node_id=1)
        session.start_dealing(42, ctx)
        ctx.clear()
        # total budget = (t+1) d = 3
        for sender in (2, 3, 4, 5, 6):
            session.handle(sender, HelpMsg(SID), ctx)
        assert len(ctx.sent) == 3


class TestRecClause:
    def _completed_session(self, me: int = 2, secret: int = 42):
        outputs = []
        session, ctx = _session(me=me, on_shared=outputs.append)
        f, c = _dealing(secret=secret, seed=9)
        for m in [1, 3, 4, 5, 6]:
            session.handle(m, ReadyMsg(SID, c, f.evaluate(m, me), None, 50), ctx)
        assert session.completed
        return session, ctx, f, c

    def test_reconstruct_before_completion_rejected(self) -> None:
        session, ctx = _session(me=2)
        with pytest.raises(RuntimeError, match="before Sh completes"):
            session.start_reconstruction(ctx)

    def test_rec_broadcasts_share_and_combines(self) -> None:
        session, ctx, f, c = self._completed_session()
        ctx.clear()
        session.start_reconstruction(ctx)
        assert len(ctx.sent_of_kind("vss.rec-share")) == 7
        # feed t+1 = 3 valid shares (own share message loops back too,
        # but feed explicit ones)
        done = []
        session.on_reconstructed = done.append
        for m in (1, 3, 4):
            session.handle(m, SharePointMsg(SID, f.evaluate(m, 0), 20), ctx)
        assert session.reconstructed is not None
        assert session.reconstructed.value == 42

    def test_rec_filters_bad_shares(self) -> None:
        session, ctx, f, c = self._completed_session()
        session.start_reconstruction(ctx)
        session.handle(1, SharePointMsg(SID, 999, 20), ctx)  # invalid
        for m in (3, 4):
            session.handle(m, SharePointMsg(SID, f.evaluate(m, 0), 20), ctx)
        assert session.reconstructed is None  # only 2 valid so far
        session.handle(5, SharePointMsg(SID, f.evaluate(5, 0), 20), ctx)
        assert session.reconstructed.value == 42
