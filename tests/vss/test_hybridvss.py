"""Integration tests for HybridVSS: the Definition 3.1 properties
(liveness, agreement, consistency, privacy, efficiency) under honest,
crashed and Byzantine conditions."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import Share, reconstruct_secret
from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.hashing import HashedMatrixCodec
from repro.sim.adversary import Adversary
from repro.sim.network import ConstantDelay, ExponentialDelay, UniformDelay
from repro.sim.node import Context, ProtocolNode
from repro.vss.config import VssConfig
from repro.vss.messages import SendMsg, SessionId
from repro.vss.node import VssNode, run_vss

from tests.helpers import default_test_group

G = default_test_group()


def _config(n: int = 7, t: int = 2, f: int = 0, **kw: Any) -> VssConfig:
    return VssConfig(n=n, t=t, f=f, group=G, **kw)


class TestLiveness:
    """Honest finally-up dealer => all honest finally-up nodes complete Sh."""

    @pytest.mark.parametrize("n,t,f", [(4, 1, 0), (7, 2, 0), (9, 2, 1), (10, 3, 0)])
    def test_all_nodes_complete_fault_free(self, n: int, t: int, f: int) -> None:
        res = run_vss(_config(n, t, f), secret=42, seed=1)
        assert res.completed_nodes == list(range(1, n + 1))

    def test_completes_under_heavy_tailed_delays(self) -> None:
        res = run_vss(
            _config(), secret=7, seed=3, delay_model=ExponentialDelay(mean=5.0)
        )
        assert len(res.completed_nodes) == 7

    def test_completes_with_f_crashed_nodes_forever(self) -> None:
        # f nodes crash permanently before the run; everyone else must
        # still finish (they are not "finally up", the rest are).
        cfg = _config(n=9, t=2, f=1)
        adv = Adversary.crash_only(t=2, f=1, crash_plan=[(0.0, 9, None)])
        res = run_vss(cfg, secret=5, seed=4, adversary=adv)
        assert res.completed_nodes == list(range(1, 9))

    def test_crashed_then_recovered_node_completes_via_help(self) -> None:
        cfg = _config(n=9, t=2, f=1)
        adv = Adversary.crash_only(t=2, f=1, crash_plan=[(0.1, 4, 50.0)])
        res = run_vss(cfg, secret=5, seed=5, adversary=adv)
        assert 4 in res.completed_nodes
        assert res.metrics.recoveries == 1
        # help traffic actually flowed
        assert res.metrics.messages_by_kind["vss.help"] > 0


class TestConsistency:
    """All completing nodes agree on C, and shares interpolate to s."""

    @given(st.integers(0, G.q - 1), st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_shares_interpolate_to_dealt_secret(self, secret: int, seed: int) -> None:
        res = run_vss(_config(), secret=secret, seed=seed)
        commitment = res.agreed_commitment()
        shares = [Share(i, out.share, commitment) for i, out in res.shares.items()]
        assert reconstruct_secret(shares, 2, G.q) == secret

    def test_every_share_verifies_against_commitment(self) -> None:
        res = run_vss(_config(), secret=99, seed=6)
        commitment = res.agreed_commitment()
        for i, out in res.shares.items():
            assert commitment.verify_share(i, out.share)

    def test_any_t_plus_one_subset_reconstructs_same_value(self) -> None:
        res = run_vss(_config(n=7, t=2), secret=1234, seed=7)
        commitment = res.agreed_commitment()
        items = sorted(res.shares.items())
        import itertools

        values = set()
        for combo in itertools.combinations(items, 3):
            shares = [Share(i, o.share, commitment) for i, o in combo]
            values.add(reconstruct_secret(shares, 2, G.q))
        assert values == {1234}

    def test_rec_protocol_agrees_everywhere(self) -> None:
        res = run_vss(_config(), secret=555, seed=8, reconstruct=True)
        assert set(res.reconstructions.values()) == {555}
        assert len(res.reconstructions) == 7


class TestEfficiency:
    """§3 Efficiency Discussion: O(n^2) messages, O(kappa n^4) bits."""

    def test_crash_free_message_count_is_quadratic(self) -> None:
        # send: n, echo: n^2, ready: n^2  => exactly n + 2n^2
        cfg = _config(n=7, t=2)
        res = run_vss(cfg, secret=1, seed=9)
        m = res.metrics
        assert m.messages_by_kind["vss.send"] == 7
        assert m.messages_by_kind["vss.echo"] == 49
        assert m.messages_by_kind["vss.ready"] == 49
        assert m.messages_total == 7 + 2 * 49

    def test_hashed_codec_reduces_bytes(self) -> None:
        full = run_vss(_config(n=7, t=2), secret=1, seed=10)
        hashed = run_vss(
            _config(n=7, t=2, codec=HashedMatrixCodec()), secret=1, seed=10
        )
        assert hashed.metrics.bytes_total < full.metrics.bytes_total
        # message counts are identical; only sizes change
        assert hashed.metrics.messages_total == full.metrics.messages_total

    def test_recovery_cost_bounded(self) -> None:
        # A single crash/recovery adds O(n) help messages and O(n^2)
        # retransmissions, not more.
        cfg = _config(n=9, t=2, f=1)
        baseline = run_vss(cfg, secret=1, seed=11)
        adv = Adversary.crash_only(t=2, f=1, crash_plan=[(0.1, 4, 30.0)])
        crashed = run_vss(cfg, secret=1, seed=11, adversary=adv)
        extra = crashed.metrics.messages_total - baseline.metrics.messages_total
        n = cfg.n
        # help broadcast (n) + B retransmissions bounded by a few n^2
        assert 0 < extra <= 4 * n * n


class TestPrivacy:
    """t shares reveal nothing: any t shares are consistent with any secret."""

    def test_t_shares_insufficient_to_reconstruct(self) -> None:
        from repro.crypto.shares import ReconstructionError

        res = run_vss(_config(n=7, t=2), secret=31337, seed=12)
        commitment = res.agreed_commitment()
        shares = [
            Share(i, res.shares[i].share, commitment) for i in (1, 2)
        ]  # only t = 2 shares
        with pytest.raises(ReconstructionError):
            reconstruct_secret(shares, 2, G.q)

    def test_t_shares_interpolate_to_wrong_value(self) -> None:
        # Naive interpolation from t points produces a value different
        # from the secret (generic case).
        from repro.crypto.polynomials import interpolate_at

        res = run_vss(_config(n=7, t=2), secret=31337, seed=13)
        pts = [(i, res.shares[i].share) for i in (1, 2)]
        assert interpolate_at(pts, 0, G.q) != 31337


@dataclass
class EquivocatingDealer(ProtocolNode):
    """A Byzantine dealer sending shares of *different* secrets to
    different halves of the network (the classic consistency attack)."""

    config: VssConfig = None  # type: ignore[assignment]
    session_id: SessionId = None  # type: ignore[assignment]

    def on_operator(self, payload: Any, ctx: Context) -> None:
        cfg = self.config
        rng = random.Random(1)
        f1 = BivariatePolynomial.random_symmetric(cfg.t, cfg.group.q, rng, secret=111)
        f2 = BivariatePolynomial.random_symmetric(cfg.t, cfg.group.q, rng, secret=222)
        c1 = FeldmanCommitment.commit(f1, cfg.group)
        c2 = FeldmanCommitment.commit(f2, cfg.group)
        size = 100
        for j in cfg.indices:
            poly, com = (f1, c1) if j <= cfg.n // 2 else (f2, c2)
            ctx.send(j, SendMsg(self.session_id, com, poly.row_polynomial(j), size))


@dataclass
class BadShareDealer(ProtocolNode):
    """A Byzantine dealer whose row polynomials do not match C."""

    config: VssConfig = None  # type: ignore[assignment]
    session_id: SessionId = None  # type: ignore[assignment]

    def on_operator(self, payload: Any, ctx: Context) -> None:
        cfg = self.config
        rng = random.Random(2)
        f = BivariatePolynomial.random_symmetric(cfg.t, cfg.group.q, rng, secret=9)
        commitment = FeldmanCommitment.commit(f, cfg.group)
        wrong = BivariatePolynomial.random_symmetric(cfg.t, cfg.group.q, rng)
        for j in cfg.indices:
            ctx.send(
                j, SendMsg(self.session_id, commitment, wrong.row_polynomial(j), 100)
            )


class TestByzantineDealer:
    def test_equivocating_dealer_cannot_split_the_network(self) -> None:
        # With two commitments each supported by only half the nodes,
        # neither reaches the echo quorum ceil((n+t+1)/2): nobody
        # completes with inconsistent values.
        cfg = _config(n=7, t=2)
        adv = Adversary.corrupting(t=2, f=0, byzantine={1})
        res = run_vss(
            cfg,
            secret=0,
            seed=14,
            adversary=adv,
            node_factory={1: EquivocatingDealer(1, cfg, SessionId(1, 0))},
        )
        commitments = {out.commitment for out in res.shares.values()}
        assert len(commitments) <= 1  # consistency never violated

    def test_invalid_row_polynomials_are_rejected(self) -> None:
        cfg = _config(n=7, t=2)
        adv = Adversary.corrupting(t=2, f=0, byzantine={1})
        res = run_vss(
            cfg,
            secret=0,
            seed=15,
            adversary=adv,
            node_factory={1: BadShareDealer(1, cfg, SessionId(1, 0))},
        )
        # verify-poly fails everywhere: no echoes, no completion.
        assert res.completed_nodes == []
        assert res.metrics.messages_by_kind["vss.echo"] == 0


@dataclass
class LyingEchoNode(VssNode):
    """An otherwise-honest node that corrupts the points in its echoes."""

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        if isinstance(payload, SendMsg) and payload.poly is not None:
            from repro.vss.messages import EchoMsg

            commitment = payload.commitment
            for j in self.config.indices:
                bad_point = (payload.poly(j) + 1) % self.config.group.q
                ctx.send(j, EchoMsg(self.session_id, commitment, bad_point, 100))
            return
        super().on_message(sender, payload, ctx)


class TestByzantineParticipant:
    def test_bad_echo_points_filtered_by_verify_point(self) -> None:
        cfg = _config(n=7, t=2)
        adv = Adversary.corrupting(t=2, f=0, byzantine={3})
        res = run_vss(
            cfg,
            secret=808,
            seed=16,
            adversary=adv,
            node_factory={3: LyingEchoNode(3, cfg, SessionId(1, 0))},
        )
        # Everyone else still completes with the correct secret.
        completed = [i for i in res.completed_nodes if i != 3]
        assert len(completed) >= cfg.n - 1
        commitment = res.agreed_commitment()
        shares = [Share(i, res.shares[i].share, commitment) for i in completed]
        assert reconstruct_secret(shares, 2, G.q) == 808

    def test_silent_byzantine_minority_does_not_block(self) -> None:
        @dataclass
        class SilentNode(ProtocolNode):
            def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
                pass

        cfg = _config(n=7, t=2)
        adv = Adversary.corrupting(t=2, f=0, byzantine={6, 7})
        res = run_vss(
            cfg,
            secret=21,
            seed=17,
            adversary=adv,
            node_factory={6: SilentNode(6), 7: SilentNode(7)},
        )
        assert set(res.completed_nodes) >= {1, 2, 3, 4, 5}


class TestDeterminism:
    def test_same_seed_reproduces_metrics_exactly(self) -> None:
        a = run_vss(_config(), secret=1, seed=99)
        b = run_vss(_config(), secret=1, seed=99)
        assert a.metrics.summary() == b.metrics.summary()
        assert {i: o.share for i, o in a.shares.items()} == {
            i: o.share for i, o in b.shares.items()
        }

    def test_different_delay_models_same_shares(self) -> None:
        # Scheduling affects timing/coordination, never the secret: the
        # dealt polynomial depends only on the dealer's RNG.
        a = run_vss(_config(), secret=1, seed=50, delay_model=ConstantDelay(1.0))
        b = run_vss(_config(), secret=1, seed=50, delay_model=UniformDelay(0.1, 9.0))
        assert a.agreed_commitment() == b.agreed_commitment()
