"""Unit tests for extended-HybridVSS (§4): signed ready messages and
the R_d certificate sets the DKG leader builds proposals from."""

from __future__ import annotations

import random

import pytest

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.hashing import commitment_digest
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.vss.config import VssConfig
from repro.vss.messages import ReadyMsg, SessionId, ready_signing_bytes
from repro.vss.session import VssSession

from tests.helpers import StubContext, default_test_group

G = default_test_group()
CFG = VssConfig(n=7, t=2, f=0, group=G)
SID = SessionId(1, 0)


@pytest.fixture()
def world():
    rng = random.Random(13)
    ca = CertificateAuthority(G)
    stores = {i: KeyStore.enroll(i, ca, rng) for i in range(1, 8)}
    return ca, stores, rng


def _extended_session(ca, stores, me=2, outputs=None):
    outputs = outputs if outputs is not None else []
    session = VssSession(
        CFG, me, SID,
        on_shared=outputs.append,
        keystore=stores[me], ca=ca, sign_ready=True,
    )
    return session, outputs, StubContext(node_id=me, n_nodes=7)


def _dealing(secret=42, seed=0):
    f = BivariatePolynomial.random_symmetric(
        CFG.t, G.q, random.Random(seed), secret=secret
    )
    return f, FeldmanCommitment.commit(f, G)


def _signed_ready(stores, rng, sender, me, f, c):
    payload = ready_signing_bytes(SID, commitment_digest(c))
    sig = stores[sender].sign(payload, rng)
    return ReadyMsg(SID, c, f.evaluate(sender, me), sig, 50)


class TestExtendedMode:
    def test_requires_keystore_and_ca(self) -> None:
        with pytest.raises(ValueError, match="keystore"):
            VssSession(CFG, 2, SID, on_shared=lambda o: None, sign_ready=True)

    def test_own_readies_are_signed(self, world) -> None:
        ca, stores, rng = world
        session, _, ctx = _extended_session(ca, stores)
        f, c = _dealing()
        # drive to the ready-amplification branch via t+1 signed readies
        for sender in (1, 3, 4):
            session.handle(sender, _signed_ready(stores, rng, sender, 2, f, c), ctx)
        readies = ctx.sent_of_kind("vss.ready")
        assert len(readies) == 7
        payload = ready_signing_bytes(SID, commitment_digest(c))
        for _, msg in readies:
            assert msg.signature is not None
            assert ca.verify(2, payload, msg.signature)

    def test_unsigned_readies_not_counted(self, world) -> None:
        ca, stores, rng = world
        session, outputs, ctx = _extended_session(ca, stores)
        f, c = _dealing()
        for sender in (1, 3, 4, 5, 6):
            msg = ReadyMsg(SID, c, f.evaluate(sender, 2), None, 50)
            session.handle(sender, msg, ctx)
        assert outputs == []  # nothing counted without signatures

    def test_wrong_key_signature_rejected(self, world) -> None:
        ca, stores, rng = world
        session, outputs, ctx = _extended_session(ca, stores)
        f, c = _dealing()
        payload = ready_signing_bytes(SID, commitment_digest(c))
        for sender in (1, 3, 4, 5, 6):
            sig = stores[7].sign(payload, rng)  # always node 7's key
            msg = ReadyMsg(SID, c, f.evaluate(sender, 2), sig, 50)
            session.handle(sender, msg, ctx)
        assert outputs == []

    def test_output_carries_n_t_f_witnesses(self, world) -> None:
        ca, stores, rng = world
        session, outputs, ctx = _extended_session(ca, stores)
        f, c = _dealing(secret=9)
        for sender in (1, 3, 4, 5, 6):  # n - t - f = 5
            session.handle(sender, _signed_ready(stores, rng, sender, 2, f, c), ctx)
        assert len(outputs) == 1
        proof = outputs[0].ready_proof
        assert len(proof) == 5
        payload = ready_signing_bytes(SID, commitment_digest(c))
        assert {w.signer for w in proof} == {1, 3, 4, 5, 6}
        for witness in proof:
            assert ca.verify(witness.signer, payload, witness.signature)

    def test_witnesses_feed_valid_r_certificates(self, world) -> None:
        # The end-to-end contract: a SharedOutput's proof set passes the
        # DKG's ReadyCert verification.
        from repro.dkg.messages import ReadyCert
        from repro.dkg.proofs import verify_ready_cert

        ca, stores, rng = world
        session, outputs, ctx = _extended_session(ca, stores)
        f, c = _dealing()
        for sender in (1, 3, 4, 5, 6):
            session.handle(sender, _signed_ready(stores, rng, sender, 2, f, c), ctx)
        out = outputs[0]
        cert = ReadyCert(1, commitment_digest(out.commitment), out.ready_proof)
        assert verify_ready_cert(CFG, ca, 0, cert)

    def test_ready_size_includes_signature(self, world) -> None:
        ca, stores, rng = world
        session, _, ctx = _extended_session(ca, stores)
        plain = VssSession(CFG, 3, SID, on_shared=lambda o: None)
        _, c = _dealing()
        assert session._ready_size(c) == plain._ready_size(c) + 2 * G.scalar_bytes
