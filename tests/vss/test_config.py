"""Tests for the resilience arithmetic of §2.2 encoded in VssConfig."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vss.config import ResilienceError, VssConfig


class TestResilienceBound:
    @pytest.mark.parametrize(
        "n,t,f",
        [(4, 1, 0), (7, 2, 0), (10, 3, 0), (6, 1, 1), (9, 2, 1), (11, 2, 2)],
    )
    def test_valid_configs(self, n: int, t: int, f: int) -> None:
        cfg = VssConfig(n=n, t=t, f=f)
        assert cfg.satisfies_resilience()

    @pytest.mark.parametrize("n,t,f", [(3, 1, 0), (6, 2, 0), (5, 1, 1), (2, 0, 1)])
    def test_sub_resilient_configs_rejected(self, n: int, t: int, f: int) -> None:
        with pytest.raises(ResilienceError):
            VssConfig(n=n, t=t, f=f)

    def test_enforcement_can_be_disabled_for_experiments(self) -> None:
        cfg = VssConfig(n=3, t=1, f=0, enforce_resilience=False)
        assert not cfg.satisfies_resilience()

    def test_negative_parameters_rejected(self) -> None:
        with pytest.raises(ValueError):
            VssConfig(n=4, t=-1)
        with pytest.raises(ValueError):
            VssConfig(n=0, t=0)

    def test_f_zero_reduces_to_3t_plus_1(self) -> None:
        # §2.2: "for f = 0, 3t + 1 nodes are required"
        VssConfig(n=7, t=2, f=0)
        with pytest.raises(ResilienceError):
            VssConfig(n=6, t=2, f=0)

    def test_t_zero_requires_2f_plus_1(self) -> None:
        # §2.2: "for t = 0, 2f + 1 nodes are mandatory"
        VssConfig(n=5, t=0, f=2)
        with pytest.raises(ResilienceError):
            VssConfig(n=4, t=0, f=2)


class TestThresholds:
    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=6),
    )
    def test_threshold_formulas(self, t: int, f: int, slack: int) -> None:
        n = 3 * t + 2 * f + 1 + slack
        cfg = VssConfig(n=n, t=t, f=f)
        assert cfg.echo_threshold == math.ceil((n + t + 1) / 2)
        assert cfg.ready_threshold == t + 1
        assert cfg.output_threshold == n - t - f

    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=6),
    )
    def test_echo_threshold_guarantees_intersection(
        self, t: int, f: int, slack: int
    ) -> None:
        # Two echo quorums intersect in at least t+1 nodes, hence in one
        # honest node — the agreement backbone of Bracha broadcast.
        n = 3 * t + 2 * f + 1 + slack
        cfg = VssConfig(n=n, t=t, f=f)
        quorum = cfg.echo_threshold
        assert 2 * quorum - n >= t + 1

    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3),
    )
    def test_output_threshold_reachable_with_faults(self, t: int, f: int) -> None:
        # Even with t Byzantine silent and f crashed, the remaining
        # honest nodes can reach the output threshold.
        n = 3 * t + 2 * f + 1
        cfg = VssConfig(n=n, t=t, f=f)
        honest_up = n - t - f
        assert honest_up >= cfg.output_threshold

    def test_help_budgets(self) -> None:
        cfg = VssConfig(n=7, t=2, f=0, d_budget=4)
        assert cfg.help_per_node_budget == 4
        assert cfg.help_total_budget == 12

    def test_indices_exclude_zero(self) -> None:
        cfg = VssConfig(n=4, t=1)
        assert cfg.indices == [1, 2, 3, 4]
