"""Tests for VSS message types, sizes and session identifiers."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.vss.messages import (

    EchoMsg,
    HelpMsg,
    ReadyMsg,
    SendMsg,
    SessionId,
    SharePointMsg,
    ready_signing_bytes,
)

from tests.helpers import default_test_group

G = default_test_group()


def _commitment(seed: int = 0) -> FeldmanCommitment:
    f = BivariatePolynomial.random_symmetric(2, G.q, random.Random(seed))
    return FeldmanCommitment.commit(f, G)


class TestSessionId:
    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_bytes_unique_per_session(self, dealer: int, tau: int) -> None:
        a = SessionId(dealer, tau)
        b = SessionId(dealer, tau + 1)
        c = SessionId(dealer + 1, tau)
        assert a.as_bytes() != b.as_bytes()
        assert a.as_bytes() != c.as_bytes()

    def test_hashable_and_equal(self) -> None:
        assert SessionId(1, 2) == SessionId(1, 2)
        assert len({SessionId(1, 2), SessionId(1, 2), SessionId(2, 1)}) == 2

    def test_str(self) -> None:
        assert str(SessionId(3, 7)) == "(P3,7)"


class TestMessageSizes:
    def test_sizes_are_what_the_sender_stamped(self) -> None:
        c = _commitment()
        sid = SessionId(1, 0)
        assert SendMsg(sid, c, None, size=123).byte_size() == 123
        assert EchoMsg(sid, c, 5, size=77).byte_size() == 77
        assert ReadyMsg(sid, c, 5, None, size=88).byte_size() == 88
        assert SharePointMsg(sid, 5, size=20).byte_size() == 20

    def test_size_not_part_of_equality(self) -> None:
        # Retransmitted messages compare equal regardless of the size
        # stamp, which keeps dedup by value semantics.
        c = _commitment()
        sid = SessionId(1, 0)
        assert EchoMsg(sid, c, 5, size=10) == EchoMsg(sid, c, 5, size=99)

    def test_help_msg_size_is_true_frame_length(self) -> None:
        from repro.net import wire

        msg = HelpMsg(SessionId(1, 0))
        assert msg.byte_size() == len(wire.encode(msg)) == 16


class TestReadySigningBytes:
    def test_domain_separation(self) -> None:
        sid = SessionId(1, 0)
        assert ready_signing_bytes(sid, b"x" * 32) != ready_signing_bytes(
            SessionId(1, 1), b"x" * 32
        )
        assert ready_signing_bytes(sid, b"x" * 32) != ready_signing_bytes(
            sid, b"y" * 32
        )

    def test_deterministic(self) -> None:
        sid = SessionId(4, 9)
        assert ready_signing_bytes(sid, b"d" * 32) == ready_signing_bytes(
            sid, b"d" * 32
        )
