"""End-to-end runs on realistic-size group parameters.

Most tests use the 64-bit toy group so protocol logic dominates; these
confirm nothing about the stack silently depends on small parameters.
Kept small (n=4) because 1024-bit exponentiations are ~100x slower.
"""

from __future__ import annotations

import random


from repro.crypto import Share, reconstruct_secret
from repro.crypto.groups import RFC5114_1024_160, medium_group
from repro.dkg import DkgConfig, run_dkg
from repro.vss import VssConfig, run_vss


class TestRfcGroupVss:
    def test_vss_roundtrip_on_rfc5114(self) -> None:
        group = RFC5114_1024_160
        cfg = VssConfig(n=4, t=1, group=group)
        secret = 0xDEADBEEFCAFE % group.q
        res = run_vss(cfg, secret=secret, seed=1)
        assert res.completed_nodes == [1, 2, 3, 4]
        commitment = res.agreed_commitment()
        shares = [Share(i, out.share, commitment) for i, out in res.shares.items()]
        assert reconstruct_secret(shares, 1, group.q) == secret


class TestMediumGroupDkg:
    def test_dkg_on_256_bit_q(self) -> None:
        group = medium_group()
        cfg = DkgConfig(n=4, t=1, group=group)
        res = run_dkg(cfg, seed=2)
        assert res.succeeded
        assert res.public_key == group.commit(res.expected_secret())

    def test_threshold_app_on_medium_group(self) -> None:
        from repro.apps import threshold_elgamal as eg

        group = medium_group()
        res = run_dkg(DkgConfig(n=4, t=1, group=group), seed=3)
        rng = random.Random(3)
        message = group.commit(777)
        ct = eg.encrypt(group, res.public_key, message, rng)
        partials = [
            eg.partial_decrypt(group, ct, i, res.shares[i], rng) for i in (1, 3)
        ]
        assert eg.combine(group, ct, res.commitment, partials, t=1) == message
