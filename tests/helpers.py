"""Test helpers: the backend-aware default group and a stub Context for
driving protocol state machines message-by-message, mirroring the
pseudocode's `upon` clauses without a full simulation."""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.groups import group_by_name, toy_group

TEST_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "modp")
if TEST_BACKEND not in ("modp", "secp256k1"):
    raise RuntimeError(
        f"REPRO_TEST_BACKEND={TEST_BACKEND!r} (want 'modp' or 'secp256k1')"
    )


def default_test_group():
    """The group protocol tests run over, honouring the CI backend
    matrix: the 64-bit-q toy modp group by default, secp256k1 when
    ``REPRO_TEST_BACKEND=secp256k1``."""
    if TEST_BACKEND == "secp256k1":
        return group_by_name("secp256k1")
    return toy_group()


@dataclass
class StubContext:
    """Captures a node's effects instead of scheduling them."""

    node_id: int = 1
    now: float = 0.0
    n_nodes: int = 7
    sent: list[tuple[int, Any]] = field(default_factory=list)
    outputs: list[Any] = field(default_factory=list)
    timers: list[tuple[int, float, Any]] = field(default_factory=list)
    cancelled: list[int] = field(default_factory=list)
    leader_changes: int = 0
    _timer_counter: int = 0
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    @property
    def all_nodes(self) -> list[int]:
        return list(range(1, self.n_nodes + 1))

    def send(self, recipient: int, payload: Any) -> None:
        self.sent.append((recipient, payload))

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        for j in self.all_nodes:
            if j == self.node_id and not include_self:
                continue
            self.send(j, payload)

    def set_timer(self, delay: float, tag: Any) -> int:
        self._timer_counter += 1
        self.timers.append((self._timer_counter, delay, tag))
        return self._timer_counter

    def cancel_timer(self, timer_id: int) -> None:
        self.cancelled.append(timer_id)

    def output(self, payload: Any) -> None:
        self.outputs.append(payload)

    def record_leader_change(self) -> None:
        self.leader_changes += 1

    # -- assertion sugar -------------------------------------------------------

    def sent_of_kind(self, kind: str) -> list[tuple[int, Any]]:
        return [
            (r, p) for r, p in self.sent if getattr(p, "kind", None) == kind
        ]

    def clear(self) -> None:
        self.sent.clear()
        self.outputs.clear()
