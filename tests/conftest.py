"""Shared fixtures: a cached toy group and deterministic RNGs."""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups import SchnorrGroup, small_group, toy_group


@pytest.fixture(scope="session")
def group() -> SchnorrGroup:
    """The default 64-bit-q toy group (fast, protocol logic dominates)."""
    return toy_group()


@pytest.fixture(scope="session")
def group160() -> SchnorrGroup:
    """A DSA-shaped 160-bit-q group for crypto-layer tests."""
    return small_group()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
