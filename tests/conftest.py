"""Shared fixtures: the protocol-default group and deterministic RNGs.

``REPRO_TEST_BACKEND`` selects the group backend the suite-wide
``group`` fixture hands to protocol tests:

* ``modp`` (default) — the 64-bit-q toy Schnorr group, where protocol
  logic rather than bignum arithmetic dominates the runtime;
* ``secp256k1`` — the elliptic-curve backend, running every
  fixture-driven protocol test over real curve arithmetic (the CI
  backend-matrix lane).
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups import SchnorrGroup, small_group

from tests.helpers import TEST_BACKEND, default_test_group


@pytest.fixture(scope="session")
def backend() -> str:
    """The backend name the suite is running under."""
    return TEST_BACKEND


@pytest.fixture(scope="session")
def group():
    """The protocol-default group for the selected backend."""
    return default_test_group()


@pytest.fixture(scope="session")
def group160() -> SchnorrGroup:
    """A DSA-shaped 160-bit-q modp group for modp-specific crypto tests."""
    return small_group()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
