"""Cross-driver equivalence: sim and asyncio runs of one seeded DKG.

Protocols are sans-I/O machines, so the execution backend must not be
able to change a run's *result*: the same seeded DKG, configured so
its output is delivery-order independent (``q_size = n`` — every node
waits for all n sharings, making Q the full dealer set), must produce
identical Output effects — and identical transcript hashes over their
canonical wire encoding — under the discrete-event simulator and the
real-socket asyncio driver, on both group backends.
"""

from __future__ import annotations

import pytest

from repro.crypto import parallel
from repro.crypto.groups import group_by_name, toy_group
from repro.net.cluster import run_local_cluster
from repro.runtime.trace import transcript_hash
from repro.sim.clock import TimeoutPolicy
from repro.sim.network import ConstantDelay
from repro.dkg import DkgConfig, run_dkg

SEED = 5


def _config(group) -> DkgConfig:
    return DkgConfig(
        n=4,
        t=1,
        group=group,
        # Q = the full dealer set: the leader proposes only once every
        # sharing completed, so the decided set (and with it every
        # output field) is independent of message arrival order.
        q_size=4,
        # No view changes: socket jitter must not race a timeout.
        timeout=TimeoutPolicy(initial=1_000_000.0),
    )


@pytest.mark.parametrize(
    "group",
    [toy_group(), group_by_name("secp256k1")],
    ids=["modp", "secp256k1"],
)
def test_same_seeded_dkg_same_outputs_on_both_drivers(group) -> None:
    config = _config(group)

    sim_result = run_dkg(config, seed=SEED, delay_model=ConstantDelay(1.0))
    assert sim_result.succeeded
    sim_outputs = {
        i: node.completed for i, node in sim_result.nodes.items()
    }

    net_result = run_local_cluster(
        config, seed=SEED, time_scale=0.005, timeout=120.0
    )
    assert net_result.succeeded, net_result.errors

    # Identical Output effects, node by node.
    assert set(net_result.completions) == set(sim_outputs)
    for i, completed in sim_outputs.items():
        assert net_result.completions[i] == completed, f"node {i} diverged"

    # Identical canonical transcripts.
    sim_hash = transcript_hash(
        ((i, out) for i, out in sim_outputs.items()), group=group
    )
    net_hash = transcript_hash(
        ((i, out) for i, out in net_result.completions.items()), group=group
    )
    assert sim_hash == net_hash

    # And the digest is instance-sensitive: a different protocol
    # instance (tau seeds the dealing randomness) differs.
    other = run_dkg(config, seed=SEED, tau=1, delay_model=ConstantDelay(1.0))
    other_hash = transcript_hash(
        ((i, node.completed) for i, node in other.nodes.items()), group=group
    )
    assert other_hash != sim_hash


@pytest.mark.parametrize(
    "group",
    [toy_group(), group_by_name("secp256k1")],
    ids=["modp", "secp256k1"],
)
def test_crypto_pool_leaves_transcript_unchanged(group) -> None:
    """The ``--cores 2`` determinism guarantee: a process-pool executor
    with thresholds forced low enough that a 4-node run actually fans
    out must reproduce the serial run's transcript hash bit-for-bit."""
    config = _config(group)

    serial = run_dkg(config, seed=SEED, delay_model=ConstantDelay(1.0))
    assert serial.succeeded
    serial_hash = transcript_hash(
        ((i, node.completed) for i, node in serial.nodes.items()), group=group
    )

    with parallel.CryptoExecutor(cores=2, min_claims=2, min_terms=2) as executor:
        with parallel.executor_scope(executor):
            pooled = run_dkg(config, seed=SEED, delay_model=ConstantDelay(1.0))
    assert pooled.succeeded
    assert not executor._broken
    pooled_hash = transcript_hash(
        ((i, node.completed) for i, node in pooled.nodes.items()), group=group
    )
    assert pooled_hash == serial_hash
