"""The sans-I/O machine interface: step(event, env) -> [Effect]."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

import pytest

from repro.runtime import (
    Broadcast,
    CancelTimer,
    Crashed,
    Env,
    Machine,
    MessageReceived,
    OperatorInput,
    Output,
    Recovered,
    Send,
    SetTimer,
    TimerFired,
)
from repro.runtime.core import EffectRecorder
from repro.sim.node import ProtocolNode, RecordingNode


def env(node_id: int = 1, now: float = 0.0, members=(1, 2, 3)) -> Env:
    return Env(
        now=now,
        rng=random.Random(0),
        node_id=node_id,
        members=tuple(members),
    )


@dataclass
class EchoNode(ProtocolNode):
    """Replies to every message, arms a timer on operator input."""

    def on_message(self, sender: int, payload: Any, ctx) -> None:
        ctx.send(sender, payload)
        ctx.output(("saw", payload))

    def on_operator(self, payload: Any, ctx) -> None:
        timer = ctx.set_timer(5.0, "tick")
        if payload == "cancel":
            ctx.cancel_timer(timer)

    def on_timer(self, tag: Any, ctx) -> None:
        ctx.broadcast(tag, include_self=False)


class TestProtocolNodeStep:
    def test_protocol_node_is_a_machine(self) -> None:
        assert isinstance(ProtocolNode(1), Machine)
        assert isinstance(RecordingNode(1), Machine)

    def test_every_protocol_family_speaks_step(self) -> None:
        # VSS, DKG, proactive renewal, groupmod agreement/addition and
        # the baselines are all ported to the uniform interface.
        from repro.baselines.bracha import BrachaNode
        from repro.groupmod.addition import JoiningNode
        from repro.groupmod.agreement import GroupModAgreementNode
        from repro.proactive.renewal import RenewalNode
        from repro.vss.node import VssNode
        from repro.dkg.node import DkgNode

        for node_type in (
            VssNode,
            DkgNode,
            RenewalNode,
            GroupModAgreementNode,
            JoiningNode,
            BrachaNode,
        ):
            assert issubclass(node_type, ProtocolNode), node_type
            assert node_type.step is ProtocolNode.step, node_type

    def test_message_event_returns_effects(self) -> None:
        effects = EchoNode(1).step(MessageReceived(2, "hello"), env())
        assert effects == [Send(2, "hello"), Output(("saw", "hello"))]

    def test_effects_are_values_not_actions(self) -> None:
        # Stepping records; nothing is delivered anywhere.
        node = EchoNode(1)
        first = node.step(MessageReceived(2, "x"), env())
        second = node.step(MessageReceived(3, "y"), env())
        assert first == [Send(2, "x"), Output(("saw", "x"))]
        assert second == [Send(3, "y"), Output(("saw", "y"))]

    def test_timer_ids_are_machine_local_and_stable(self) -> None:
        node = EchoNode(1)
        [set_timer] = node.step(OperatorInput("start"), env())
        assert set_timer == SetTimer(5.0, "tick", 1)
        effects = node.step(OperatorInput("cancel"), env())
        assert effects == [SetTimer(5.0, "tick", 2), CancelTimer(2)]

    def test_timer_event_dispatches_to_on_timer(self) -> None:
        effects = EchoNode(1).step(TimerFired("tick", 1), env())
        assert effects == [Broadcast("tick", include_self=False)]

    def test_crash_and_recover_events(self) -> None:
        node = RecordingNode(1)
        assert node.step(Crashed(), env()) == []
        assert node.step(Recovered(), env(now=4.0)) == []
        assert node.recovered_at == [4.0]

    def test_unknown_event_rejected(self) -> None:
        with pytest.raises(TypeError):
            ProtocolNode(1).step("not-an-event", env())

    def test_env_is_visible_through_recorder(self) -> None:
        seen = {}

        @dataclass
        class Probe(ProtocolNode):
            def on_operator(self, payload, ctx) -> None:
                seen.update(
                    now=ctx.now, n=ctx.n, all_nodes=ctx.all_nodes,
                    node_id=ctx.node_id,
                )

        Probe(2).step(OperatorInput(None), env(node_id=2, now=7.5))
        assert seen == {
            "now": 7.5, "n": 3, "all_nodes": [1, 2, 3], "node_id": 2,
        }


class TestEffectRecorder:
    def test_broadcast_is_an_effect_value(self) -> None:
        recorder = EffectRecorder(env())
        recorder.broadcast("payload")
        assert recorder.effects == [Broadcast("payload", True)]

    def test_timer_id_continuity_across_recorders(self) -> None:
        recorder = EffectRecorder(env(), next_timer_id=41)
        assert recorder.set_timer(1.0, "a") == 41
        assert recorder.set_timer(1.0, "b") == 42
        assert recorder.next_timer_id == 43
