"""ProtocolRuntime: session routing, timers, envelopes, multiplexed DKGs."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

import pytest

from repro.crypto.groups import toy_group
from repro.runtime import (
    Broadcast,
    CancelTimer,
    Env,
    MessageReceived,
    OperatorInput,
    Output,
    ProtocolRuntime,
    Send,
    SessionEnvelope,
    SetTimer,
    TimerFired,
)
from repro.runtime.runtime import UnknownSession
from repro.runtime.sessions import DkgSessionSpec, run_dkg_sessions
from repro.sim.node import ProtocolNode, RecordingNode
from repro.dkg import DkgConfig


def env(node_id: int = 1) -> Env:
    return Env(now=0.0, rng=random.Random(0), node_id=node_id, members=(1, 2))


@dataclass
class Chatty(ProtocolNode):
    """Sends, outputs, arms a timer — everything a session can do."""

    heard: list = field(default_factory=list)

    def on_message(self, sender: int, payload: Any, ctx) -> None:
        self.heard.append(payload)
        ctx.send(sender, ("ack", payload))

    def on_operator(self, payload: Any, ctx) -> None:
        self._timer = ctx.set_timer(3.0, "poll")
        ctx.broadcast(("announce", payload))
        ctx.output(("started", payload))

    def on_timer(self, tag: Any, ctx) -> None:
        self.heard.append(("timer", tag))
        ctx.cancel_timer(self._timer)


class TestRouting:
    def test_enveloped_message_routes_to_session(self) -> None:
        runtime = ProtocolRuntime(1)
        a, b = Chatty(1), Chatty(1)
        runtime.open_session("a", a)
        runtime.open_session("b", b)
        effects = runtime.step(
            MessageReceived(2, SessionEnvelope("b", "ping")), env()
        )
        assert b.heard == ["ping"] and a.heard == []
        # The reply leaves wrapped in the same session's envelope.
        assert effects == [Send(2, SessionEnvelope("b", ("ack", "ping")))]

    def test_unenveloped_message_routes_to_default_session(self) -> None:
        runtime = ProtocolRuntime(1)
        a = Chatty(1)
        runtime.open_session("main", a)
        runtime.step(MessageReceived(2, "legacy"), env())
        assert a.heard == ["legacy"]

    def test_unknown_session_dropped_and_counted(self) -> None:
        runtime = ProtocolRuntime(1)
        runtime.open_session("only", Chatty(1))
        out = runtime.step(
            MessageReceived(2, SessionEnvelope("ghost", "x")), env()
        )
        assert out == [] and runtime.dropped == 1

    def test_strict_mode_raises_on_unknown_session(self) -> None:
        runtime = ProtocolRuntime(1, strict=True)
        with pytest.raises(UnknownSession):
            runtime.step(MessageReceived(2, SessionEnvelope("ghost", "x")), env())

    def test_operator_input_routes_by_envelope(self) -> None:
        runtime = ProtocolRuntime(1)
        a, b = Chatty(1), Chatty(1)
        runtime.open_session("a", a)
        runtime.open_session("b", b)
        effects = runtime.step(
            OperatorInput(SessionEnvelope("b", "go")), env()
        )
        assert Output(("started", "go")) in effects
        assert runtime.outputs_of("b") == [("started", "go")]
        assert runtime.outputs_of("a") == []

    def test_broadcasts_are_enveloped(self) -> None:
        runtime = ProtocolRuntime(1)
        runtime.open_session("s", Chatty(1))
        effects = runtime.step(OperatorInput(SessionEnvelope("s", "x")), env())
        broadcasts = [e for e in effects if isinstance(e, Broadcast)]
        assert broadcasts == [
            Broadcast(SessionEnvelope("s", ("announce", "x")), True)
        ]

    def test_reopened_session_id_starts_clean(self) -> None:
        # Neither the dead instance's outputs nor its pending timers
        # may leak into a session reopened under the same id.
        runtime = ProtocolRuntime(1)
        runtime.open_session("s", Chatty(1))
        effects = runtime.step(OperatorInput(SessionEnvelope("s", "x")), env())
        timer = next(e for e in effects if isinstance(e, SetTimer))
        assert runtime.outputs_of("s") == [("started", "x")]
        runtime.close_session("s")
        fresh = Chatty(1)
        runtime.open_session("s", fresh)
        assert runtime.outputs_of("s") == []
        assert runtime.step(TimerFired(timer.tag, timer.timer_id), env()) == []
        assert fresh.heard == []

    def test_close_session_stops_routing(self) -> None:
        runtime = ProtocolRuntime(1)
        a = Chatty(1)
        runtime.open_session("a", a)
        runtime.close_session("a")
        assert runtime.step(
            MessageReceived(2, SessionEnvelope("a", "late")), env()
        ) == []
        assert a.heard == []


class TestTimers:
    def test_session_timers_are_namespaced(self) -> None:
        runtime = ProtocolRuntime(1)
        a, b = Chatty(1), Chatty(1)
        runtime.open_session("a", a)
        runtime.open_session("b", b)
        fx_a = runtime.step(OperatorInput(SessionEnvelope("a", 1)), env())
        fx_b = runtime.step(OperatorInput(SessionEnvelope("b", 2)), env())
        timer_a = next(e for e in fx_a if isinstance(e, SetTimer))
        timer_b = next(e for e in fx_b if isinstance(e, SetTimer))
        # Both sessions chose machine-local id 1; the runtime's ids differ.
        assert timer_a.timer_id != timer_b.timer_id
        assert timer_a.tag == ("a", "poll")
        # Firing the runtime-level timer reaches only the owning session,
        # and its cancel effect translates back to the runtime id.
        effects = runtime.step(TimerFired(timer_b.tag, timer_b.timer_id), env())
        assert b.heard == [("timer", "poll")] and a.heard == []
        assert effects == []  # cancelling an already-fired timer is dropped

    def test_cancel_translates_to_runtime_id(self) -> None:
        runtime = ProtocolRuntime(1)

        @dataclass
        class Canceller(ProtocolNode):
            def on_operator(self, payload: Any, ctx) -> None:
                timer = ctx.set_timer(9.0, "t")
                ctx.cancel_timer(timer)

        runtime.open_session("c", Canceller(1))
        effects = runtime.step(OperatorInput(SessionEnvelope("c", None)), env())
        set_timer = next(e for e in effects if isinstance(e, SetTimer))
        assert CancelTimer(set_timer.timer_id) in effects

    def test_stale_timer_for_closed_session_is_dropped(self) -> None:
        runtime = ProtocolRuntime(1)
        runtime.open_session("s", Chatty(1))
        effects = runtime.step(OperatorInput(SessionEnvelope("s", "x")), env())
        timer = next(e for e in effects if isinstance(e, SetTimer))
        runtime.close_session("s")
        assert runtime.step(TimerFired(timer.tag, timer.timer_id), env()) == []


class TestSpawn:
    def test_spawn_session_effect_opens_sibling(self) -> None:
        @dataclass
        class Spawner(ProtocolNode):
            def on_operator(self, payload: Any, ctx) -> None:
                ctx.spawn_session("child", RecordingNode(self.node_id))

        runtime = ProtocolRuntime(1)
        runtime.open_session("parent", Spawner(1))
        effects = runtime.step(
            OperatorInput(SessionEnvelope("parent", None)), env()
        )
        assert effects == []  # handled internally, nothing escapes
        assert "child" in runtime.sessions
        runtime.step(MessageReceived(2, SessionEnvelope("child", "hi")), env())
        assert runtime.sessions["child"].received[0][1:] == (2, "hi")


class TestConcurrentDkgSessions:
    def test_four_concurrent_dkgs_over_one_endpoint_set(self) -> None:
        """The acceptance bar: >= 4 concurrent DKG sessions multiplexed
        over one runtime endpoint per node, all completing and
        producing independent keys."""
        config = DkgConfig(n=4, t=1, group=toy_group())
        specs = [
            DkgSessionSpec(f"dkg-{k}", config, tau=k) for k in range(4)
        ]
        results = run_dkg_sessions(specs, seed=3)
        assert len(results) == 4
        for result in results.values():
            assert result.succeeded, result.spec.session
        keys = {r.public_key for r in results.values()}
        assert len(keys) == 4  # sessions are cryptographically independent

    def test_sessions_with_distinct_member_subsets(self) -> None:
        group = toy_group()
        full = DkgConfig(n=5, t=1, group=group)
        subset = DkgConfig(
            n=4, t=1, group=group, members=(1, 2, 4, 5),
            initial_leader=2, enforce_resilience=False,
        )
        results = run_dkg_sessions(
            [
                DkgSessionSpec("all", full, tau=0),
                DkgSessionSpec("subset", subset, tau=1),
            ],
            seed=9,
        )
        assert results["all"].succeeded
        assert results["subset"].succeeded
        assert sorted(results["subset"].completions) == [1, 2, 4, 5]

    def test_duplicate_session_ids_rejected(self) -> None:
        config = DkgConfig(n=4, t=1, group=toy_group())
        with pytest.raises(ValueError):
            run_dkg_sessions(
                [DkgSessionSpec("x", config), DkgSessionSpec("x", config)]
            )
