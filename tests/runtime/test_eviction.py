"""Completion-driven session eviction in ProtocolRuntime.

A long-lived endpoint (proactive renewal, the presignature forge) opens
sessions forever; without eviction every finished DKG's machine, timer
mappings and routing entry accumulate for the life of the process.
With ``evict_completed=True`` a session is dropped the moment its
machine reports a non-None ``completed`` — but its recorded outputs
must survive, because results are read after the run.
"""

from __future__ import annotations

from repro.dkg import DkgConfig
from repro.runtime.core import Env
from repro.runtime.effects import Output, SetTimer
from repro.runtime.events import MessageReceived, OperatorInput
from repro.runtime.runtime import ProtocolRuntime
from repro.runtime.sessions import DkgSessionSpec, run_dkg_sessions
from repro.sim.network import ConstantDelay


class _Done:
    """Output payload with a wire-style kind tag."""

    kind = "test.done"


class _OneShot:
    """Completes (and outputs) on its first event; arms a timer first."""

    def __init__(self, node_id: int = 1):
        self.node_id = node_id
        self.completed = None

    def step(self, event, env: Env):
        if isinstance(event, OperatorInput):
            # First poke: arm a timer that must be purged at eviction.
            return [SetTimer(10.0, "cleanup", env.new_timer_id())]
        self.completed = env.now()
        return [Output(_Done())]


class _EnvStub:
    def __init__(self):
        self._ids = iter(range(1, 100))

    def now(self) -> float:
        return 1.0

    def new_timer_id(self) -> int:
        return next(self._ids)


class TestEviction:
    def _runtime_with_finished_session(self) -> ProtocolRuntime:
        runtime = ProtocolRuntime(1, evict_completed=True)
        runtime.open_session("job", _OneShot())
        env = _EnvStub()
        runtime.step(OperatorInput(object()), env)  # arms the timer
        assert runtime._timers  # the session holds live timer state
        runtime.step(MessageReceived(2, object()), env)  # completes
        return runtime

    def test_completed_session_is_dropped(self) -> None:
        runtime = self._runtime_with_finished_session()
        assert "job" not in runtime.sessions
        assert runtime.sessions_completed == 1

    def test_outputs_survive_eviction(self) -> None:
        runtime = self._runtime_with_finished_session()
        outputs = runtime.outputs_of("job")
        assert len(outputs) == 1
        assert outputs[0].kind == "test.done"

    def test_timers_purged_at_eviction(self) -> None:
        runtime = self._runtime_with_finished_session()
        assert runtime._timers == {}
        assert runtime._by_inner == {}

    def test_default_session_reassigned(self) -> None:
        runtime = ProtocolRuntime(1, evict_completed=True)
        runtime.open_session("job", _OneShot())
        runtime.open_session("survivor", _OneShot())
        assert runtime.default_session == "job"
        env = _EnvStub()
        runtime.step(
            MessageReceived(2, object()), env
        )  # default routes to "job"; completes and evicts it
        assert runtime.default_session == "survivor"

    def test_disabled_by_default(self) -> None:
        runtime = ProtocolRuntime(1)
        runtime.open_session("job", _OneShot())
        runtime.step(MessageReceived(2, object()), _EnvStub())
        assert "job" in runtime.sessions
        assert runtime.sessions_completed == 0


class TestMultiplexedDkgStillCompletes:
    def test_run_dkg_sessions_evicts_but_returns_results(self) -> None:
        # The presignature forge path: concurrent nonce DKGs over one
        # endpoint set, evicted as they finish, results swept afterwards.
        specs = [
            DkgSessionSpec(
                session=f"nonce-{k}", config=DkgConfig(n=4, t=1), tau=k
            )
            for k in range(2)
        ]
        results = run_dkg_sessions(
            specs, seed=11, delay_model=ConstantDelay(0.0)
        )
        for spec in specs:
            assert results[spec.session].succeeded
