"""Tests for latency statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.latency import (
    LatencySummary,
    completion_latencies,
    percentile,
    summarize,
)

from tests.helpers import default_test_group


class TestPercentile:
    def test_known_values(self) -> None:
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0
        assert percentile(values, 0.25) == 2.0

    def test_interpolation(self) -> None:
        assert percentile([0.0, 10.0], 0.5) == 5.0
        assert percentile([0.0, 10.0], 0.9) == 9.0

    def test_single_value(self) -> None:
        assert percentile([7.0], 0.3) == 7.0

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    @settings(max_examples=50)
    def test_bounds(self, values: list[float]) -> None:
        ordered = sorted(values)
        for fraction in (0.0, 0.25, 0.5, 0.9, 1.0):
            p = percentile(ordered, fraction)
            assert ordered[0] <= p <= ordered[-1]


class TestSummarize:
    def test_summary_fields(self) -> None:
        summary = summarize([3.0, 1.0, 2.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5
        assert summary.mean == 2.5

    def test_empty_rejected(self) -> None:
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row(self) -> None:
        row = summarize([1.0]).as_row()
        assert row == (1, 1.0, 1.0, 1.0, 1.0, 1.0)


class TestCompletionLatencies:
    def test_extracts_from_real_run(self) -> None:
        from repro.dkg import DkgConfig, run_dkg

        res = run_dkg(DkgConfig(n=4, t=1, group=default_test_group()), seed=1)
        times = completion_latencies(res.simulation, "dkg.out.completed")
        assert len(times) == 4
        summary = summarize(times)
        # median node finishes no later than the straggler — the §2.1
        # "fast quorums finish early" shape.
        assert summary.median <= summary.maximum
        assert summary.maximum == res.last_completion_time
