"""Tests for the analytic complexity model and shape-fitting helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import complexity as cx

from tests.helpers import default_test_group



class TestClosedForms:
    def test_vss_exact_count_matches_simulation(self) -> None:
        # Cross-validate the closed form against an actual run.
        from repro.vss import VssConfig, run_vss

        res = run_vss(VssConfig(n=7, t=2, group=default_test_group()), secret=1, seed=0)
        assert res.metrics.messages_total == cx.vss_messages_crash_free(7)

    def test_dkg_exact_count_matches_simulation(self) -> None:
        from repro.dkg import DkgConfig, run_dkg

        res = run_dkg(DkgConfig(n=7, t=2, group=default_test_group()), seed=0)
        assert res.metrics.messages_total == cx.dkg_messages_optimistic(7)

    def test_hashed_codec_bound_below_full(self) -> None:
        for n in (7, 13, 19):
            t = (n - 1) // 3
            assert cx.vss_bytes_crash_free_hashed(n, t, 16) < (
                cx.vss_bytes_crash_free_full(n, t, 16)
            )

    @given(st.integers(0, 10), st.integers(0, 10))
    def test_resilience_bound(self, t: int, f: int) -> None:
        assert cx.resilience_bound(t, f) == 3 * t + 2 * f + 1

    def test_worst_case_dominates_optimistic(self) -> None:
        for n in (7, 10, 31):
            assert cx.dkg_messages_worst_case(n, 2, 5) >= (
                cx.dkg_messages_optimistic_bound(n, 2, 5)
            )


class TestFitExponent:
    def test_quadratic_series(self) -> None:
        ns = [4, 8, 16, 32]
        ys = [n * n for n in ns]
        assert cx.fit_exponent(ns, ys) == pytest.approx(2.0)

    def test_cubic_series(self) -> None:
        ns = [4, 8, 16, 32]
        ys = [n**3 for n in ns]
        assert cx.fit_exponent(ns, ys) == pytest.approx(3.0)

    def test_mixed_series_between_orders(self) -> None:
        ns = [4, 8, 16, 32]
        ys = [n * n + 100 * n for n in ns]
        e = cx.fit_exponent(ns, ys)
        assert 1.0 < e < 2.0

    def test_rejects_degenerate_input(self) -> None:
        with pytest.raises(ValueError):
            cx.fit_exponent([4], [16])
        with pytest.raises(ValueError):
            cx.fit_exponent([4, 4], [16, 16])


class TestTableHelpers:
    def test_ratio_table(self) -> None:
        rows = cx.ratio_table([4, 8], [16.0, 64.0], [16.0, 64.0])
        assert rows == [(4, 16.0, 16.0, 1.0), (8, 64.0, 64.0, 1.0)]

    def test_render_table(self, capsys) -> None:
        from repro.analysis import Table

        table = Table("demo", ["n", "messages"])
        table.add(7, 105)
        table.add(13, 351)
        text = table.render()
        captured = capsys.readouterr().out
        assert "demo" in captured
        assert "105" in text

    def test_row_width_validation(self) -> None:
        from repro.analysis import Table

        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)
