"""The documentation tree stays true.

Two freshness gates, mirrored in the CI ``docs`` job so drift fails
locally before it fails a pull request:

* ``docs/cli.md`` must match what ``repro.tools.gendocs`` renders from
  the live argparse tree — a CLI change without a regeneration is a
  stale reference;
* every repo-relative link and ``#anchor`` in README.md and
  ``docs/*.md`` must resolve.
"""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

from repro.tools import gendocs

REPO = pathlib.Path(__file__).parent.parent.parent
CHECK_LINKS = REPO / ".github" / "scripts" / "check_links.py"


class TestGeneratedCliReference:
    def test_cli_md_is_current(self) -> None:
        on_disk = (REPO / "docs" / "cli.md").read_text(encoding="utf-8")
        assert on_disk == gendocs.render(), (
            "docs/cli.md is stale — regenerate with "
            "`python -m repro.tools.gendocs`"
        )

    def test_render_covers_every_subcommand(self) -> None:
        rendered = gendocs.render()
        assert rendered.startswith(gendocs.HEADER)
        import argparse

        from repro.cli import build_parser

        subparsers = next(
            action
            for action in build_parser()._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        for name in subparsers.choices:
            assert f"## `repro {name}`" in rendered, name

    def test_check_mode_passes_on_current_tree(self, capsys) -> None:
        assert gendocs.main(["--check"]) == 0

    def test_check_mode_fails_on_stale_copy(self, tmp_path, capsys) -> None:
        stale = tmp_path / "cli.md"
        stale.write_text(gendocs.HEADER + "\n\nnothing else\n")
        assert gendocs.main(["--check", "--out", str(stale)]) == 1
        assert "stale" in capsys.readouterr().err


class TestDocLinks:
    def _run_checker(self, root: pathlib.Path) -> int:
        argv = sys.argv
        sys.argv = [str(CHECK_LINKS), str(root)]
        try:
            runpy.run_path(str(CHECK_LINKS), run_name="__main__")
        except SystemExit as exit_:
            return int(exit_.code or 0)
        finally:
            sys.argv = argv
        raise AssertionError("checker did not exit")

    def test_repo_docs_have_no_broken_links(self, capsys) -> None:
        assert self._run_checker(REPO) == 0, capsys.readouterr().err

    def test_checker_catches_breakage(self, tmp_path, capsys) -> None:
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "a.md").write_text("# Only heading\n")
        (tmp_path / "README.md").write_text(
            "[gone](docs/missing.md) [bad](docs/a.md#nope) "
            "[ok](docs/a.md#only-heading)\n"
        )
        assert self._run_checker(tmp_path) == 1
        err = capsys.readouterr().err
        assert "missing file" in err and "missing anchor" in err
        assert "only-heading" not in err

    def test_every_docs_page_is_linked_from_readme(self) -> None:
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for page in sorted((REPO / "docs").glob("*.md")):
            assert f"docs/{page.name}" in readme, (
                f"docs/{page.name} is orphaned — link it from README.md"
            )


@pytest.mark.parametrize(
    "claim, anchor",
    [
        ("tests/service/test_shard_ring.py", "routing stability golden vector"),
        ("tests/runtime/test_driver_equivalence.py", "driver equivalence"),
        ("tests/obs/test_replay.py", "capture = execution"),
    ],
)
def test_protocol_doc_anchors_exist(claim: str, anchor: str) -> None:
    """protocols.md cites test files as anchors; they must exist."""
    assert (REPO / claim).exists(), f"{anchor} anchor moved: {claim}"
