"""Property tests for the schedule mutators.

The three contracts the fuzzer's soundness rests on:

* determinism — the same ``(capture, seed)`` produces a byte-identical
  mutated schedule, across independent runner instances;
* causality — no reordering ever moves a receive before the step that
  emitted it (checked wholesale over many seeds, not just per-swap);
* budgets — crash / taint / drop never exceed what the ``(t, f)``
  parameters allow, so a liveness violation is never self-inflicted.
"""

from __future__ import annotations

from repro.fuzz.mutators import MutationBudget, ScheduleMutator, apply_plan
from repro.fuzz.runner import FuzzRunner
from repro.fuzz.schedule import (
    can_swap,
    emits,
    generate_capture,
    is_message,
    message_kind,
)

SEEDS = range(24)


def test_plan_and_mutant_deterministic_per_seed(base_schedule):
    """Same (capture, seed) => identical plan and byte-identical mutant."""
    first = FuzzRunner(base_schedule.copy(), max_ops=6)
    second = FuzzRunner(base_schedule.copy(), max_ops=6)
    assert first.base_digest == second.base_digest
    for seed in SEEDS:
        plan_a = first.plan_for_seed(seed)
        plan_b = second.plan_for_seed(seed)
        assert plan_a == plan_b
        mutant_a, _ = apply_plan(first.base, plan_a)
        mutant_b, _ = apply_plan(second.base, plan_b)
        assert mutant_a.canonical_bytes() == mutant_b.canonical_bytes()


def test_distinct_seeds_give_distinct_plans(base_schedule):
    runner = FuzzRunner(base_schedule.copy(), max_ops=6)
    plans = {repr(runner.plan_for_seed(seed)) for seed in SEEDS}
    assert len(plans) > len(SEEDS) // 2


def test_capture_generation_is_reproducible(group, base_schedule):
    """The digest the seed RNG keys on must be regenerable anywhere."""
    from repro.fuzz.schedule import Schedule

    again = Schedule.from_capture(
        generate_capture("dkg", n=4, t=1, f=0, seed=0, group=group)
    )
    assert again.digest() == base_schedule.digest()


def _assert_causal_delivery(schedule):
    """Every message receive sits after some emitter of its kind from
    its claimed sender (when the schedule contains such an emitter)."""
    records = schedule.records
    for index, record in enumerate(records):
        if not is_message(record):
            continue
        kind = message_kind(record)
        sender = (record.get("data") or {}).get("sender")
        session = record.get("session")
        if kind is None or sender is None:
            continue
        emitter_indices = [
            i
            for i, r in enumerate(records)
            if r.get("node") == sender
            and r.get("session") == session
            and emits(r, kind)
        ]
        if emitter_indices:
            assert min(emitter_indices) < index, (
                f"receive {record.get('_fid')} of {kind} from {sender} "
                f"at {index} precedes every emitter {emitter_indices}"
            )


def test_reordering_preserves_causal_delivery(base_schedule):
    """Structure-preserving ops (everything except payload mutation,
    which relabels senders) never move a receive before its cause."""
    runner = FuzzRunner(base_schedule.copy(), max_ops=8)
    _assert_causal_delivery(runner.base)
    checked = 0
    for seed in SEEDS:
        plan = [
            op for op in runner.plan_for_seed(seed) if op["op"] != "mutate"
        ]
        mutated, _report = apply_plan(runner.base, plan)
        _assert_causal_delivery(mutated)
        checked += len(plan)
    assert checked > 20


def test_budgets_respected(base_schedule):
    budget = MutationBudget(t=1, f=1)
    mutator = ScheduleMutator(base_schedule, budget)
    runner = FuzzRunner(base_schedule.copy(), max_ops=10, budget=budget)
    for seed in SEEDS:
        plan = mutator.plan(runner.seed_rng(seed), 10)
        _mutated, report = apply_plan(base_schedule, plan, budget)
        assert len(report.crashed) <= budget.crash_nodes
        assert len(report.tainted) <= budget.t
        drops = [op for op in report.applied if op["op"] == "drop"]
        assert len(drops) <= budget.f


def test_drop_planner_disabled_at_f_zero(base_schedule):
    mutator = ScheduleMutator(base_schedule, MutationBudget(t=1, f=0))
    runner = FuzzRunner(base_schedule.copy())
    for seed in SEEDS:
        for op in mutator.plan(runner.seed_rng(seed), 10):
            assert op["op"] != "drop"


def test_can_swap_rules(base_schedule):
    spans = base_schedule.spans
    meta_record = {"record": "open"}
    assert not can_swap(meta_record, spans[0])
    same_node = [s for s in spans if s["node"] == spans[0]["node"]]
    assert not can_swap(same_node[0], same_node[1])
    # A receive must not swap ahead of the step that emitted its kind.
    for index, record in enumerate(base_schedule.records):
        if not is_message(record):
            continue
        kind = message_kind(record)
        sender = (record.get("data") or {}).get("sender")
        for earlier in base_schedule.records[:index]:
            if (
                earlier.get("node") == sender
                and earlier.get("session") == record.get("session")
                and emits(earlier, kind)
            ):
                assert not can_swap(earlier, record)
                return
    raise AssertionError("no emitter/receive pair found in base capture")


def test_applied_ops_are_fully_parameterized(base_schedule):
    """Plans must be self-contained JSON — re-applying them cannot
    consult the RNG, or reproducers would not reproduce."""
    import json

    runner = FuzzRunner(base_schedule.copy(), max_ops=8)
    for seed in SEEDS:
        plan = runner.plan_for_seed(seed)
        assert json.loads(json.dumps(plan)) == plan
        for op in plan:
            assert isinstance(op.get("op"), str)
