"""The fuzz loop end-to-end: honest runs stay clean, planted faults
are caught, shrinking is monotone, reproducers replay to the verdict."""

from __future__ import annotations

import json

import pytest

from repro.fuzz.runner import FuzzRunner
from repro.fuzz.schedule import load_schedule
from repro.obs.replay import replay_file


def test_unmutated_schedule_has_no_violations(schedule):
    runner = FuzzRunner(schedule)
    violations, report = runner.execute_plan([])
    assert violations == []
    assert report.applied == []


def test_small_campaign_is_clean_and_deterministic(schedule):
    runner = FuzzRunner(schedule, max_ops=5)
    report = runner.run(8, self_check=False)
    assert report.ok
    assert report.seeds == 8
    assert report.mutations > 0
    again = FuzzRunner(schedule.copy(), max_ops=5).run(8, self_check=False)
    assert again.base_digest == report.base_digest
    assert again.mutations == report.mutations


def test_report_round_trips_through_json(schedule):
    report = FuzzRunner(schedule, max_ops=4).run(3, self_check=False)
    decoded = json.loads(json.dumps(report.as_dict()))
    assert decoded["ok"] is True
    assert decoded["seeds"] == 3
    assert decoded["protocol"] == "dkg"


def test_planted_corruption_is_caught_and_shrunk(schedule):
    """Shrinking is monotone: the minimized plan still fails with the
    same violation kind, and nothing smaller does."""
    runner = FuzzRunner(schedule, max_ops=6)
    node = min(r["node"] for r in runner.base.spans)
    noise = [
        op
        for op in runner.plan_for_seed(0)
        if op["op"] in ("move", "dup")
    ]
    plan = noise + [{"op": "corrupt-output", "node": node}]
    violations, _report = runner.execute_plan(plan)
    kinds = {v.kind for v in violations}
    assert "share-consistency" in kinds

    shrunk = runner.shrink(plan, violations)
    assert len(shrunk) <= len(plan)
    shrunk_violations, _report = runner.execute_plan(shrunk)
    assert kinds & {v.kind for v in shrunk_violations}
    assert shrunk == [{"op": "corrupt-output", "node": node}]


def test_reproducer_round_trip(schedule, tmp_path):
    runner = FuzzRunner(schedule, reproducer_dir=tmp_path)
    node = min(r["node"] for r in runner.base.spans)
    plan = [{"op": "corrupt-output", "node": node}]
    violations, _report = runner.execute_plan(plan)
    path = runner.emit_reproducer(7, plan, violations)

    loaded = load_schedule(path)
    fuzz = loaded.meta["fuzz"]
    assert fuzz["seed"] == 7
    assert fuzz["base_digest"] == runner.base_digest
    verdict = FuzzRunner(loaded).reproduce(loaded)
    assert verdict["matched"]
    assert "share-consistency" in verdict["found_kinds"]

    # The reproducer's records are the *unmutated* base, so the stock
    # replayer verifies the pristine transcript bit-identically.
    result = replay_file(str(path))
    assert result.matched


def test_reproduce_rejects_plain_captures(schedule):
    runner = FuzzRunner(schedule)
    with pytest.raises(ValueError, match="fuzz block"):
        runner.reproduce(schedule)


def test_self_check_passes_on_healthy_pipeline(schedule, tmp_path):
    runner = FuzzRunner(schedule, reproducer_dir=tmp_path)
    verdict = runner.run_self_check()
    assert verdict["ok"], verdict
    assert verdict["minimal"]
    assert verdict["reproduced"]
    assert verdict["shrunk_ops"] == 1


def test_fuzz_metrics_registered(schedule):
    from repro.obs import metrics as obs_metrics

    scoped = obs_metrics.MetricsRegistry()
    previous = obs_metrics.set_registry(scoped)
    try:
        FuzzRunner(schedule, max_ops=4).run(2, self_check=False)
        families = scoped.snapshot()
    finally:
        obs_metrics.set_registry(previous)
    assert "repro_fuzz_seeds_total" in families
    assert "repro_fuzz_mutations_total" in families
    seeds = families["repro_fuzz_seeds_total"]["samples"]
    assert seeds == [{"labels": {"protocol": "dkg"}, "value": 2}]
