"""The seed corpus: pinned mutation plans with pinned verdicts.

Each ``corpus/*.json`` entry records how to *regenerate* its base
capture (protocol + parameters, not raw frames — frames are backend
specific, the sim's event ordering is not) plus a literal mutation
plan and the violation kinds it must produce.  The suite replays every
entry under the active ``REPRO_TEST_BACKEND`` group, so a mutator or
invariant-checker change that flips any historical verdict fails
tier-1 on both lanes.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.fuzz.runner import FuzzRunner
from repro.fuzz.schedule import Schedule, generate_capture

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))

_BASE_CACHE: dict[tuple, Schedule] = {}


def _base_schedule(entry: dict, group) -> Schedule:
    params = entry["params"]
    key = (entry["protocol"], tuple(sorted(params.items())))
    if key not in _BASE_CACHE:
        _BASE_CACHE[key] = Schedule.from_capture(
            generate_capture(entry["protocol"], group=group, **params)
        )
    return _BASE_CACHE[key].copy()


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 5


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[p.stem for p in ENTRIES]
)
def test_corpus_entry_verdict(path, group):
    entry = json.loads(path.read_text())
    runner = FuzzRunner(_base_schedule(entry, group))
    violations, report = runner.execute_plan(entry["plan"])
    kinds = sorted({v.kind for v in violations})
    assert kinds == entry["expect"], (
        f"{path.stem}: expected {entry['expect']}, got {kinds} "
        f"(applied={len(report.applied)}, skipped={len(report.skipped)})"
    )


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[p.stem for p in ENTRIES]
)
def test_corpus_entry_shape(path):
    """Entries are self-contained: regeneration params, literal plan,
    expected kinds — everything a failure needs to reproduce."""
    entry = json.loads(path.read_text())
    assert set(entry) >= {"name", "protocol", "params", "plan", "expect"}
    assert entry["name"] == path.stem
    assert {"n", "t", "f", "seed"} <= set(entry["params"])
    assert isinstance(entry["plan"], list) and entry["plan"]
    for op in entry["plan"]:
        assert isinstance(op.get("op"), str)
    assert entry["expect"] == sorted(entry["expect"])
