"""Shared base schedules for the fuzzer tests.

Generating a capture runs a full DKG, which is the expensive part on
the secp256k1 lane — so the base schedule is session-scoped and every
test works on copies.  The sim transport is used throughout: its event
ordering is a pure function of ``(params, seed)``, identical across
group backends, which is what makes pinned corpus plans portable.
"""

from __future__ import annotations

import pytest

from repro.fuzz.schedule import Schedule, generate_capture


@pytest.fixture(scope="session")
def base_schedule(group) -> Schedule:
    """One honest n=4, t=1 DKG capture for the active backend."""
    capture = generate_capture("dkg", n=4, t=1, f=0, seed=0, group=group)
    return Schedule.from_capture(capture)


@pytest.fixture
def schedule(base_schedule) -> Schedule:
    return base_schedule.copy()
