"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script: pathlib.Path) -> None:
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout  # examples narrate what they do


def test_examples_present() -> None:
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "threshold_wallet", "randomness_beacon",
            "resilient_cluster"} <= names
