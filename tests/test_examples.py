"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))

# The examples import repro from the src/ layout; make that work even
# when pytest itself found the package via the pyproject pythonpath
# setting rather than an exported PYTHONPATH.
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(REPO / "src")]
    + ([_ENV["PYTHONPATH"]] if _ENV.get("PYTHONPATH") else [])
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script: pathlib.Path) -> None:
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_ENV,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout  # examples narrate what they do


def test_examples_present() -> None:
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "threshold_wallet", "randomness_beacon",
            "resilient_cluster"} <= names
