"""Consistent-hash ring properties: balance, minimal movement, and the
pinned golden vector that keeps routing stable across releases."""

import pytest

from repro.service.shard.ring import DEFAULT_VNODES, HashRing, key_point

# Routing is a persistence contract: a key's owning shard determines
# where its committee (and share) lives, so the mapping must never
# silently reshuffle between releases.  Generated from the
# implementation once, then frozen — a failure here means the ring
# function changed, which is a breaking change to every deployment.
GOLDEN_VECTOR = [
    (b"user-0", "shard-3"),
    (b"user-1", "shard-1"),
    (b"user-2", "shard-0"),
    (b"user-3", "shard-1"),
    (b"user-4", "shard-2"),
    (b"user-5", "shard-1"),
    (b"user-6", "shard-0"),
    (b"user-7", "shard-1"),
    (b"user-8", "shard-2"),
    (b"user-9", "shard-1"),
    (b"user-10", "shard-0"),
    (b"user-11", "shard-3"),
    (b"user-12", "shard-0"),
    (b"user-13", "shard-1"),
    (b"user-14", "shard-0"),
    (b"user-15", "shard-1"),
]

GOLDEN_KEY_POINT = (b"user-0", 5506206504861864138)


def _ring(shards=4, **kwargs):
    ring = HashRing(**kwargs)
    for index in range(shards):
        ring.add(f"shard-{index}")
    return ring


def _keys(count):
    return [f"k{i}".encode() for i in range(count)]


def test_pinned_golden_vector():
    ring = _ring(4)
    for key_id, expected in GOLDEN_VECTOR:
        assert ring.route(key_id) == expected, key_id


def test_pinned_key_point():
    key_id, expected = GOLDEN_KEY_POINT
    assert key_point(key_id) == expected


def test_deterministic_across_instances_and_insert_order():
    forward = HashRing()
    backward = HashRing()
    for sid in ("a", "b", "c"):
        forward.add(sid)
    for sid in ("c", "b", "a"):
        backward.add(sid)
    keys = _keys(256)
    assert [forward.route(k) for k in keys] == [backward.route(k) for k in keys]


def test_balance_within_bounds():
    ring = _ring(4)
    spread = ring.spread(_keys(4096))
    fair = 4096 / 4
    for shard, count in spread.items():
        assert 0.5 * fair <= count <= 1.6 * fair, (shard, count)


def test_minimal_movement_on_add():
    before = _ring(4)
    keys = _keys(2048)
    owners = {k: before.route(k) for k in keys}
    before.add("shard-4")
    moved = sum(1 for k in keys if before.route(k) != owners[k])
    # Adding one of five shards should move about 1/5 of the keys; a
    # naive mod-N rehash would move ~4/5.
    assert moved <= 0.35 * len(keys), moved
    # Every moved key moved *to the new shard*, never between old ones.
    for k in keys:
        after = before.route(k)
        assert after == owners[k] or after == "shard-4"


def test_minimal_movement_on_remove():
    ring = _ring(4)
    keys = _keys(2048)
    owners = {k: ring.route(k) for k in keys}
    ring.remove("shard-2")
    for k in keys:
        after = ring.route(k)
        assert after != "shard-2"
        if owners[k] != "shard-2":
            # Keys not owned by the removed shard do not move at all.
            assert after == owners[k], k


def test_remove_then_readd_restores_routing():
    ring = _ring(4)
    keys = _keys(512)
    owners = [ring.route(k) for k in keys]
    ring.remove("shard-1")
    ring.add("shard-1")
    assert [ring.route(k) for k in keys] == owners


def test_version_counter_and_describe():
    ring = HashRing(vnodes=8)
    assert ring.version == 0
    ring.add("a")
    ring.add("b")
    ring.remove("a")
    assert ring.version == 3
    assert ring.describe() == {"vnodes": 8, "version": 3, "shards": ["b"]}
    assert "b" in ring and "a" not in ring
    assert len(ring) == 1


def test_membership_errors():
    ring = HashRing()
    with pytest.raises(KeyError):
        ring.route(b"anything")
    with pytest.raises(ValueError):
        ring.add("")
    ring.add("a")
    with pytest.raises(ValueError):
        ring.add("a")
    with pytest.raises(KeyError):
        ring.remove("missing")
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


def test_default_vnodes():
    assert _ring(1).vnodes == DEFAULT_VNODES
