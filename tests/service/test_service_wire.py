"""Wire-level tests for the service frames (codec versions 2/3/5).

Mirrors the :mod:`tests.net.test_wire` acceptance bar for the new
kinds: every service message round-trips, truncated/garbled frames are
rejected with :class:`~repro.net.wire.WireError`, and the version
gating holds — v1 frames still decode for the protocol kinds but are
rejected for service kinds, which did not exist in v1.
"""

from __future__ import annotations

import pytest

from repro.net import wire
from repro.service.protocol import (
    ERR_BUSY,
    ERROR_NAMES,
    BeaconGetRequest,
    BeaconNextRequest,
    BeaconResponse,
    DecryptRequest,
    DecryptResponse,
    DprfEvalRequest,
    DprfResponse,
    ErrorResponse,
    OpsRequest,
    OpsResponse,
    SignRequest,
    SignResponse,
    StatusRequest,
    StatusResponse,
)
from repro.vss.messages import HelpMsg, SessionId

MESSAGES = [
    SignRequest(1, b""),
    SignRequest(2**64 - 1, b"x" * 300),
    SignResponse(1, 0, 0, False),
    SignResponse(2, 10**30, 10**30, True),
    BeaconNextRequest(3),
    BeaconGetRequest(4, 2**63),
    BeaconResponse(4, 0, b"\x00" * 32, 1),
    DprfEvalRequest(5, b"lottery|2026"),
    DprfResponse(5, b"\xff" * 64),
    DecryptRequest(6, 2, b"\x80" * 48),
    DecryptResponse(6, b""),
    StatusRequest(7),
    StatusResponse(7, 7, 2, 7, 0, 0, 0, 0, 0, 123456, "rfc5114-1024-160"),
    ErrorResponse(8, ERR_BUSY, "service saturated"),
    ErrorResponse(9, ERR_BUSY, ""),
    OpsRequest(10),
    OpsResponse(10, b'{"schema":1,"status":{"n":7},"metrics":{}}'),
    OpsResponse(11, b""),
]

_IDS = [f"{type(m).__name__}-{i}" for i, m in enumerate(MESSAGES)]


class TestServiceRoundTrip:
    @pytest.mark.parametrize("message", MESSAGES, ids=_IDS)
    def test_decode_encode_identity(self, message) -> None:
        assert wire.decode(wire.encode(message)) == message

    def test_frames_carry_minimum_codec_version(self) -> None:
        # Unchanged service kinds stay at their v2 introduction stamp;
        # STATUS responses changed layout in v3 (name precedes key).
        # (v4 added only new kinds — envelope and groupmod frames;
        # v5 likewise the OPS observability frames, v6 the shard
        # router frames.)
        assert wire.VERSION == 6
        assert wire.encode(SignRequest(1, b"m"))[6] == 2
        status = StatusResponse(7, 7, 2, 7, 0, 0, 0, 0, 0, 1, "toy-0")
        assert wire.encode(status)[6] == 3

    def test_ops_frames_stamped_v5(self) -> None:
        assert wire.encode(OpsRequest(1))[6] == 5
        assert wire.encode(OpsResponse(1, b"{}"))[6] == 5

    def test_service_kinds_start_at_boundary(self) -> None:
        service_types = {type(m) for m in MESSAGES}
        for kind, (typ, _, _) in wire._CODECS.items():
            if typ in service_types:
                assert kind >= wire.SERVICE_KIND_MIN


class TestVersionGating:
    def test_service_frame_claiming_v1_rejected(self) -> None:
        frame = bytearray(wire.encode(StatusRequest(1)))
        frame[6] = 1
        with pytest.raises(wire.WireError, match="version"):
            wire.decode(bytes(frame))

    def test_legacy_kinds_stay_byte_identical_to_v1(self) -> None:
        # Rolling upgrades: protocol frames from an upgraded node must
        # still be accepted by a v1 peer, so they are stamped v1.
        message = HelpMsg(SessionId(1, 2))
        frame = wire.encode(message)
        assert frame[6] == 1
        assert wire.decode(frame) == message

    def test_unknown_version_still_rejected(self) -> None:
        frame = bytearray(wire.encode(StatusRequest(1)))
        frame[6] = wire.VERSION + 1
        with pytest.raises(wire.WireError):
            wire.decode(bytes(frame))

    def test_ops_frame_claiming_v4_rejected(self) -> None:
        # OPS kinds did not exist before v5; a frame claiming an older
        # codec with an OPS kind byte is a protocol violation.
        frame = bytearray(wire.encode(OpsRequest(1)))
        frame[6] = 4
        with pytest.raises(wire.WireError, match="version"):
            wire.decode(bytes(frame))

    def test_ec_element_frames_stamped_v3(self) -> None:
        # A frame whose fields a pre-v3 decoder would misread (compressed
        # points instead of modp residues) must claim version 3, so old
        # peers reject it at the version gate instead of decoding garbage.
        from repro.crypto.groups import group_by_name

        ec = group_by_name("secp256k1")
        beacon = BeaconResponse(4, 0, b"\x00" * 32, ec.commit(5))
        frame = wire.encode(beacon, group=ec)
        assert frame[6] == 3
        assert wire.decode(frame, group=ec) == beacon
        decrypt = DecryptRequest(6, ec.commit(9), b"\x80" * 8)
        frame = wire.encode(decrypt, group=ec)
        assert frame[6] == 3
        assert wire.decode(frame, group=ec) == decrypt

    def test_v2_status_layout_rejected(self) -> None:
        # The v3 layout moved the group name ahead of the public key; a
        # frame still claiming v2 must not be parsed with v3 field order.
        status = StatusResponse(7, 7, 2, 7, 0, 0, 0, 0, 0, 1, "toy-0")
        frame = bytearray(wire.encode(status))
        frame[6] = 2
        with pytest.raises(wire.WireError, match="version 3"):
            wire.decode(bytes(frame))


class TestServiceRejection:
    def _frame(self) -> bytes:
        return wire.encode(SignResponse(5, 123, 456, True))

    def test_truncation_every_prefix_rejected(self) -> None:
        data = self._frame()
        for cut in range(len(data)):
            with pytest.raises(wire.WireError):
                wire.decode(data[:cut])

    def test_trailing_garbage_rejected(self) -> None:
        with pytest.raises(wire.WireError):
            wire.decode(self._frame() + b"\x00")

    def test_bad_presig_flag_rejected(self) -> None:
        data = bytearray(self._frame())
        data[-1] = 2  # the presig_used byte is the final field
        with pytest.raises(wire.WireError):
            wire.decode(bytes(data))

    def test_unknown_error_code_rejected_both_ways(self) -> None:
        bogus = max(ERROR_NAMES) + 17
        with pytest.raises(wire.WireError):
            wire.encode(ErrorResponse(1, bogus, "x"))
        data = bytearray(wire.encode(ErrorResponse(1, ERR_BUSY, "x")))
        data[8 + 8] = bogus  # header + request id -> the code byte
        with pytest.raises(wire.WireError):
            wire.decode(bytes(data))

    def test_garbled_detail_utf8_rejected(self) -> None:
        clean = wire.encode(ErrorResponse(1, ERR_BUSY, "ok"))
        data = bytearray(clean)
        data[-2:] = b"\xff\xfe"  # invalid UTF-8 in the detail bytes
        with pytest.raises(wire.WireError):
            wire.decode(bytes(data))

    def test_status_garbled_group_name_rejected(self) -> None:
        status = StatusResponse(1, 4, 1, 4, 0, 0, 0, 0, 0, 5, "ab")
        data = bytearray(wire.encode(status))
        data[-2:] = b"\xff\xff"
        with pytest.raises(wire.WireError):
            wire.decode(bytes(data))
