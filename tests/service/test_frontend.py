"""End-to-end tests for the serving layer over real TCP.

These are the acceptance tests for the service subsystem: external
clients speak the v2 wire frames to the gateway across kernel sockets,
the gateway fans out to the workers, and what comes back verifies
against the group key — signatures with plain single-signer Schnorr,
beacon rounds against the chain, decryptions against the plaintext.
Backpressure, batching and mid-run crashes are exercised at the same
layer a real client would hit them.
"""

from __future__ import annotations

import asyncio
import random


from repro.apps import threshold_elgamal
from repro.crypto import schnorr
from repro.service import protocol
from repro.service.frontend import ServiceFrontend
from repro.service.loadgen import LoadGenerator, ServiceClient
from repro.service.workers import ServiceConfig, ThresholdService


def _run(coro):
    return asyncio.run(coro)


async def _stack(config: ServiceConfig, **frontend_kw):
    service = ThresholdService(config)
    await service.start()
    frontend = ServiceFrontend(service, **frontend_kw)
    await frontend.start()
    return service, frontend


async def _teardown(service, frontend, *clients) -> None:
    for client in clients:
        await client.close()
    await frontend.stop()
    await service.stop()


class TestRequestResponse:
    def test_sign_verifies_under_group_key(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=1, pool_target=2)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            message = b"attested by the cluster"
            response = await client.sign(message)
            assert isinstance(response, protocol.SignResponse)
            ok = schnorr.verify(
                service.group,
                service.public_key,
                message,
                schnorr.Signature(response.challenge, response.response),
            )
            await _teardown(service, frontend, client)
            return ok, response.presig_used

        ok, presig_used = _run(scenario())
        assert ok
        assert presig_used  # the pool was prefilled

    def test_beacon_rounds_chain_and_replay(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=2, pool_target=0)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            first = await client.beacon_next()
            second = await client.beacon_next()
            replay = await client.beacon_get(first.round_number)
            missing = await client.beacon_get(99)
            chain_ok = service.beacon.verify_chain()
            await _teardown(service, frontend, client)
            return first, second, replay, missing, chain_ok

        first, second, replay, missing, chain_ok = _run(scenario())
        assert (first.round_number, second.round_number) == (0, 1)
        assert first.output != second.output
        assert replay == protocol.BeaconResponse(
            replay.request_id, 0, first.output, first.value
        )
        assert isinstance(missing, protocol.ErrorResponse)
        assert missing.code == protocol.ERR_BAD_REQUEST
        assert chain_ok

    def test_dprf_is_deterministic_across_requests(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=3, pool_target=0)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            one = await client.dprf_eval(b"tag-a")
            two = await client.dprf_eval(b"tag-a")
            other = await client.dprf_eval(b"tag-b")
            await _teardown(service, frontend, client)
            return one, two, other

        one, two, other = _run(scenario())
        assert one.output == two.output
        assert one.output != other.output

    def test_decrypt_round_trip(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=4, pool_target=0)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            ciphertext = threshold_elgamal.encrypt_bytes(
                service.group,
                service.public_key,
                b"no single node saw this",
                random.Random(7),
            )
            response = await client.decrypt(ciphertext.c1, ciphertext.pad)
            bogus = await client.decrypt(0, b"x")  # 0 is not a group element
            await _teardown(service, frontend, client)
            return response, bogus

        response, bogus = _run(scenario())
        assert response.plaintext == b"no single node saw this"
        assert isinstance(bogus, protocol.ErrorResponse)
        assert bogus.code == protocol.ERR_BAD_REQUEST

    def test_status_reports_service_shape(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=5, pool_target=3)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            await client.sign(b"one")
            status = await client.status()
            await _teardown(service, frontend, client)
            return status, service.public_key

        status, public_key = _run(scenario())
        assert (status.n, status.t, status.alive) == (4, 1, 4)
        assert status.served >= 1
        assert status.public_key == public_key
        assert status.pool_target == 3

    def test_pipelined_requests_correlate_by_id(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=6, pool_target=8)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            messages = [b"m%d" % i for i in range(6)]
            responses = await asyncio.gather(
                *(client.sign(m) for m in messages)
            )
            checks = [
                schnorr.verify(
                    service.group,
                    service.public_key,
                    m,
                    schnorr.Signature(r.challenge, r.response),
                )
                for m, r in zip(messages, responses)
            ]
            await _teardown(service, frontend, client)
            return checks

        assert all(_run(scenario()))


class TestBackpressure:
    def test_inflight_cap_sheds_with_busy(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=7, pool_target=0),
                max_inflight_per_client=1,
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            # Signs forge nonces on demand (slow), so concurrent requests
            # pile past the cap of one.
            responses = await asyncio.gather(
                *(client.sign(b"flood %d" % i) for i in range(6))
            )
            await _teardown(service, frontend, client)
            return responses

        responses = _run(scenario())
        busy = [
            r
            for r in responses
            if isinstance(r, protocol.ErrorResponse)
            and r.code == protocol.ERR_BUSY
        ]
        signed = [r for r in responses if isinstance(r, protocol.SignResponse)]
        assert busy, "cap of 1 must shed some of 6 concurrent requests"
        assert signed, "some requests must still be served"

    def test_bounded_queue_sheds_with_busy(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=8, pool_target=0),
                max_queue=1,
                max_inflight_per_client=64,
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            responses = await asyncio.gather(
                *(client.sign(b"q %d" % i) for i in range(8))
            )
            rejected = frontend.rejected_busy
            await _teardown(service, frontend, client)
            return responses, rejected

        responses, rejected = _run(scenario())
        assert rejected > 0
        assert any(isinstance(r, protocol.SignResponse) for r in responses)

    def test_garbled_stream_closes_connection(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=9, pool_target=0)
            )
            reader, writer = await asyncio.open_connection(
                frontend.host, frontend.port
            )
            writer.write(len(b"garbage!").to_bytes(4, "big") + b"garbage!")
            await writer.drain()
            got = await reader.read(64)  # server closes on us
            writer.close()
            await _teardown(service, frontend)
            return got

        assert _run(scenario()) == b""

    def test_non_request_frame_gets_bad_request(self) -> None:
        from repro.net import wire
        from repro.dkg.messages import DkgHelpMsg

        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=10, pool_target=0)
            )
            reader, writer = await asyncio.open_connection(
                frontend.host, frontend.port
            )
            writer.write(wire.encode(DkgHelpMsg(0)))
            await writer.drain()
            header = await reader.readexactly(4)
            body = await reader.readexactly(int.from_bytes(header, "big"))
            response = wire.decode(header + body)
            writer.close()
            await _teardown(service, frontend)
            return response

        response = _run(scenario())
        assert isinstance(response, protocol.ErrorResponse)
        assert response.code == protocol.ERR_BAD_REQUEST


class TestBatching:
    def test_concurrent_beacon_next_coalesce(self) -> None:
        """Queued BEACON_NEXT requests collapse into one round advance:
        everyone gets a fresh round, far fewer rounds than requests."""

        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=7, t=2, seed=11, pool_target=0)
            )
            clients = await asyncio.gather(
                *(
                    ServiceClient.connect(frontend.host, frontend.port)
                    for _ in range(8)
                )
            )
            responses = await asyncio.gather(
                *(c.beacon_next() for c in clients)
            )
            height = service.beacon.height
            chain_ok = service.beacon.verify_chain()
            await _teardown(service, frontend, *clients)
            return responses, height, chain_ok

        responses, height, chain_ok = _run(scenario())
        assert all(isinstance(r, protocol.BeaconResponse) for r in responses)
        assert chain_ok
        assert height <= len(responses)
        rounds = {r.round_number for r in responses}
        assert rounds == set(range(height))  # every round went to someone

    def test_duplicate_dprf_tags_deduplicate(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=12, pool_target=0)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            responses = await asyncio.gather(
                *(client.dprf_eval(b"same-tag") for _ in range(6))
            )
            await _teardown(service, frontend, client)
            return responses

        responses = _run(scenario())
        outputs = {r.output for r in responses}
        assert len(outputs) == 1  # deterministic PRF, one evaluation fans out


class TestCrashMidRun:
    def test_service_survives_crash_under_load(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=7, t=2, seed=13, pool_target=6)
            )
            generator = LoadGenerator(
                frontend.host,
                frontend.port,
                clients=6,
                requests_per_client=3,
                op="sign",
            )

            async def crash_soon():
                while service.served < 4:
                    await asyncio.sleep(0.001)
                service.crash_node(5)

            crasher = asyncio.create_task(crash_soon())
            report = await generator.run()
            await crasher
            alive = len(service.alive)
            await _teardown(service, frontend)
            return report, alive

        report, alive = _run(scenario())
        assert alive == 6
        assert report.completed == 18
        assert report.errors == 0
        assert report.invalid_signatures == 0

    def test_crash_below_threshold_yields_unavailable(self) -> None:
        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=14, pool_target=0)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            service.crash_node(1)
            service.crash_node(2)
            response = await client.sign(b"doomed")
            await _teardown(service, frontend, client)
            return response

        response = _run(scenario())
        assert isinstance(response, protocol.ErrorResponse)
        assert response.code in (protocol.ERR_UNAVAILABLE, protocol.ERR_FAILED)
