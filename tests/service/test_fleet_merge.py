"""Fleet OPS aggregation: the merge honesty rules (summed counts,
max-quantile upper bounds, shard-label scoping) and the crashed-shard
degradation contract."""

from __future__ import annotations

import asyncio

from repro.obs.fleet import FLEET_SCHEMA, merge_fleet, shard_digest
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service.shard.router import ShardRouter
from repro.service.workers import ServiceConfig


def _document(
    *, pool_ready=2, served=5, shard=None, p99=0.25, count=4
) -> dict:
    """A synthetic per-shard OPS document in the PR-6 snapshot shape."""
    labels = {"kind": "svc.sign"}
    depth_labels: dict[str, str] = {}
    if shard is not None:
        labels["shard"] = shard
        depth_labels = {"shard": shard}
    return {
        "schema": 1,
        "status": {
            "pool_ready": pool_ready,
            "pool_target": 4,
            "served": served,
            "failed": 1,
        },
        "metrics": {
            "repro_service_request_seconds": {
                "type": "histogram",
                "samples": [
                    {
                        "labels": labels,
                        "count": count,
                        "sum": 1.0,
                        "p50": 0.1,
                        "p99": p99,
                    }
                ],
            },
            "repro_service_pool_depth": {
                "type": "gauge",
                "samples": [
                    {"labels": depth_labels, "value": float(pool_ready)}
                ],
            },
        },
    }


def _entry(document, *, state="active", labeled=False, **overrides) -> dict:
    entry = {
        "state": state,
        "document": document,
        "error": None,
        "inflight": 1,
        "routed_total": 10,
        "labeled": labeled,
    }
    entry.update(overrides)
    return entry


class TestMergeRules:
    def test_counts_sum_and_quantiles_take_the_max(self) -> None:
        merged = merge_fleet(
            {
                "a": _entry(_document(pool_ready=2, served=5, p99=0.25)),
                "b": _entry(_document(pool_ready=3, served=7, p99=0.75)),
            }
        )
        fleet = merged["fleet"]
        assert merged["schema"] == FLEET_SCHEMA
        assert fleet["shards"] == 2
        assert fleet["down"] == 0
        assert fleet["pool_ready"] == 5
        assert fleet["served"] == 12
        assert fleet["failed"] == 2
        assert fleet["inflight"] == 2
        assert fleet["routed_total"] == 20
        sign = fleet["requests"]["svc.sign"]
        assert sign["count"] == 8  # counts add: traffic volume is truthful
        assert sign["p99"] == 0.75  # quantiles take the max: upper bound

    def test_crashed_shard_degrades_instead_of_sinking(self) -> None:
        merged = merge_fleet(
            {
                "alive": _entry(_document(pool_ready=2, served=5)),
                "dead": _entry(
                    None, error="ConnectionRefusedError: [Errno 111]"
                ),
            }
        )
        fleet = merged["fleet"]
        assert fleet["shards"] == 2
        assert fleet["down"] == 1
        # The dead shard is excluded from live sums...
        assert fleet["pool_ready"] == 2
        assert fleet["served"] == 5
        # ...but its row survives with the error attached.
        dead = merged["shards"]["dead"]
        assert dead["ok"] is False
        assert "ConnectionRefused" in dead["error"]
        assert merged["shards"]["alive"]["ok"] is True

    def test_retired_shard_counted_but_excluded_from_live_sums(self) -> None:
        merged = merge_fleet(
            {
                "live": _entry(_document(pool_ready=2, served=5)),
                "old": _entry(
                    _document(pool_ready=9, served=100), state="retired"
                ),
            }
        )
        fleet = merged["fleet"]
        assert fleet["states"] == {"active": 1, "retired": 1}
        assert fleet["pool_ready"] == 2
        assert fleet["served"] == 5
        # Lifetime routing totals still include the retired shard.
        assert fleet["routed_total"] == 20

    def test_shard_label_scoping(self) -> None:
        """Embedded shards share a registry: a labeled entry only sees
        its own samples, never a sibling's."""
        document = _document(shard="s1")
        # Splice in a second shard's samples, as a shared registry would.
        other = _document(shard="s2", pool_ready=7, p99=9.0)
        for family in ("repro_service_request_seconds", "repro_service_pool_depth"):
            document["metrics"][family]["samples"].extend(
                other["metrics"][family]["samples"]
            )
        row = shard_digest("s1", _entry(document, labeled=True))
        assert row["pool"]["depth"] == 2.0  # not 9.0: s2's gauge filtered out
        assert row["requests"]["svc.sign"]["p99"] == 0.25
        # An unlabeled (remote) shard owns its whole snapshot.
        remote = shard_digest("s1", _entry(_document(), labeled=False))
        assert remote["requests"]["svc.sign"]["count"] == 4

    def test_empty_fleet(self) -> None:
        merged = merge_fleet({})
        assert merged["fleet"]["shards"] == 0
        assert merged["fleet"]["requests"] == {}

    def test_ring_is_carried_through(self) -> None:
        ring = {"vnodes": 64, "version": 3, "shards": ["a"]}
        assert merge_fleet({}, ring=ring)["ring"] == ring


class TestRouterFleetDocument:
    def test_live_fleet_tolerates_a_crashed_shard(self) -> None:
        """The router-level acceptance case: one embedded shard answers,
        one shard's OPS fetch blows up, the fleet document still merges."""

        async def scenario():
            router = ShardRouter(ServiceConfig(n=4, t=1, seed=5, pool_target=2))
            await router.start(2)
            # Simulate a crashed committee: its OPS path raises.
            broken = router.handles["shard-1"]

            async def boom():
                raise ConnectionResetError("committee went away")

            broken.ops_document = boom  # type: ignore[method-assign]
            document = await router.fleet_document()
            await router.stop()
            return document

        previous = set_registry(MetricsRegistry())
        try:
            document = asyncio.run(scenario())
        finally:
            set_registry(previous)

        fleet = document["fleet"]
        assert fleet["shards"] == 2
        assert fleet["down"] == 1
        assert fleet["states"] == {"active": 2}
        # The healthy shard's pool still shows up in the totals.
        assert fleet["pool_ready"] == 2
        assert document["shards"]["shard-1"]["ok"] is False
        assert "committee went away" in document["shards"]["shard-1"]["error"]
        assert document["shards"]["shard-0"]["ok"] is True
        assert document["shards"]["shard-0"]["pool"]["depth"] == 2.0
        assert sorted(document["ring"]["shards"]) == ["shard-0", "shard-1"]
