"""Presignature pool behavior: exhaustion, watermark refill, and
crash-safe invalidation.

The pool mechanics are tested against a cheap stub forge (pool logic is
independent of how nonces are made); the crash-invalidation semantics
are additionally exercised end-to-end against a real
:class:`~repro.service.workers.ThresholdService`, whose forge runs
actual nonce DKGs and installs real shares into the workers.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.crypto import schnorr
from repro.service.presig import PresigPool, Presignature
from repro.service.workers import ServiceConfig, ThresholdService


def _stub_forge(contributors=(1, 2, 3)):
    """A forge that mints structurally valid presigs instantly."""

    def forge(presig_id: int):
        presig = Presignature(
            presig_id=presig_id,
            commitment=None,  # pool never inspects the commitment
            nonce_point=presig_id + 1,
            contributors=tuple(contributors),
        )
        return presig, {i: presig_id * 100 + i for i in contributors}

    return forge


def _make_pool(target=6, low_watermark=None, contributors=(1, 2, 3), installs=None):
    installed = installs if installs is not None else []
    return PresigPool(
        _stub_forge(contributors),
        lambda presig, shares: installed.append((presig.presig_id, shares)),
        target=target,
        low_watermark=low_watermark,
    )


class TestPoolMechanics:
    def test_prefill_reaches_target_and_installs_shares(self) -> None:
        async def scenario():
            installs: list = []
            pool = _make_pool(target=6, installs=installs)
            await pool.start()
            try:
                return pool.level, pool.forged, list(installs)
            finally:
                await pool.stop()

        level, forged, installs = asyncio.run(scenario())
        assert level == 6
        assert forged == 6
        assert len(installs) == 6
        assert all(set(shares) == {1, 2, 3} for _, shares in installs)

    def test_burst_exhaustion_returns_none(self) -> None:
        async def scenario():
            pool = _make_pool(target=4)
            await pool.start()
            try:
                taken = [pool.take() for _ in range(7)]
            finally:
                await pool.stop()
            return taken

        taken = asyncio.run(scenario())
        assert all(p is not None for p in taken[:4])
        assert taken[4:] == [None, None, None]
        # Entries come out oldest-first and are unique.
        ids = [p.presig_id for p in taken[:4]]
        assert ids == sorted(set(ids))

    def test_low_watermark_triggers_background_refill(self) -> None:
        async def scenario():
            pool = _make_pool(target=8, low_watermark=4)
            await pool.start()
            try:
                # Drain to one above the watermark: no refill expected.
                for _ in range(3):
                    assert pool.take() is not None
                await asyncio.sleep(0.05)
                level_above = pool.level
                forged_above = pool.forged
                # Drop below the watermark: the refill task tops back up.
                assert pool.take() is not None
                assert pool.take() is not None
                for _ in range(100):
                    await asyncio.sleep(0.01)
                    if pool.level == pool.target:
                        break
                return level_above, forged_above, pool.level
            finally:
                await pool.stop()

        level_above, forged_above, final_level = asyncio.run(scenario())
        assert level_above == 5
        assert forged_above == 8  # untouched since prefill
        assert final_level == 8

    def test_forge_now_bypasses_the_pool(self) -> None:
        async def scenario():
            pool = _make_pool(target=2)
            await pool.start()
            try:
                before = pool.level
                presig = await pool.forge_now()
                return before, pool.level, presig
            finally:
                await pool.stop()

        before, after, presig = asyncio.run(scenario())
        assert before == after == 2
        assert presig.presig_id == 2  # ids continue past the prefill

    def test_disabled_pool_never_forges_in_background(self) -> None:
        async def scenario():
            pool = _make_pool(target=0)
            await pool.start()
            try:
                return pool.take(), pool.level, pool.forged
            finally:
                await pool.stop()

        taken, level, forged = asyncio.run(scenario())
        assert taken is None and level == 0 and forged == 0

    def test_invalid_watermark_rejected(self) -> None:
        with pytest.raises(ValueError):
            _make_pool(target=2, low_watermark=5)

    def test_refill_loop_survives_forge_failures(self) -> None:
        """A failed nonce DKG (e.g. too few live nodes) must not kill
        the refill task — it retries once conditions may have changed —
        and stop() must not re-raise the stored exception."""

        async def scenario():
            calls = {"count": 0}

            def flaky_forge(presig_id: int):
                calls["count"] += 1
                if calls["count"] <= 2:
                    raise RuntimeError("nonce DKG failed")
                return _stub_forge()(presig_id)

            pool = PresigPool(
                flaky_forge, lambda p, s: None, target=2, low_watermark=2
            )
            await pool.start(prefill=False)
            pool.take()  # empty + below watermark: wakes the refill task
            for _ in range(400):
                await asyncio.sleep(0.01)
                if pool.level == pool.target:
                    break
            stats = pool.refill_failures, pool.level
            await pool.stop()  # must not raise
            return stats

        failures, level = asyncio.run(scenario())
        assert failures >= 1
        assert level == 2


class TestInvalidation:
    def test_invalidate_drops_only_contributed_entries(self) -> None:
        async def scenario():
            pool = _make_pool(target=4, contributors=(1, 2, 3))
            await pool.start()
            await pool.stop()  # freeze the refill loop; pool holds 4
            dropped_outsider = pool.invalidate(7)
            dropped_contributor = pool.invalidate(2)
            return dropped_outsider, dropped_contributor, pool.level

        outsider, contributor, level = asyncio.run(scenario())
        assert outsider == 0
        assert contributor == 4
        assert level == 0

    def test_quarantine_screens_refills_until_absolved(self) -> None:
        async def scenario():
            installs: list = []
            pool = _make_pool(
                target=3, low_watermark=3, contributors=(1, 2, 3),
                installs=installs,
            )
            pool.invalidate(1)  # quarantined before anything is forged
            await pool.refill()
            screened = pool.level, pool.forged, pool.invalidated, len(installs)
            pool.absolve(1)
            await pool.refill()
            return screened, pool.level

        (level, forged, invalidated, installed), healed = asyncio.run(scenario())
        assert level == 0  # every forge was screened out...
        assert forged == invalidated == 4  # ...counted, then it gave up
        assert installed == 0  # screening happens before share install
        assert healed == 3

    def test_invalidate_discards_installed_shares(self) -> None:
        async def scenario():
            discarded: list[int] = []
            pool = PresigPool(
                _stub_forge((1, 2, 3)),
                lambda p, s: None,
                target=3,
                discard=discarded.append,
            )
            await pool.start()
            await pool.stop()
            pool.invalidate(2)
            return discarded

        # Workers are told to erase their shares of every dropped entry.
        assert asyncio.run(scenario()) == [0, 1, 2]


class TestServiceIntegration:
    """The pool wired to real nonce DKGs and real workers (n=4, t=1)."""

    def test_crash_wipes_contributed_presigs_and_worker_shares(self) -> None:
        async def scenario():
            service = ThresholdService(
                ServiceConfig(n=4, t=1, seed=5, pool_target=4)
            )
            await service.start()
            try:
                contributors = {
                    c for p in service.pool._ready for c in p.contributors
                }
                victim = min(contributors)
                survivor = next(
                    i for i in sorted(service.workers) if i != victim
                )
                nonce_count_before = service.workers[victim].nonce_count
                dropped = service.crash_node(victim)
                return (
                    dropped,
                    nonce_count_before,
                    service.workers[victim].nonce_count,
                    service.workers[survivor].nonce_count,
                    service.pool.level,
                )
            finally:
                await service.stop()

        dropped, before, after, survivor_count, level = asyncio.run(scenario())
        assert before > 0
        assert after == 0  # crash wipes ephemeral nonce shares
        assert dropped > 0
        assert level <= 4 - dropped
        # Survivors erased their shares of the invalidated entries too.
        assert survivor_count == level

    def test_signing_survives_exhaustion_and_crash(self) -> None:
        async def scenario():
            service = ThresholdService(
                ServiceConfig(n=4, t=1, seed=6, pool_target=2)
            )
            await service.start()
            try:
                # Burst past the pool: 4 signs against 2 presigs.
                results = await asyncio.gather(
                    *(service.sign(b"burst %d" % i) for i in range(4))
                )
                from_pool = [used for _, used in results]
                # Crash a node; signing must continue from the survivors.
                service.crash_node(1)
                signature, _ = await service.sign(b"after crash")
                ok = schnorr.verify(
                    service.group, service.public_key, b"after crash", signature
                )
                all_verify = all(
                    schnorr.verify(
                        service.group, service.public_key, b"burst %d" % i, sig
                    )
                    for i, (sig, _) in enumerate(results)
                )
                return from_pool, ok, all_verify
            finally:
                await service.stop()

        from_pool, ok, all_verify = asyncio.run(scenario())
        assert ok and all_verify
        assert from_pool.count(True) == 2  # the pool served exactly its level
        assert from_pool.count(False) == 2  # the rest forged on demand

    def test_recovered_node_contributes_to_new_presigs_only(self) -> None:
        async def scenario():
            service = ThresholdService(
                ServiceConfig(n=4, t=1, seed=7, pool_target=3)
            )
            await service.start()
            try:
                # Park the background refill so the only new presig is
                # the explicit forge below (no install race).
                await service.pool.stop()
                victim = sorted(service.workers)[0]
                service.crash_node(victim)
                service.recover_node(victim)
                presig = await service.pool.forge_now()
                # The recovered node holds a share of the *new* nonce.
                return (
                    presig.presig_id in service.workers[victim]._nonce_shares,
                    service.workers[victim].nonce_count,
                )
            finally:
                await service.stop()

        holds_new, count = asyncio.run(scenario())
        assert holds_new
        assert count == 1  # old shares stayed lost

    def test_dry_pool_refills_after_burst(self) -> None:
        async def scenario():
            service = ThresholdService(
                ServiceConfig(n=4, t=1, seed=8, pool_target=2, pool_low_watermark=2)
            )
            await service.start()
            try:
                while service.pool.take() is not None:
                    pass
                for _ in range(600):
                    await asyncio.sleep(0.01)
                    if service.pool.level == service.pool.target:
                        break
                return service.pool.level
            finally:
                await service.stop()

        assert asyncio.run(scenario()) == 2

    def test_too_many_crashes_turn_into_unavailable(self) -> None:
        from repro.service.workers import ServiceUnavailable

        async def scenario():
            service = ThresholdService(
                ServiceConfig(n=4, t=1, seed=9, pool_target=0)
            )
            await service.start()
            try:
                service.crash_node(1)
                service.crash_node(2)  # 2 live < 2t+1 = 3
                with pytest.raises((ServiceUnavailable, RuntimeError)):
                    await service.sign(b"nope")
            finally:
                await service.stop()

        asyncio.run(scenario())
