"""The shard router end to end: keyed routing over real TCP, the
drain-under-load guarantee, live add (embedded and the §6.2 groupmod
path), and the shardctl admin surface."""

from __future__ import annotations

import asyncio

import pytest

from repro.crypto import schnorr
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import protocol
from repro.service.loadgen import LoadGenerator, ServiceClient
from repro.service.shard import api
from repro.service.shard.frontend import ShardFrontend
from repro.service.shard.router import (
    ACTIVE,
    DRAINING,
    RETIRED,
    ShardHandle,
    ShardRouter,
)
from repro.service.workers import ServiceConfig


def _run(coro):
    return asyncio.run(coro)


def _template(**overrides) -> ServiceConfig:
    defaults = dict(n=4, t=1, seed=11, pool_target=2)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _stack(template: ServiceConfig, shards: int, **frontend_kw):
    router = ShardRouter(template)
    await router.start(shards)
    frontend = ShardFrontend(router, **frontend_kw)
    await frontend.start()
    return router, frontend


async def _teardown(router, frontend, *clients) -> None:
    for client in clients:
        await client.close()
    await frontend.stop()
    await router.stop()


def _key_owned_by(router: ShardRouter, shard_id: str) -> bytes:
    """A key id the ring currently routes to ``shard_id``."""
    for index in range(4096):
        key_id = f"owned-{index}".encode()
        if router.ring.route(key_id) == shard_id:
            return key_id
    raise AssertionError(f"no key routes to {shard_id}")


class _Registry:
    """Fresh metrics registry per test (embedded shards share one)."""

    def __enter__(self):
        self._previous = set_registry(MetricsRegistry())
        return self

    def __exit__(self, *exc):
        set_registry(self._previous)


class TestKeyedRouting:
    def test_shard_sign_verifies_per_committee_over_tcp(self) -> None:
        """Each key's signature verifies under *its* shard's group key,
        and the two committees hold distinct keys."""

        async def scenario():
            router, frontend = await _stack(_template(), shards=2)
            client = await ServiceClient.connect(frontend.host, frontend.port)
            key_a = _key_owned_by(router, "shard-0")
            key_b = _key_owned_by(router, "shard-1")
            results = []
            for key_id in (key_a, key_b):
                status = await client.shard_status(key_id)
                message = b"routed to " + key_id
                response = await client.shard_sign(key_id, message)
                assert isinstance(response, protocol.SignResponse), response
                results.append(
                    schnorr.verify(
                        router.group,
                        status.public_key,
                        message,
                        schnorr.Signature(
                            response.challenge, response.response
                        ),
                    )
                )
            pubkeys = {
                router.handles[sid].service.public_key
                for sid in ("shard-0", "shard-1")
            }
            routed = {
                sid: handle.routed_total
                for sid, handle in router.handles.items()
            }
            await _teardown(router, frontend, client)
            return results, pubkeys, routed

        with _Registry():
            results, pubkeys, routed = _run(scenario())
        assert results == [True, True]
        assert len(pubkeys) == 2  # independent committees, independent keys
        assert routed == {"shard-0": 2, "shard-1": 2}  # status + sign each

    def test_empty_key_and_empty_ring_become_error_responses(self) -> None:
        async def scenario():
            router = ShardRouter(_template())
            await router.start(1)
            empty = await router.handle(api.ShardSignRequest(1, b"", b"m"))
            await router.stop()

            bare = ShardRouter(_template())
            unrouted = await bare.handle(api.ShardSignRequest(2, b"k", b"m"))
            return empty, unrouted

        with _Registry():
            empty, unrouted = _run(scenario())
        assert isinstance(empty, protocol.ErrorResponse)
        assert empty.code == protocol.ERR_BAD_REQUEST
        assert isinstance(unrouted, protocol.ErrorResponse)

    def test_loadgen_shard_op_drives_the_fleet(self) -> None:
        async def scenario():
            router, frontend = await _stack(_template(), shards=2)
            generator = LoadGenerator(
                frontend.host,
                frontend.port,
                clients=2,
                requests_per_client=4,
                op="shard",
                keys=4,
            )
            report = await generator.run()
            await _teardown(router, frontend)
            return report

        with _Registry():
            report = _run(scenario())
        assert report.completed == 8
        assert report.errors == 0
        assert report.invalid_signatures == 0
        assert report.server_snapshot["fleet"]["shards"] == 2


class TestDrainUnderLoad:
    def test_drain_waits_for_inflight_and_stops_routing(self) -> None:
        """The headline drain guarantee over real TCP: an in-flight
        request on the retiring shard completes, nothing new routes
        there, and its pooled nonces are flushed."""

        async def scenario():
            # pool_target=0: every sign forges its nonce DKG on demand,
            # holding the request in flight long enough to drain under.
            router, frontend = await _stack(
                _template(pool_target=0), shards=2
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            victim = "shard-0"
            handle = router.handles[victim]
            key_id = _key_owned_by(router, victim)
            status = await client.shard_status(key_id)
            message = b"signed while draining"

            inflight = asyncio.create_task(
                client.shard_sign(key_id, message)
            )
            for _ in range(200):  # wait until the sign is on the shard
                if handle.inflight > 0:
                    break
                await asyncio.sleep(0.005)
            assert handle.inflight > 0, "sign never went in flight"

            report = await client.shardctl("drain", victim)
            routed_at_retire = handle.routed_total
            response = await inflight
            assert isinstance(response, protocol.SignResponse), response
            ok = schnorr.verify(
                router.group,
                status.public_key,
                message,
                schnorr.Signature(response.challenge, response.response),
            )

            # The drained key is re-homed; later traffic lands on the
            # survivor and never touches the retired shard.
            assert router.ring.route(key_id) == "shard-1"
            moved_status = await client.shard_status(key_id)
            after = await client.shard_sign(key_id, b"after the drain")
            assert isinstance(after, protocol.SignResponse), after
            ok_after = schnorr.verify(
                router.group,
                moved_status.public_key,
                b"after the drain",
                schnorr.Signature(after.challenge, after.response),
            )
            routed_after = handle.routed_total

            await _teardown(router, frontend, client)
            return (
                report,
                handle,
                ok,
                ok_after,
                routed_at_retire,
                routed_after,
                status.public_key,
                moved_status.public_key,
            )

        with _Registry():
            (
                report,
                handle,
                ok,
                ok_after,
                routed_at_retire,
                routed_after,
                old_key,
                new_key,
            ) = _run(scenario())
        assert ok, "in-flight request failed during drain"
        assert ok_after
        assert handle.state == RETIRED
        assert report["state"] == RETIRED
        assert report["shard"] == "shard-0"
        assert "shard-0" not in report["ring"]["shards"]
        # Nothing was routed to the shard after drain returned.
        assert routed_after == routed_at_retire
        # The key genuinely moved committees.
        assert old_key != new_key

    def test_drain_flushes_pooled_presignatures(self) -> None:
        async def scenario():
            router = ShardRouter(_template(pool_target=3))
            await router.start(2)
            report = await router.drain("shard-1")
            await router.stop()
            return report

        with _Registry():
            report = _run(scenario())
        assert report["flushed_presignatures"] == 3

    def test_drain_refuses_last_active_shard(self) -> None:
        async def scenario():
            router = ShardRouter(_template())
            await router.start(1)
            try:
                with pytest.raises(ValueError, match="last active shard"):
                    await router.drain("shard-0")
            finally:
                await router.stop()

        with _Registry():
            _run(scenario())

    def test_drain_rejects_unknown_and_repeated(self) -> None:
        async def scenario():
            router = ShardRouter(_template())
            await router.start(3)
            await router.drain("shard-2")
            try:
                with pytest.raises(ValueError, match="no shard"):
                    await router.drain("shard-9")
                with pytest.raises(ValueError, match="retired"):
                    await router.drain("shard-2")
            finally:
                await router.stop()

        with _Registry():
            _run(scenario())


class TestLiveAdd:
    def test_shardctl_add_grows_the_ring_over_tcp(self) -> None:
        async def scenario():
            router, frontend = await _stack(_template(), shards=1)
            client = await ServiceClient.connect(frontend.host, frontend.port)
            doc = await client.shardctl("add")
            status_doc = await client.shardctl("status")

            # The new shard serves traffic for the keys it now owns.
            key_id = _key_owned_by(router, doc["shard"])
            response = await client.shard_sign(key_id, b"fresh shard")
            assert isinstance(response, protocol.SignResponse), response

            await _teardown(router, frontend, client)
            return doc, status_doc

        with _Registry():
            doc, status_doc = _run(scenario())
        assert doc["shard"] == "shard-1"
        assert doc["state"] == ACTIVE
        assert sorted(doc["ring"]["shards"]) == ["shard-0", "shard-1"]
        assert status_doc["shards"]["shard-1"]["state"] == ACTIVE

    def test_commission_tcp_runs_groupmod_and_serves(self) -> None:
        """``commission="tcp"`` commissions a committee grown by the
        §6.1 + §6.2 lifecycle over real sockets: the shard comes up with
        n+1 workers and signs for the keys it owns."""

        async def scenario():
            router = ShardRouter(_template(pool_target=1))
            await router.start(1)
            handle = await router.add_shard("grown", commission="tcp")
            assert handle.service.config.n == 5  # 4-member boot + joiner

            key_id = _key_owned_by(router, "grown")
            message = b"signed by the grown committee"
            response = await router.handle(
                api.ShardSignRequest(1, key_id, message)
            )
            assert isinstance(response, protocol.SignResponse), response
            ok = schnorr.verify(
                router.group,
                handle.service.public_key,
                message,
                schnorr.Signature(response.challenge, response.response),
            )
            await router.stop()
            return ok

        with _Registry():
            assert _run(scenario())

    def test_duplicate_and_bogus_commission_rejected(self) -> None:
        async def scenario():
            router = ShardRouter(_template())
            await router.start(1)
            try:
                with pytest.raises(ValueError, match="already exists"):
                    await router.add_shard("shard-0")
                with pytest.raises(ValueError, match="unknown commission"):
                    await router.add_shard(commission="carrier-pigeon")
            finally:
                await router.stop()

        with _Registry():
            _run(scenario())


class TestHandles:
    def test_handle_is_embedded_xor_remote(self) -> None:
        with pytest.raises(ValueError, match="embedded xor remote"):
            ShardHandle("s")

        async def scenario():
            handle = ShardHandle("s", remote=("127.0.0.1", 1))
            assert not handle.embedded
            assert handle.state == ACTIVE
            handle.begin()
            assert handle.inflight == 1
            waiter = asyncio.create_task(handle.wait_idle())
            await asyncio.sleep(0)
            assert not waiter.done()
            handle.end()
            await asyncio.wait_for(waiter, timeout=1)

        _run(scenario())

    def test_unreachable_remote_shard_degrades_to_error(self) -> None:
        async def scenario():
            router = ShardRouter(_template())
            await router.start(1)
            # A remote shard nobody is serving: connection refused.
            await router.add_remote_shard("ghost", "127.0.0.1", 9)
            key_id = _key_owned_by(router, "ghost")
            response = await router.handle(
                api.ShardSignRequest(1, key_id, b"m")
            )
            await router.stop()
            return response

        with _Registry():
            response = _run(scenario())
        assert isinstance(response, protocol.ErrorResponse)
        assert response.code == protocol.ERR_UNAVAILABLE
        assert "unreachable" in response.detail


class TestStates:
    def test_state_constants(self) -> None:
        assert (ACTIVE, DRAINING, RETIRED) == (
            "active",
            "draining",
            "retired",
        )
