"""The parallel presignature forge: a ``cores > 1`` service fans the
whole pool deficit across a process pool and still produces valid,
deterministic presignatures; ops reports the acceleration status."""

from __future__ import annotations

import asyncio
import json

from repro.crypto.feldman import share_verifier
from repro.service.workers import ServiceConfig, ThresholdService


def _run(coro):
    return asyncio.run(coro)


def _config(cores: int) -> ServiceConfig:
    return ServiceConfig(n=5, t=1, seed=3, pool_target=6, cores=cores)


async def _forged_pool(config: ServiceConfig) -> tuple:
    service = ThresholdService(config)
    await service.start()
    presigs = {}
    for presig in service.pool._ready:
        shares = {
            worker.index: worker._nonce_shares[presig.presig_id]
            for worker in service.workers.values()
            if presig.presig_id in worker._nonce_shares
        }
        presigs[presig.presig_id] = (presig, shares)
    signature, from_pool = await service.sign(b"parallel forge")
    ops_doc = json.loads(service.ops().snapshot.decode())
    await service.stop()
    return service, presigs, signature, from_pool, ops_doc


class TestParallelForge:
    def test_forged_presignatures_are_valid_and_pool_serves(self) -> None:
        service, presigs, _sig, from_pool, _ops = _run(
            _forged_pool(_config(cores=2))
        )
        assert service.crypto_executor is not None
        assert not service.crypto_executor._broken
        assert from_pool
        assert len(presigs) >= 1
        for presig, shares in presigs.values():
            # Every worker share must verify against the commitment —
            # the same check the signing path applies per request.
            good, bad = share_verifier(presig.commitment).batch_verify(
                list(shares.items())
            )
            assert bad == []
            assert len(good) == len(shares)
            assert presig.commitment.public_key() == presig.nonce_point

    def test_forge_is_deterministic_for_fixed_seed_and_cores(self) -> None:
        _, first, *_ = _run(_forged_pool(_config(cores=2)))
        _, second, *_ = _run(_forged_pool(_config(cores=2)))
        assert set(first) == set(second)
        for presig_id in first:
            presig_a, shares_a = first[presig_id]
            presig_b, shares_b = second[presig_id]
            assert shares_a == shares_b
            assert presig_a.nonce_point == presig_b.nonce_point
            assert presig_a.contributors == presig_b.contributors

    def test_ops_reports_acceleration_status(self) -> None:
        *_, ops_doc = _run(_forged_pool(_config(cores=2)))
        acceleration = ops_doc["status"]["acceleration"]
        assert acceleration["parallel_cores"] == 2
        assert acceleration["parallel_active"] is True
        assert set(acceleration) >= {"gmpy2", "coincurve", "available_cpus"}

    def test_serial_service_has_no_executor(self) -> None:
        service, presigs, _sig, from_pool, ops_doc = _run(
            _forged_pool(_config(cores=1))
        )
        assert service.crypto_executor is None
        assert from_pool and len(presigs) >= 1
        acceleration = ops_doc["status"]["acceleration"]
        assert acceleration["parallel_cores"] == 1
        assert acceleration["parallel_active"] is False
