"""Codec v6: shard-router frame roundtrips, version stamping, gates."""

import pytest

from repro.net import wire
from repro.service.shard import api


ROUNDTRIP_CASES = [
    api.ShardSignRequest(7, b"user-17", b"hello world"),
    api.ShardSignRequest(1, b"\x00" * 32, b""),
    api.ShardStatusRequest(9, b"user-17"),
    api.FleetOpsRequest(3),
    api.FleetOpsResponse(3, b'{"schema":1,"fleet":{}}'),
    api.ShardCtlRequest(5, "add", ""),
    api.ShardCtlRequest(6, "drain", "shard-2"),
    api.ShardCtlRequest(7, "status", ""),
    api.ShardCtlResponse(8, b'{"api_version":1}'),
]


@pytest.mark.parametrize("message", ROUNDTRIP_CASES, ids=lambda m: m.kind)
def test_roundtrip(message):
    assert wire.decode(wire.encode(message)) == message


@pytest.mark.parametrize("message", ROUNDTRIP_CASES, ids=lambda m: m.kind)
def test_stamped_version_6(message):
    frame = wire.encode(message)
    assert frame[6] == 6


def test_version_constants():
    assert wire.VERSION == 6
    assert 6 in wire.SUPPORTED_VERSIONS
    assert wire.V6_KINDS == frozenset(range(0x3E, 0x44))
    # The v6 range collides with no earlier kind assignment.
    assert not wire.V6_KINDS & wire.V4_KINDS
    assert not wire.V6_KINDS & wire.V5_KINDS


@pytest.mark.parametrize("claimed", [2, 3, 4, 5])
def test_downgraded_frames_rejected(claimed):
    frame = bytearray(wire.encode(api.ShardSignRequest(1, b"k", b"m")))
    frame[6] = claimed
    with pytest.raises(wire.WireError, match="requires codec version >= 6"):
        wire.decode(bytes(frame))


def test_unknown_shardctl_op_rejected_on_encode():
    with pytest.raises(wire.WireError, match="unknown shardctl op"):
        wire.encode(api.ShardCtlRequest(1, "explode", ""))


def test_unknown_shardctl_op_index_rejected_on_decode():
    frame = bytearray(wire.encode(api.ShardCtlRequest(1, "status", "")))
    # The op index is the byte right after the 8-byte correlation id.
    frame[wire.HEADER_BYTES + wire.REQUEST_ID_BYTES] = 0xFF
    with pytest.raises(wire.WireError, match="unknown shardctl op index"):
        wire.decode(bytes(frame))


def test_garbled_shard_id_rejected():
    frame = bytearray(wire.encode(api.ShardCtlRequest(1, "drain", "ab")))
    frame[-1] = 0xFF  # invalid UTF-8 continuation in the shard id
    with pytest.raises(wire.WireError, match="garbled shard id"):
        wire.decode(bytes(frame))


def test_trailing_bytes_rejected():
    frame = wire.encode(api.FleetOpsRequest(1))
    grown = (
        (len(frame) - 4 + 1).to_bytes(4, "big") + frame[4:] + b"\x00"
    )
    with pytest.raises(wire.WireError):
        wire.decode(grown)


def test_shardctl_ops_wire_order_is_append_only():
    # The u8 op encoding indexes this tuple; reordering it would flip
    # the meaning of frames already in flight.
    assert api.SHARDCTL_OPS[:3] == ("add", "drain", "status")


def test_router_type_tuples():
    assert set(api.ROUTER_REQUEST_TYPES) == {
        api.ShardSignRequest,
        api.ShardStatusRequest,
        api.FleetOpsRequest,
        api.ShardCtlRequest,
    }
    for response_type in api.ROUTER_RESPONSE_TYPES:
        assert hasattr(response_type, "kind")
