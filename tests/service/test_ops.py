"""The live ops surface: OPS frames over TCP and the HTTP endpoint.

These are the acceptance tests for ISSUE E17's headline capability: a
running service answers an OPS request over its ordinary client port
with a JSON snapshot carrying pool depth, per-kind latency histograms
and the rest of the registry, and (separately) serves the same registry
as Prometheus text over HTTP.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

from repro.obs.http import MetricsHttpServer
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import protocol
from repro.service.frontend import ServiceFrontend
from repro.service.loadgen import LoadGenerator, ServiceClient
from repro.service.workers import ServiceConfig, ThresholdService


def _run(coro):
    return asyncio.run(coro)


async def _stack(config: ServiceConfig, **frontend_kw):
    service = ThresholdService(config)
    await service.start()
    frontend = ServiceFrontend(service, **frontend_kw)
    await frontend.start()
    return service, frontend


async def _teardown(service, frontend, *clients) -> None:
    for client in clients:
        await client.close()
    await frontend.stop()
    await service.stop()


class TestOpsOverTheWire:
    def test_ops_snapshot_carries_status_and_metrics(self) -> None:
        registry = MetricsRegistry()
        previous = set_registry(registry)

        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=3, pool_target=2)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            await client.sign(b"warm the latency histogram")
            snapshot = await client.ops()
            await _teardown(service, frontend, client)
            return snapshot

        try:
            snapshot = _run(scenario())
        finally:
            set_registry(previous)

        assert snapshot["schema"] == 1
        status = snapshot["status"]
        assert status["n"] == 4 and status["t"] == 1
        assert status["pool_target"] == 2
        metrics = snapshot["metrics"]
        # The headline families: pool depth, per-kind request latency.
        assert "repro_service_pool_depth" in metrics
        assert "repro_service_request_seconds" in metrics
        kinds = {
            s["labels"]["kind"]
            for s in metrics["repro_service_request_seconds"]["samples"]
        }
        assert "svc.sign" in kinds
        sign = next(
            s
            for s in metrics["repro_service_request_seconds"]["samples"]
            if s["labels"]["kind"] == "svc.sign"
        )
        assert sign["count"] >= 1 and sign["p99"] > 0
        # The whole document is one JSON round-trip away from the wire.
        json.dumps(snapshot)

    def test_ops_response_type_and_raw_frame(self) -> None:
        registry = MetricsRegistry()
        previous = set_registry(registry)

        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=4, pool_target=0)
            )
            client = await ServiceClient.connect(frontend.host, frontend.port)
            response = await client.request(protocol.OpsRequest)
            await _teardown(service, frontend, client)
            return response

        try:
            response = _run(scenario())
        finally:
            set_registry(previous)
        assert isinstance(response, protocol.OpsResponse)
        document = json.loads(response.snapshot.decode())
        assert document["schema"] == 1

    def test_loadgen_merges_server_snapshot(self) -> None:
        registry = MetricsRegistry()
        previous = set_registry(registry)

        async def scenario():
            service, frontend = await _stack(
                ServiceConfig(n=4, t=1, seed=5, pool_target=2)
            )
            generator = LoadGenerator(
                frontend.host,
                frontend.port,
                clients=2,
                requests_per_client=2,
                op="sign",
            )
            report = await generator.run()
            await _teardown(service, frontend)
            return report

        try:
            report = _run(scenario())
        finally:
            set_registry(previous)
        assert report.completed == 4
        assert report.server_snapshot is not None
        assert "repro_service_pool_depth" in report.server_snapshot["metrics"]
        assert "server" in report.as_dict()


class TestMetricsHttpEndpoint:
    def test_http_text_and_json_expositions(self) -> None:
        registry = MetricsRegistry()
        registry.counter(
            "repro_service_requests_total", kind="svc.sign", outcome="ok"
        ).inc(3)
        registry.histogram("repro_service_request_seconds", kind="svc.sign").observe(
            0.01
        )

        async def scenario():
            server = MetricsHttpServer(registry=registry)
            await server.start()
            base = f"http://{server.host}:{server.port}"
            loop = asyncio.get_running_loop()

            def fetch(path: str) -> tuple[int, bytes]:
                with urllib.request.urlopen(base + path) as response:
                    return response.status, response.read()

            text = await loop.run_in_executor(None, fetch, "/metrics")
            as_json = await loop.run_in_executor(None, fetch, "/metrics.json")
            health = await loop.run_in_executor(None, fetch, "/healthz")
            try:
                await loop.run_in_executor(None, fetch, "/nope")
                missing_status = 200
            except urllib.error.HTTPError as exc:
                missing_status = exc.code
            await server.stop()
            return text, as_json, health, missing_status

        text, as_json, health, missing_status = _run(scenario())
        assert text[0] == 200
        body = text[1].decode()
        assert "# TYPE repro_service_requests_total counter" in body
        assert 'repro_service_requests_total{kind="svc.sign",outcome="ok"} 3' in body
        assert json.loads(as_json[1])["repro_service_requests_total"]
        assert health[1] == b"ok\n"
        assert missing_status == 404
