"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_dkg_command(self, capsys) -> None:
        code = main(["dkg", "--n", "4", "--t", "1", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "succeeded: True" in out
        assert "public_key" in out

    def test_dkg_json_output(self, capsys) -> None:
        code = main(["dkg", "--n", "4", "--t", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["succeeded"] is True
        assert len(payload["q_set"]) == 2

    def test_dkg_with_reconstruct(self, capsys) -> None:
        code = main(["dkg", "--n", "4", "--t", "1", "--reconstruct", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(set(payload["reconstructed"].values())) == 1

    def test_vss_command(self, capsys) -> None:
        code = main(
            ["vss", "--n", "4", "--t", "1", "--secret", "42",
             "--reconstruct", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["completed_nodes"] == [1, 2, 3, 4]
        assert set(payload["reconstructions"].values()) == {42}

    def test_vss_hashed_codec_smaller(self, capsys) -> None:
        main(["vss", "--n", "7", "--t", "2", "--json"])
        full = json.loads(capsys.readouterr().out)
        main(["vss", "--n", "7", "--t", "2", "--hashed-codec", "--json"])
        hashed = json.loads(capsys.readouterr().out)
        assert hashed["bytes"] < full["bytes"]

    def test_renew_command(self, capsys) -> None:
        code = main(
            ["renew", "--n", "4", "--t", "1", "--phases", "2", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["secret_invariant"] is True
        assert len(payload["phases"]) == 2
        assert all(p["public_key_stable"] for p in payload["phases"])

    def test_renew_tcp_transport(self, capsys) -> None:
        code = main(
            ["renew", "--n", "4", "--t", "1", "--phases", "1",
             "--transport", "tcp", "--time-scale", "0.005", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["transport"] == "asyncio-tcp"
        assert payload["succeeded"] is True
        assert payload["secret_invariant"] is True
        assert payload["phases"][0]["renewed_nodes"] == [1, 2, 3, 4]

    def test_groupmod_sim_command(self, capsys) -> None:
        code = main(["groupmod", "--n", "4", "--t", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["new_node"] == 5
        assert payload["share_delivered"] is True
        assert payload["secret_invariant"] is True

    def test_groupmod_tcp_transport(self, capsys) -> None:
        code = main(
            ["groupmod", "--n", "4", "--t", "1", "--transport", "tcp",
             "--time-scale", "0.005", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["succeeded"] is True
        assert payload["share_verified"] is True
        assert payload["agreement_nodes"] == [1, 2, 3, 4]

    def test_resilience_command(self, capsys) -> None:
        code = main(["resilience", "--t", "1", "--f", "0", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["bound"] == 4
        assert payload["success_by_n"]["4"] is True
        assert payload["success_by_n"]["3"] is False

    def test_serve_and_loadgen_round_trip(self, capsys) -> None:
        import os
        import pathlib
        import socket
        import subprocess
        import sys

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--n", "4", "--t", "1",
             "--seed", "3", "--port", str(port), "--pool", "4",
             "--duration", "60"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            code = main(
                ["loadgen", "--port", str(port), "--clients", "2",
                 "--requests", "2", "--json"]
            )
        finally:
            server.terminate()
            server.wait(timeout=10)
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["completed"] == 4
        assert payload["errors"] == 0
        assert payload["invalid_signatures"] == 0

    def test_serve_loadgen_parser_defaults(self) -> None:
        parser = build_parser()
        serve = parser.parse_args(["serve"])
        assert (serve.pool, serve.port, serve.duration) == (16, 7710, 0.0)
        loadgen = parser.parse_args(["loadgen", "--op", "mix"])
        assert (loadgen.clients, loadgen.requests, loadgen.op) == (8, 10, "mix")
        with pytest.raises(SystemExit):
            parser.parse_args(["loadgen", "--op", "nope"])

    def test_parser_requires_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_group_rejected(self) -> None:
        with pytest.raises(KeyError):
            main(["dkg", "--n", "4", "--t", "1", "--group", "nope"])


class TestFuzzCli:
    def test_fuzz_smoke_campaign(self, capsys, tmp_path) -> None:
        code = main(
            ["fuzz", "--protocol", "dkg", "--seeds", "5", "--smoke",
             "--reproducers", str(tmp_path), "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["seeds"] == 5
        assert payload["mutations"] > 0
        assert payload["self_check"]["ok"] is True
        # The self-check's planted-fault reproducer must land on disk.
        assert payload["self_check"]["reproducer"] is not None

    def test_fuzz_report_file(self, capsys, tmp_path) -> None:
        report = tmp_path / "report.json"
        code = main(
            ["fuzz", "--seeds", "2", "--smoke", "--no-self-check",
             "--report", str(report), "--json"]
        )
        capsys.readouterr()
        assert code == 0
        document = json.loads(report.read_text())
        assert document["ok"] is True
        assert document["protocol"] == "dkg"

    def test_fuzz_missing_capture_is_structured_error(self, capsys) -> None:
        code = main(["fuzz", "--capture", "/nonexistent/capture.jsonl"])
        err = capsys.readouterr().err
        assert code == 2
        payload = json.loads(err)
        assert payload["error"] == "FileNotFoundError"

    def test_fuzz_parser_defaults(self) -> None:
        parser = build_parser()
        args = parser.parse_args(["fuzz"])
        assert (args.protocol, args.seeds, args.max_ops) == ("dkg", 50, 8)
        with pytest.raises(SystemExit):
            parser.parse_args(["fuzz", "--protocol", "nope"])


class TestReplayCliErrors:
    def test_truncated_capture_structured_error(self, capsys, tmp_path) -> None:
        from repro.dkg.config import DkgConfig
        from repro.crypto.groups import toy_group
        from repro.obs.replay import capture_meta

        meta = {
            "record": "meta",
            **capture_meta(
                "dkg", DkgConfig(n=4, t=1, group=toy_group()), 0, "sim", tau=0
            ),
        }
        path = tmp_path / "truncated.jsonl"
        path.write_text(json.dumps(meta) + "\n")
        code = main(["replay", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        payload = json.loads(err)
        assert payload["error"] == "TruncatedCaptureError"
        assert payload["truncated"] is True
        assert payload["capture"] == str(path)

    def test_missing_capture_structured_error(self, capsys) -> None:
        code = main(["replay", "/nonexistent/capture.jsonl"])
        err = capsys.readouterr().err
        assert code == 2
        payload = json.loads(err)
        assert payload["error"] == "FileNotFoundError"
        assert payload["truncated"] is False
