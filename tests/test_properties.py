"""Whole-protocol property-based tests.

Hypothesis drives randomized deployments (n, t, f), network conditions,
seeds and fault schedules through complete VSS/DKG/renewal runs and
checks the Definition 3.1 / 4.1 properties on every one.  Because the
simulator is deterministic, every failure shrinks to a reproducible
(config, seed) pair.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto import Share, reconstruct_secret
from repro.crypto.polynomials import interpolate_at
from repro.sim.adversary import Adversary
from repro.sim.network import ConstantDelay, ExponentialDelay, UniformDelay
from repro.dkg import DkgConfig, run_dkg
from repro.proactive import ProactiveSystem
from repro.vss import VssConfig, run_vss

from tests.helpers import default_test_group

G = default_test_group()

# (t, f, slack) drawn small enough to keep runs fast; n derived.
deployments = st.tuples(
    st.integers(min_value=1, max_value=2),   # t
    st.integers(min_value=0, max_value=1),   # f
    st.integers(min_value=0, max_value=2),   # slack above the bound
)

delay_models = st.sampled_from(
    [
        ConstantDelay(1.0),
        UniformDelay(0.2, 2.0),
        UniformDelay(0.9, 1.1),
        ExponentialDelay(mean=1.0),
        # Extreme jitter: delays spanning three orders of magnitude give
        # essentially arbitrary message reordering — the defining stress
        # of the asynchronous model.
        UniformDelay(0.01, 50.0),
    ]
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)

COMMON = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVssProperties:
    @given(deployments, seeds, delay_models)
    @settings(**COMMON)
    def test_liveness_and_consistency(self, dep, seed, delays) -> None:
        t, f, slack = dep
        n = 3 * t + 2 * f + 1 + slack
        cfg = VssConfig(n=n, t=t, f=f, group=G)
        secret = seed % G.q
        res = run_vss(cfg, secret=secret, seed=seed, delay_model=delays)
        # Liveness: every node completes.
        assert res.completed_nodes == list(range(1, n + 1))
        # Consistency: single commitment; t+1 shares give the secret.
        commitment = res.agreed_commitment()
        shares = [
            Share(i, out.share, commitment)
            for i, out in sorted(res.shares.items())[: t + 1]
        ]
        assert reconstruct_secret(shares, t, G.q) == secret

    @given(deployments, seeds)
    @settings(**COMMON)
    def test_crash_recovery_liveness(self, dep, seed) -> None:
        t, f, slack = dep
        if f == 0:
            f = 1
        n = 3 * t + 2 * f + 1 + slack
        cfg = VssConfig(n=n, t=t, f=f, group=G)
        victim = (seed % n) + 1
        crash_at = 0.1 + (seed % 7) * 0.5
        adv = Adversary.crash_only(
            t=t, f=f, crash_plan=[(crash_at, victim, 40.0)]
        )
        res = run_vss(cfg, secret=1, seed=seed, adversary=adv)
        assert set(res.completed_nodes) == set(range(1, n + 1))

    @given(deployments, seeds)
    @settings(**COMMON)
    def test_all_shares_verify(self, dep, seed) -> None:
        t, f, slack = dep
        n = 3 * t + 2 * f + 1 + slack
        res = run_vss(VssConfig(n=n, t=t, f=f, group=G), secret=7, seed=seed)
        commitment = res.agreed_commitment()
        for i, out in res.shares.items():
            assert commitment.verify_share(i, out.share)


class TestDkgProperties:
    @given(deployments, seeds, delay_models)
    @settings(**COMMON)
    def test_agreement_consistency_correctness(self, dep, seed, delays) -> None:
        t, f, slack = dep
        n = 3 * t + 2 * f + 1 + slack
        cfg = DkgConfig(n=n, t=t, f=f, group=G)
        res = run_dkg(cfg, seed=seed, delay_model=delays)
        # Liveness + agreement (property accessors raise on divergence).
        assert res.succeeded
        assert len(res.q_set) == t + 1
        # Correctness: shares reconstruct sum of Q's dealt secrets, and
        # the public key matches.
        assert res.reconstruct() == res.expected_secret()
        assert res.public_key == G.commit(res.expected_secret())

    @given(seeds)
    @settings(**COMMON)
    def test_privacy_no_t_subset_reconstructs(self, seed) -> None:
        res = run_dkg(DkgConfig(n=7, t=2, f=0, group=G), seed=seed)
        secret = res.expected_secret()
        items = sorted(res.shares.items())
        # every 2-subset of shares interpolates to something wrong
        import itertools

        for combo in itertools.combinations(items, 2):
            assert interpolate_at(list(combo), 0, G.q) != secret


class TestRenewalProperties:
    @given(seeds, st.integers(min_value=1, max_value=3))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_secret_invariant_random_phases(self, seed, phases) -> None:
        system = ProactiveSystem(DkgConfig(n=7, t=2, group=G), seed=seed)
        system.bootstrap()
        secret = system.reconstruct()
        pk = system.public_key
        for _ in range(phases):
            report = system.renew()
            assert system.reconstruct() == secret
            assert report.public_key == pk
            for i, share in report.shares.items():
                assert report.commitment.verify_share(i, share)
