"""Tests for the deterministic event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue, MessageDelivery, TimerFired


def _msg(i: int) -> MessageDelivery:
    return MessageDelivery(sender=1, recipient=2, payload=i, size_bytes=0)


class TestEventQueue:
    def test_pops_in_time_order(self) -> None:
        q = EventQueue()
        q.push(3.0, _msg(3))
        q.push(1.0, _msg(1))
        q.push(2.0, _msg(2))
        order = [q.pop()[1].payload for _ in range(3)]
        assert order == [1, 2, 3]

    def test_ties_broken_by_insertion_order(self) -> None:
        q = EventQueue()
        for i in range(5):
            q.push(1.0, _msg(i))
        assert [q.pop()[1].payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_now_advances(self) -> None:
        q = EventQueue()
        q.push(5.5, _msg(0))
        assert q.now == 0.0
        q.pop()
        assert q.now == 5.5

    def test_rejects_scheduling_in_the_past(self) -> None:
        q = EventQueue()
        q.push(2.0, _msg(0))
        q.pop()
        with pytest.raises(ValueError):
            q.push(1.0, _msg(1))

    def test_len_and_bool(self) -> None:
        q = EventQueue()
        assert not q
        q.push(1.0, _msg(0))
        assert q and len(q) == 1

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_always_monotonic(self, times: list[float]) -> None:
        q = EventQueue()
        for i, t in enumerate(times):
            q.push(t, TimerFired(node=1, tag=i, timer_id=i))
        popped = [q.pop()[0] for _ in range(len(times))]
        assert popped == sorted(popped)
