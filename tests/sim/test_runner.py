"""Tests for the Simulation runner: delivery, timers, crash semantics,
determinism, and metrics accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import pytest

from repro.sim.adversary import Adversary
from repro.sim.network import ConstantDelay, RawPayload, UniformDelay
from repro.sim.node import Context, ProtocolNode, RecordingNode
from repro.sim.runner import Simulation


@dataclass
class PingNode(ProtocolNode):
    """Sends one ping to everyone on operator input; echoes pongs back."""

    pongs: list[int] = field(default_factory=list)

    def on_operator(self, payload: Any, ctx: Context) -> None:
        ctx.broadcast(RawPayload("ping", 100), include_self=False)

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        if payload.kind == "ping":
            ctx.send(sender, RawPayload("pong", 50))
        else:
            self.pongs.append(sender)


def _sim(n: int = 3, **kwargs: Any) -> tuple[Simulation, dict[int, PingNode]]:
    sim = Simulation(**kwargs)
    nodes = {i: PingNode(i) for i in range(1, n + 1)}
    for node in nodes.values():
        sim.add_node(node)
    return sim, nodes


class TestDelivery:
    def test_ping_pong_roundtrip(self) -> None:
        sim, nodes = _sim(3, seed=1)
        sim.inject(1, RawPayload("go", 0))
        sim.run()
        assert sorted(nodes[1].pongs) == [2, 3]

    def test_metrics_count_messages_and_bytes(self) -> None:
        sim, _ = _sim(3, seed=1)
        sim.inject(1, RawPayload("go", 0))
        sim.run()
        # 2 pings of 100 bytes + 2 pongs of 50 bytes
        assert sim.metrics.messages_total == 4
        assert sim.metrics.bytes_total == 300
        assert sim.metrics.messages_by_kind["ping"] == 2
        assert sim.metrics.bytes_by_kind["pong"] == 100

    def test_unknown_recipient_raises(self) -> None:
        sim, _ = _sim(2)
        with pytest.raises(KeyError):
            sim.enqueue_message(1, 99, RawPayload("x", 0))

    def test_duplicate_node_id_rejected(self) -> None:
        sim, _ = _sim(2)
        with pytest.raises(ValueError):
            sim.add_node(PingNode(1))


class TestDeterminism:
    def test_same_seed_same_trace(self) -> None:
        def trace(seed: int) -> list[tuple[float, int, Any]]:
            sim = Simulation(seed=seed, delay_model=UniformDelay())
            rec = {i: RecordingNode(i) for i in (1, 2, 3)}
            for r in rec.values():
                sim.add_node(r)
            pinger = PingNode(4)
            sim.add_node(pinger)
            sim.inject(4, RawPayload("go", 0))
            sim.run()
            return [x for r in rec.values() for x in r.received]

        assert trace(42) == trace(42)
        assert trace(42) != trace(43)

    def test_constant_delay_is_exact(self) -> None:
        sim = Simulation(seed=0, delay_model=ConstantDelay(2.5))
        rec = RecordingNode(2)
        sim.add_node(PingNode(1))
        sim.add_node(rec)
        sim.inject(1, RawPayload("go", 0), at=1.0)
        sim.run()
        assert rec.received[0][0] == pytest.approx(3.5)


class TestTimers:
    def test_timer_fires_and_can_be_cancelled(self) -> None:
        @dataclass
        class TimerNode(ProtocolNode):
            fired: list[Any] = field(default_factory=list)

            def on_operator(self, payload: Any, ctx: Context) -> None:
                keep = ctx.set_timer(1.0, "keep")
                kill = ctx.set_timer(1.0, "kill")
                ctx.cancel_timer(kill)

            def on_timer(self, tag: Any, ctx: Context) -> None:
                self.fired.append(tag)

        sim = Simulation(seed=0)
        node = TimerNode(1)
        sim.add_node(node)
        sim.inject(1, RawPayload("go", 0))
        sim.run()
        assert node.fired == ["keep"]

    def test_timer_suppressed_while_crashed(self) -> None:
        @dataclass
        class TimerNode(ProtocolNode):
            fired: list[Any] = field(default_factory=list)

            def on_operator(self, payload: Any, ctx: Context) -> None:
                ctx.set_timer(5.0, "late")

            def on_timer(self, tag: Any, ctx: Context) -> None:
                self.fired.append(tag)

        sim = Simulation(seed=0)
        node = TimerNode(1)
        sim.add_node(node)
        sim.inject(1, RawPayload("go", 0))
        sim.crash(1, at=2.0)
        sim.run()
        assert node.fired == []


class TestCrashSemantics:
    def test_messages_to_crashed_node_are_dropped(self) -> None:
        sim = Simulation(seed=0, delay_model=ConstantDelay(1.0))
        rec = RecordingNode(2)
        sim.add_node(PingNode(1))
        sim.add_node(rec)
        sim.crash(2, at=0.5)
        sim.inject(1, RawPayload("go", 0), at=1.0)  # ping arrives at 2.0
        sim.run()
        assert rec.received == []
        assert sim.metrics.deliveries_dropped == 1

    def test_recovery_restores_delivery_and_fires_hook(self) -> None:
        sim = Simulation(seed=0, delay_model=ConstantDelay(1.0))
        rec = RecordingNode(2)
        sim.add_node(PingNode(1))
        sim.add_node(rec)
        sim.crash(2, at=0.5)
        sim.recover(2, at=5.0)
        sim.inject(1, RawPayload("go", 0), at=6.0)
        sim.run()
        assert len(rec.received) == 1
        assert rec.recovered_at == [5.0]
        assert sim.metrics.crashes == 1
        assert sim.metrics.recoveries == 1

    def test_crash_plan_from_adversary_is_scheduled(self) -> None:
        adv = Adversary.crash_only(t=0, f=1, crash_plan=[(1.0, 2, 3.0)])
        sim = Simulation(seed=0, adversary=adv)
        rec = RecordingNode(2)
        sim.add_node(RecordingNode(1))
        sim.add_node(rec)
        sim.run()
        assert sim.metrics.crashes == 1
        assert rec.recovered_at == [4.0]

    def test_operator_input_dropped_while_crashed(self) -> None:
        sim = Simulation(seed=0)
        rec = RecordingNode(1)
        sim.add_node(rec)
        sim.crash(1, at=0.0)
        sim.inject(1, RawPayload("go", 0), at=1.0)
        sim.run()
        assert rec.received == []


class TestRunControls:
    def test_until_stops_early(self) -> None:
        sim = Simulation(seed=0, delay_model=ConstantDelay(10.0))
        rec = RecordingNode(2)
        sim.add_node(PingNode(1))
        sim.add_node(rec)
        sim.inject(1, RawPayload("go", 0))
        sim.run(until=5.0)
        assert rec.received == []
        sim.run()  # finish
        assert len(rec.received) == 1

    def test_event_budget_guards_livelock(self) -> None:
        @dataclass
        class LoopNode(ProtocolNode):
            def on_operator(self, payload: Any, ctx: Context) -> None:
                ctx.send(self.node_id, RawPayload("loop", 1))

            def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
                ctx.send(self.node_id, RawPayload("loop", 1))

        sim = Simulation(seed=0)
        sim.add_node(LoopNode(1))
        sim.inject(1, RawPayload("go", 0))
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run(max_events=100)

    def test_outputs_helpers(self) -> None:
        @dataclass
        class OutNode(ProtocolNode):
            def on_operator(self, payload: Any, ctx: Context) -> None:
                ctx.output(RawPayload("done", 0))

        sim = Simulation(seed=0)
        sim.add_node(OutNode(1))
        sim.add_node(OutNode(2))
        sim.inject(1, RawPayload("go", 0))
        sim.inject(2, RawPayload("go", 0))
        sim.run()
        assert len(sim.outputs_for(1)) == 1
        assert len(sim.outputs_of_kind("done")) == 2
        assert sim.metrics.completion_times.keys() == {1, 2}
