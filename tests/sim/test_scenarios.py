"""Tests for the canned fault scenario builders."""

from __future__ import annotations

import pytest

from repro.sim.scenarios import (
    crash_storm,
    fault_free,
    flaky_node,
    leader_assassination,
    rolling_restart,
)
from repro.dkg import DkgConfig, run_dkg

from tests.helpers import default_test_group

G = default_test_group()


class TestBuilders:
    def test_fault_free(self) -> None:
        spec = fault_free(2, 1)
        assert not spec.adversary.crash_plan
        assert not spec.adversary.byzantine

    def test_rolling_restart_serializes(self) -> None:
        spec = rolling_restart(2, 1, nodes=[3, 4, 5], downtime=5.0, gap=1.0)
        plan = spec.adversary.crash_plan
        assert len(plan) == 3
        # episodes never overlap (validated by the Adversary too)
        for (t1, _, d1), (t2, _, _) in zip(plan, plan[1:]):
            assert t1 + d1 <= t2

    def test_rolling_restart_requires_f(self) -> None:
        with pytest.raises(ValueError, match="f >= 1"):
            rolling_restart(2, 0, nodes=[1])

    def test_crash_storm_respects_budget(self) -> None:
        spec = crash_storm(2, 1, victims=[2, 3, 4], episodes=5, seed=1)
        assert len(spec.adversary.crash_plan) == 5
        assert spec.adversary.d_budget >= 5

    def test_crash_storm_window_validation(self) -> None:
        with pytest.raises(ValueError, match="window too small"):
            crash_storm(2, 1, victims=[2], episodes=50, window=10.0)

    def test_flaky_node_flaps(self) -> None:
        spec = flaky_node(2, 1, node=4, flaps=4)
        plan = spec.adversary.crash_plan
        assert len(plan) == 4
        assert all(node == 4 for _, node, _ in plan)

    def test_leader_assassination_spacing(self) -> None:
        spec = leader_assassination(2, 1, leaders=[1, 2], timeout=25.0)
        plan = spec.adversary.crash_plan
        assert plan[1][0] - plan[0][0] == 25.0


class TestScenariosEndToEnd:
    def test_dkg_survives_rolling_restart(self) -> None:
        spec = rolling_restart(2, 1, nodes=[3, 6], downtime=8.0, gap=2.0)
        res = run_dkg(
            DkgConfig(n=9, t=2, f=1, group=G), seed=5, adversary=spec.adversary
        )
        assert res.succeeded
        assert res.metrics.crashes == 2

    def test_dkg_survives_crash_storm(self) -> None:
        spec = crash_storm(2, 1, victims=[2, 4, 6, 8], episodes=4, seed=6)
        res = run_dkg(
            DkgConfig(n=9, t=2, f=1, group=G), seed=6, adversary=spec.adversary
        )
        assert res.succeeded

    def test_dkg_survives_flaky_node(self) -> None:
        spec = flaky_node(2, 1, node=5, flaps=3)
        res = run_dkg(
            DkgConfig(n=9, t=2, f=1, group=G), seed=7, adversary=spec.adversary
        )
        assert res.succeeded
        assert res.metrics.recoveries >= 2

    def test_dkg_survives_leader_assassination(self) -> None:
        from repro.sim.clock import TimeoutPolicy

        spec = leader_assassination(2, 1, leaders=[1], timeout=25.0)
        res = run_dkg(
            DkgConfig(
                n=9, t=2, f=1, group=G,
                timeout=TimeoutPolicy(initial=25.0, multiplier=2.0),
            ),
            seed=8,
            adversary=spec.adversary,
        )
        # the crashed leader's view times out; the next leader finishes
        assert all(
            res.nodes[i].completed is not None
            for i in range(2, 10)
        )
