"""Tests for the metrics accounting layer."""

from __future__ import annotations

from repro.sim.metrics import Metrics


class TestMetrics:
    def test_record_send_accumulates(self) -> None:
        metrics = Metrics()
        metrics.record_send(1, "a", 100)
        metrics.record_send(2, "a", 50)
        metrics.record_send(1, "b", 10)
        assert metrics.messages_total == 3
        assert metrics.bytes_total == 160
        assert metrics.messages_by_kind == {"a": 2, "b": 1}
        assert metrics.bytes_by_kind == {"a": 150, "b": 10}
        assert metrics.messages_by_sender == {1: 2, 2: 1}

    def test_completion_keeps_first_time(self) -> None:
        metrics = Metrics()
        metrics.record_completion(1, 5.0)
        metrics.record_completion(1, 9.0)
        metrics.record_completion(2, 7.0)
        assert metrics.completion_times == {1: 5.0, 2: 7.0}
        assert metrics.last_completion == 7.0

    def test_last_completion_empty(self) -> None:
        assert Metrics().last_completion is None

    def test_counters(self) -> None:
        metrics = Metrics()
        metrics.record_crash()
        metrics.record_recovery()
        metrics.record_leader_change()
        metrics.record_drop()
        assert (metrics.crashes, metrics.recoveries) == (1, 1)
        assert metrics.leader_changes == 1
        assert metrics.deliveries_dropped == 1

    def test_summary_shape(self) -> None:
        metrics = Metrics()
        metrics.record_send(1, "x", 5)
        metrics.record_completion(1, 2.0)
        summary = metrics.summary()
        assert summary["messages"] == 1
        assert summary["bytes"] == 5
        assert summary["completed_nodes"] == 1
        assert summary["last_completion"] == 2.0


class TestRegistrySchema:
    """The sim tallies export through the unified repro.obs schema."""

    def test_snapshot_uses_registry_schema(self) -> None:
        metrics = Metrics()
        metrics.record_send(1, "dkg.echo", 100)
        metrics.record_send(2, "dkg.echo", 100)
        metrics.record_send(1, "dkg.ready", 80)
        metrics.record_completion(1, 2.5)
        snap = metrics.snapshot()
        by_kind = {
            s["labels"]["kind"]: s["value"]
            for s in snap["repro_run_messages_total"]["samples"]
        }
        assert by_kind == {"dkg.echo": 2, "dkg.ready": 1}
        bytes_by_kind = {
            s["labels"]["kind"]: s["value"]
            for s in snap["repro_run_bytes_total"]["samples"]
        }
        assert bytes_by_kind == {"dkg.echo": 200, "dkg.ready": 80}
        assert (
            snap["repro_run_last_completion_time"]["samples"][0]["value"] == 2.5
        )

    def test_render_text_is_prometheus_exposition(self) -> None:
        metrics = Metrics()
        metrics.record_send(1, "dkg.send", 64)
        metrics.record_crash()
        text = metrics.render_text()
        assert 'repro_run_messages_total{kind="dkg.send"} 1' in text
        assert "repro_run_crashes_total 1" in text

    def test_publish_is_idempotent(self) -> None:
        # set_total semantics: re-publishing the same run into the same
        # registry must not double-count.
        from repro.obs.metrics import MetricsRegistry

        metrics = Metrics()
        metrics.record_send(1, "a", 10)
        reg = MetricsRegistry()
        metrics.publish(reg)
        metrics.publish(reg)
        snap = reg.snapshot(collect=False)
        assert snap["repro_run_messages_total"]["samples"][0]["value"] == 1

    def test_summary_surface_unchanged(self) -> None:
        # The historic bench surface stays exactly as it was.
        metrics = Metrics()
        assert set(metrics.summary()) == {
            "messages",
            "bytes",
            "crashes",
            "recoveries",
            "leader_changes",
            "completed_nodes",
            "last_completion",
        }
