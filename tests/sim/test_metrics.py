"""Tests for the metrics accounting layer."""

from __future__ import annotations

from repro.sim.metrics import Metrics


class TestMetrics:
    def test_record_send_accumulates(self) -> None:
        metrics = Metrics()
        metrics.record_send(1, "a", 100)
        metrics.record_send(2, "a", 50)
        metrics.record_send(1, "b", 10)
        assert metrics.messages_total == 3
        assert metrics.bytes_total == 160
        assert metrics.messages_by_kind == {"a": 2, "b": 1}
        assert metrics.bytes_by_kind == {"a": 150, "b": 10}
        assert metrics.messages_by_sender == {1: 2, 2: 1}

    def test_completion_keeps_first_time(self) -> None:
        metrics = Metrics()
        metrics.record_completion(1, 5.0)
        metrics.record_completion(1, 9.0)
        metrics.record_completion(2, 7.0)
        assert metrics.completion_times == {1: 5.0, 2: 7.0}
        assert metrics.last_completion == 7.0

    def test_last_completion_empty(self) -> None:
        assert Metrics().last_completion is None

    def test_counters(self) -> None:
        metrics = Metrics()
        metrics.record_crash()
        metrics.record_recovery()
        metrics.record_leader_change()
        metrics.record_drop()
        assert (metrics.crashes, metrics.recoveries) == (1, 1)
        assert metrics.leader_changes == 1
        assert metrics.deliveries_dropped == 1

    def test_summary_shape(self) -> None:
        metrics = Metrics()
        metrics.record_send(1, "x", 5)
        metrics.record_completion(1, 2.0)
        summary = metrics.summary()
        assert summary["messages"] == 1
        assert summary["bytes"] == 5
        assert summary["completed_nodes"] == 1
        assert summary["last_completion"] == 2.0
