"""Tests for delay models and payload protocol conformance."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.network import (
    AsymmetricDelay,
    ConstantDelay,
    ExponentialDelay,
    Payload,
    RawPayload,
    UniformDelay,
)

seeds = st.integers(min_value=0, max_value=2**32)


class TestDelayModels:
    @given(seeds)
    def test_constant(self, seed: int) -> None:
        rng = random.Random(seed)
        assert ConstantDelay(2.5).sample(rng, 1, 2) == 2.5

    @given(seeds)
    @settings(max_examples=30)
    def test_uniform_within_bounds(self, seed: int) -> None:
        rng = random.Random(seed)
        model = UniformDelay(0.5, 1.5)
        for _ in range(50):
            d = model.sample(rng, 1, 2)
            assert 0.5 <= d <= 1.5

    @given(seeds)
    @settings(max_examples=30)
    def test_exponential_floor(self, seed: int) -> None:
        rng = random.Random(seed)
        model = ExponentialDelay(mean=2.0, min_delay=0.3)
        for _ in range(50):
            assert model.sample(rng, 1, 2) >= 0.3

    def test_exponential_mean_roughly_correct(self) -> None:
        rng = random.Random(1)
        model = ExponentialDelay(mean=2.0, min_delay=0.0)
        samples = [model.sample(rng, 1, 2) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert 1.8 <= mean <= 2.2

    def test_asymmetric_uses_link_table(self) -> None:
        rng = random.Random(2)
        model = AsymmetricDelay(
            base={(1, 2): 5.0, (2, 1): 0.5}, jitter=0.0, default=1.0
        )
        assert model.sample(rng, 1, 2) == 5.0
        assert model.sample(rng, 2, 1) == 0.5
        assert model.sample(rng, 3, 4) == 1.0

    def test_asymmetric_jitter_bounded(self) -> None:
        rng = random.Random(3)
        model = AsymmetricDelay(base={}, jitter=0.4, default=2.0)
        for _ in range(50):
            d = model.sample(rng, 1, 2)
            assert 2.0 <= d <= 2.4


class TestPayloadProtocol:
    def test_raw_payload_conforms(self) -> None:
        payload = RawPayload("demo", 128)
        assert isinstance(payload, Payload)
        assert payload.byte_size() == 128
        assert payload.kind == "demo"

    def test_protocol_messages_conform(self) -> None:
        # every protocol message class satisfies the Payload protocol
        from repro.vss.messages import HelpMsg, SessionId
        from repro.dkg.messages import DkgHelpMsg
        from repro.proactive.messages import ClockTickMsg
        from repro.groupmod.messages import NodeAddRequestMsg

        for msg in (
            HelpMsg(SessionId(1, 0)),
            DkgHelpMsg(0),
            ClockTickMsg(1),
            NodeAddRequestMsg(8, 0),
        ):
            assert isinstance(msg, Payload)
            assert msg.byte_size() > 0
            assert msg.kind
