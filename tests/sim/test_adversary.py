"""Tests for the hybrid-model adversary's constraints and scheduling."""

from __future__ import annotations

import random

import pytest

from repro.sim.adversary import Adversary, CrashBudgetExceeded


class TestConstruction:
    def test_byzantine_set_bounded_by_t(self) -> None:
        with pytest.raises(ValueError, match="exceeds t"):
            Adversary(t=1, f=0, byzantine=frozenset({1, 2}))

    def test_byzantine_nodes_cannot_be_crashed(self) -> None:
        with pytest.raises(ValueError, match="non-Byzantine"):
            Adversary(
                t=1,
                f=1,
                byzantine=frozenset({3}),
                crash_plan=[(0.0, 3, None)],
            )

    def test_crash_budget_enforced(self) -> None:
        plan = [(float(i), 1, 0.5) for i in range(5)]
        with pytest.raises(CrashBudgetExceeded):
            Adversary(t=0, f=1, crash_plan=plan, d_budget=3)

    def test_simultaneous_crashes_bounded_by_f(self) -> None:
        # Two overlapping crash intervals with f=1 is illegal.
        with pytest.raises(ValueError, match="simultaneous"):
            Adversary(
                t=0,
                f=1,
                crash_plan=[(0.0, 1, 10.0), (5.0, 2, 10.0)],
                d_budget=5,
            )

    def test_sequential_crashes_within_f_allowed(self) -> None:
        adv = Adversary(
            t=0,
            f=1,
            crash_plan=[(0.0, 1, 2.0), (3.0, 2, 2.0)],
            d_budget=5,
        )
        assert len(adv.crash_plan) == 2

    def test_permanent_crashes_counted_against_f(self) -> None:
        with pytest.raises(ValueError, match="simultaneous"):
            Adversary(
                t=0,
                f=1,
                crash_plan=[(0.0, 1, None), (1.0, 2, None)],
                d_budget=5,
            )


class TestScheduling:
    def test_rushing_delivers_to_byzantine_immediately(self) -> None:
        adv = Adversary.corrupting(t=1, f=0, byzantine={2}, rushing=True)
        rng = random.Random(0)
        assert adv.delivery_delay(rng, 1, 2, base_delay=5.0) == adv.rush_delay
        assert adv.delivery_delay(rng, 1, 3, base_delay=5.0) == 5.0

    def test_non_rushing_leaves_delays_alone(self) -> None:
        adv = Adversary.corrupting(t=1, f=0, byzantine={2}, rushing=False)
        rng = random.Random(0)
        assert adv.delivery_delay(rng, 1, 2, base_delay=5.0) == 5.0

    def test_byzantine_send_delay_stretches_corrupt_traffic(self) -> None:
        adv = Adversary.corrupting(
            t=1, f=0, byzantine={2}, byzantine_send_delay=30.0, rushing=False
        )
        rng = random.Random(0)
        assert adv.delivery_delay(rng, 2, 1, base_delay=1.0) == 31.0
        assert adv.delivery_delay(rng, 1, 3, base_delay=1.0) == 1.0

    def test_passive_factory(self) -> None:
        adv = Adversary.passive(t=2, f=1)
        assert not adv.byzantine
        assert not adv.crash_plan
        assert adv.is_byzantine(1) is False
