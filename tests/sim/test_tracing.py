"""Tests for the simulation tracer/observer facility."""

from __future__ import annotations

from repro.sim.network import ConstantDelay, RawPayload
from repro.sim.node import RecordingNode
from repro.sim.runner import Simulation
from repro.sim.tracing import Tracer

from tests.helpers import default_test_group



def _traced_run() -> tuple[Tracer, Simulation]:
    tracer = Tracer()
    sim = Simulation(
        seed=1, delay_model=ConstantDelay(1.0), observers=[tracer]
    )
    sim.add_node(RecordingNode(1))
    sim.add_node(RecordingNode(2))
    sim.inject(1, RawPayload("go", 0))
    sim.enqueue_message(1, 2, RawPayload("ping", 10))
    sim.set_timer(2, 5.0, "tick")
    sim.crash(1, at=3.0)
    sim.recover(1, at=4.0)
    sim.run()
    return tracer, sim


class TestTracer:
    def test_categories_recorded(self) -> None:
        tracer, _ = _traced_run()
        counts = tracer.counts()
        assert counts["operator"] == 1
        assert counts["deliver"] == 1
        assert counts["timer"] == 1
        assert counts["crash"] == 1
        assert counts["recover"] == 1

    def test_records_are_time_ordered(self) -> None:
        tracer, _ = _traced_run()
        times = [r.time for r in tracer.records]
        assert times == sorted(times)

    def test_queries(self) -> None:
        tracer, _ = _traced_run()
        assert all(r.node == 2 for r in tracer.of_category("deliver"))
        first_crash = tracer.first("crash")
        assert first_crash is not None and first_crash.time == 3.0
        assert tracer.first("deliver", node=99) is None
        assert len(tracer.records_for(2)) == 2  # delivery + timer

    def test_transcript_renders(self) -> None:
        tracer, _ = _traced_run()
        text = tracer.transcript()
        assert "deliver" in text and "ping from 1" in text

    def test_limit_drops_excess(self) -> None:
        tracer = Tracer(limit=2)
        sim = Simulation(seed=2, observers=[tracer])
        sim.add_node(RecordingNode(1))
        for k in range(5):
            sim.inject(1, RawPayload("x", 0), at=float(k))
        sim.run()
        assert len(tracer.records) == 2
        assert tracer.dropped == 3
        assert "dropped" in tracer.transcript()

    def test_tracing_full_vss_run(self) -> None:
        from repro.vss import SessionId, ShareInput, VssConfig, VssNode

        tracer = Tracer()
        cfg = VssConfig(n=4, t=1, group=default_test_group())
        sim = Simulation(seed=3, observers=[tracer])
        sid = SessionId(1, 0)
        for i in cfg.indices:
            sim.add_node(VssNode(i, cfg, sid))
        sim.inject(1, ShareInput(sid, 42), at=0.0)
        sim.run()
        counts = tracer.counts()
        # n sends + n^2 echoes + n^2 readies delivered
        assert counts["deliver"] == 4 + 2 * 16
        assert counts["operator"] == 1
        # every node's trace shows protocol progress
        for i in cfg.indices:
            assert any("vss.send" in r.detail for r in tracer.records_for(i))
