"""Tests for the simulated CA and node key stores."""

from __future__ import annotations

import random

from repro.sim.pki import CertificateAuthority, KeyStore

from tests.helpers import default_test_group


def _setup() -> tuple[CertificateAuthority, KeyStore, random.Random]:
    rng = random.Random(5)
    ca = CertificateAuthority(default_test_group())
    ks = KeyStore.enroll(1, ca, rng)
    return ca, ks, rng


class TestCertificateAuthority:
    def test_enroll_and_verify(self) -> None:
        ca, ks, rng = _setup()
        sig = ks.sign(b"hello", rng)
        assert ca.verify(1, b"hello", sig)
        assert not ca.verify(1, b"bye", sig)

    def test_unknown_node_fails_verification(self) -> None:
        ca, ks, rng = _setup()
        sig = ks.sign(b"hello", rng)
        assert not ca.verify(2, b"hello", sig)

    def test_revocation(self) -> None:
        ca, ks, rng = _setup()
        sig = ks.sign(b"hello", rng)
        ca.revoke(1)
        assert not ca.verify(1, b"hello", sig)
        assert len(ca.revocation_list) == 1
        assert ca.revocation_list[0].revoked

    def test_reissue_bumps_serial_and_revokes_old(self) -> None:
        ca, ks, rng = _setup()
        first = ca._certs[1].serial
        ca.issue(1, default_test_group().commit(123))
        assert ca._certs[1].serial == first + 1
        assert len(ca.revocation_list) == 1


class TestKeyStore:
    def test_rotate_invalidates_old_signatures(self) -> None:
        ca, ks, rng = _setup()
        old_sig = ks.sign(b"msg", rng)
        ks.rotate(rng)
        assert not ca.verify(1, b"msg", old_sig)
        new_sig = ks.sign(b"msg", rng)
        assert ca.verify(1, b"msg", new_sig)

    def test_rotation_appears_on_revocation_list(self) -> None:
        ca, ks, rng = _setup()
        ks.rotate(rng)
        assert len(ca.revocation_list) == 1
