"""Tests for weak-synchrony timeout schedules and phase clocks."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clock import PhaseClock, TimeoutPolicy


class TestTimeoutPolicy:
    def test_geometric_growth(self) -> None:
        policy = TimeoutPolicy(initial=10.0, multiplier=2.0)
        assert policy.timeout(0) == 10.0
        assert policy.timeout(1) == 20.0
        assert policy.timeout(3) == 80.0

    def test_cap(self) -> None:
        policy = TimeoutPolicy(initial=10.0, multiplier=10.0, cap=500.0)
        assert policy.timeout(5) == 500.0

    @given(st.integers(min_value=0, max_value=30))
    def test_monotone_nondecreasing(self, k: int) -> None:
        policy = TimeoutPolicy(initial=5.0, multiplier=1.5)
        assert policy.timeout(k + 1) >= policy.timeout(k)

    def test_eventually_exceeds_any_delay(self) -> None:
        # The liveness argument: for any fixed real delay D there is an
        # attempt k with timeout(k) > D (until the cap).
        policy = TimeoutPolicy(initial=1.0, multiplier=2.0, cap=1e9)
        d = 1e6
        assert any(policy.timeout(k) > d for k in range(40))


class TestPhaseClock:
    def test_tick_times(self) -> None:
        clk = PhaseClock(interval=100.0, skew=3.0)
        assert clk.tick_time(1) == 103.0
        assert clk.tick_time(2) == 203.0

    def test_phase_zero_rejected(self) -> None:
        with pytest.raises(ValueError):
            PhaseClock(interval=10.0).tick_time(0)

    def test_skewed_clocks_preserve_order_within_interval(self) -> None:
        fast = PhaseClock(interval=100.0, skew=0.0)
        slow = PhaseClock(interval=100.0, skew=30.0)
        # Same phase starts within one interval of each other.
        assert abs(fast.tick_time(5) - slow.tick_time(5)) < 100.0
