"""Tests for univariate polynomials and Lagrange interpolation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import toy_group
from repro.crypto.polynomials import (
    Polynomial,
    interpolate_at,
    interpolate_polynomial,
    lagrange_coefficients,
)

Q = toy_group().q

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=Q - 1), min_size=1, max_size=8
)


class TestPolynomial:
    def test_zero_polynomial_normalization(self) -> None:
        p = Polynomial((), Q)
        assert p.coeffs == (0,)
        assert p(12345) == 0

    @given(coeff_lists, st.integers(min_value=0, max_value=Q - 1))
    def test_horner_matches_naive(self, coeffs: list[int], y: int) -> None:
        p = Polynomial(tuple(coeffs), Q)
        naive = sum(c * pow(y, i, Q) for i, c in enumerate(coeffs)) % Q
        assert p(y) == naive

    @given(coeff_lists, coeff_lists, st.integers(min_value=0, max_value=Q - 1))
    def test_add_is_pointwise(self, ca: list[int], cb: list[int], y: int) -> None:
        a, b = Polynomial(tuple(ca), Q), Polynomial(tuple(cb), Q)
        assert a.add(b)(y) == (a(y) + b(y)) % Q

    @given(coeff_lists, st.integers(), st.integers(min_value=0, max_value=Q - 1))
    def test_scale(self, coeffs: list[int], k: int, y: int) -> None:
        p = Polynomial(tuple(coeffs), Q)
        assert p.scale(k)(y) == (k * p(y)) % Q

    def test_add_rejects_mismatched_fields(self) -> None:
        with pytest.raises(ValueError):
            Polynomial((1,), Q).add(Polynomial((1,), Q - 2))

    def test_random_with_fixed_constant_term(self) -> None:
        rng = random.Random(7)
        p = Polynomial.random(5, Q, rng, constant_term=42)
        assert p.constant_term == 42
        assert p.degree == 5

    def test_random_rejects_negative_degree(self) -> None:
        with pytest.raises(ValueError):
            Polynomial.random(-1, Q, random.Random(0))

    def test_coefficients_reduced_mod_q(self) -> None:
        p = Polynomial((Q + 3, 2 * Q + 1), Q)
        assert p.coeffs == (3, 1)


class TestLagrange:
    @given(st.integers(min_value=0, max_value=5), st.data())
    @settings(max_examples=60)
    def test_interpolate_at_recovers_evaluation(self, degree: int, data) -> None:
        rng = random.Random(data.draw(st.integers(0, 2**32)))
        poly = Polynomial.random(degree, Q, rng)
        indices = rng.sample(range(1, 50), degree + 1)
        points = [(i, poly(i)) for i in indices]
        x = data.draw(st.integers(min_value=0, max_value=100))
        assert interpolate_at(points, x, Q) == poly(x)

    @given(st.integers(min_value=0, max_value=5), st.integers(0, 2**32))
    @settings(max_examples=60)
    def test_interpolate_polynomial_recovers_coefficients(
        self, degree: int, seed: int
    ) -> None:
        rng = random.Random(seed)
        poly = Polynomial.random(degree, Q, rng)
        indices = rng.sample(range(1, 100), degree + 1)
        recovered = interpolate_polynomial([(i, poly(i)) for i in indices], Q)
        assert recovered.coeffs == poly.coeffs

    def test_lagrange_coefficients_sum_to_one_at_member_point(self) -> None:
        # Interpolating at one of the nodes: the coefficient of that node
        # is 1 and the others 0.
        lambdas = lagrange_coefficients([1, 2, 3], 2, Q)
        assert lambdas == [0, 1, 0]

    def test_secret_share_reconstruction_example(self) -> None:
        # A (5, 2) Shamir sharing reconstructs from any 3 shares.
        rng = random.Random(3)
        poly = Polynomial.random(2, Q, rng, constant_term=99)
        shares = {i: poly(i) for i in range(1, 6)}
        for subset in [(1, 2, 3), (1, 3, 5), (2, 4, 5)]:
            pts = [(i, shares[i]) for i in subset]
            assert interpolate_at(pts, 0, Q) == 99

    def test_duplicate_indices_rejected(self) -> None:
        with pytest.raises(ValueError):
            lagrange_coefficients([1, 1, 2], 0, Q)
        with pytest.raises(ValueError):
            interpolate_polynomial([(1, 5), (1, 6)], Q)

    def test_interpolate_empty_rejected(self) -> None:
        with pytest.raises(ValueError):
            interpolate_polynomial([], Q)

    @given(st.integers(min_value=1, max_value=4), st.integers(0, 2**32))
    @settings(max_examples=40)
    def test_too_few_points_give_wrong_secret_generically(
        self, degree: int, seed: int
    ) -> None:
        # With only `degree` points (one short), interpolation yields a
        # lower-degree polynomial that generically misses the secret:
        # this is the privacy side of Shamir sharing.
        rng = random.Random(seed)
        poly = Polynomial.random(degree, Q, rng)
        points = [(i, poly(i)) for i in range(1, degree + 1)]
        guess = interpolate_at(points, 0, Q)
        # Not a theorem for every polynomial (the top coefficient could
        # be 0), but overwhelmingly true for random ones; tolerate the
        # rare coincidence by checking degree freedom instead.
        if poly.coeffs[-1] != 0:
            assert guess != poly.constant_term or degree == 0
