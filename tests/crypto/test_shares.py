"""Tests for Share containers and client-side reconstruction.

Parameterized over both group backends via the ``bgroup`` fixture.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.polynomials import Polynomial
from repro.crypto.shares import (
    ReconstructionError,
    Share,
    reconstruct_raw,
    reconstruct_secret,
)

# Valid in both scalar fields (toy q is 64-bit, secp256k1 n is 256-bit).
secrets = st.integers(0, 2**63)


def _deal(group, t: int, secret: int, seed: int):
    f = BivariatePolynomial.random_symmetric(
        t, group.q, random.Random(seed), secret=secret
    )
    c = FeldmanCommitment.commit(f, group)
    shares = [Share(i, f.evaluate(i, 0), c) for i in range(1, 3 * t + 2)]
    return f, c, shares


class TestShare:
    def test_verify(self, bgroup) -> None:
        _, c, shares = _deal(bgroup, 2, 55, 0)
        assert all(s.verify() for s in shares)
        bad = Share(1, (shares[0].value + 1) % bgroup.q, c)
        assert not bad.verify()

    def test_public_key(self, bgroup) -> None:
        _, _, shares = _deal(bgroup, 2, 55, 1)
        assert shares[0].public_key == bgroup.commit(55)

    def test_vector_commitment_share(self, bgroup) -> None:
        rng = random.Random(2)
        poly = Polynomial.random(2, bgroup.q, rng, constant_term=9)
        vec = FeldmanVector.commit(poly, bgroup)
        assert Share(3, poly(3), vec).verify()


class TestReconstructSecret:
    @given(secrets, st.integers(1, 3), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_reconstructs_from_exactly_t_plus_one(
        self, bgroup, secret: int, t: int, seed: int
    ) -> None:
        _, _, shares = _deal(bgroup, t, secret, seed)
        assert reconstruct_secret(shares[: t + 1], t, bgroup.q) == secret % bgroup.q

    @given(secrets, st.integers(1, 3), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_reconstructs_from_surplus_shares(
        self, bgroup, secret: int, t: int, seed: int
    ) -> None:
        _, _, shares = _deal(bgroup, t, secret, seed)
        assert reconstruct_secret(shares, t, bgroup.q) == secret % bgroup.q

    def test_bad_shares_are_filtered_out(self, bgroup) -> None:
        _, c, shares = _deal(bgroup, 2, 1000, 5)
        corrupted = [
            Share(s.index, (s.value + 3) % bgroup.q, c) for s in shares[:2]
        ]
        mixed = corrupted + shares[2:]
        assert reconstruct_secret(mixed, 2, bgroup.q) == 1000

    def test_too_few_valid_shares_raises(self, bgroup) -> None:
        _, c, shares = _deal(bgroup, 2, 7, 6)
        corrupted = [
            Share(s.index, (s.value + 3) % bgroup.q, c) for s in shares
        ]
        with pytest.raises(ReconstructionError):
            reconstruct_secret(corrupted[:2] + shares[:2], 2, bgroup.q)

    def test_duplicate_indices_collapsed(self, bgroup) -> None:
        _, _, shares = _deal(bgroup, 2, 31, 7)
        duplicated = [shares[0], shares[0], shares[1], shares[2]]
        assert reconstruct_secret(duplicated, 2, bgroup.q) == 31

    def test_reconstruct_raw(self, bgroup) -> None:
        rng = random.Random(8)
        poly = Polynomial.random(3, bgroup.q, rng, constant_term=77)
        pts = [(i, poly(i)) for i in (2, 4, 6, 8)]
        assert reconstruct_raw(pts, bgroup.q) == 77


class TestBatchedFiltering:
    def test_garbage_duplicate_cannot_shadow_honest_share(self, bgroup) -> None:
        """The first *valid* share per index wins: a Byzantine node
        racing a garbage share in front of the honest one must not
        knock that index out of the reconstruction."""
        _, c, shares = _deal(bgroup, 2, 99, 4)
        garbage = Share(shares[0].index, (shares[0].value + 7) % bgroup.q, c)
        mixed = [garbage, shares[0], shares[1], shares[2]]
        assert reconstruct_secret(mixed, 2, bgroup.q) == 99

    def test_batch_filter_drops_only_bad_shares(self, bgroup) -> None:
        _, c, shares = _deal(bgroup, 2, 31, 5)
        bad = [
            Share(s.index, (s.value + 1) % bgroup.q, c) for s in shares[3:5]
        ]
        assert (
            reconstruct_secret(
                shares[:3] + bad, 2, bgroup.q, rng=random.Random(1)
            )
            == 31
        )
        with pytest.raises(ReconstructionError):
            reconstruct_secret(shares[:2] + bad, 2, bgroup.q)
