"""Crypto-layer fixtures: the backend matrix.

``bgroup`` parameterizes backend-generic crypto property tests over
both group backends — the modp toy group (64-bit q: fast, protocol
logic dominates) and secp256k1 (the real curve; there is no toy-sized
elliptic backend, and point arithmetic is cheap enough to property-test
directly).  Hypothesis strategies in these tests draw scalars from
``[0, 2**63)``, valid in either scalar field.
"""

from __future__ import annotations

import pytest

from repro.crypto.groups import group_by_name, toy_group

_BACKEND_GROUPS = {
    "modp": toy_group,
    "secp256k1": lambda: group_by_name("secp256k1"),
}


@pytest.fixture(
    scope="session",
    params=tuple(_BACKEND_GROUPS),
    ids=tuple(_BACKEND_GROUPS),
)
def bgroup(request):
    """One group per backend, for backend-generic crypto properties."""
    return _BACKEND_GROUPS[request.param]()
