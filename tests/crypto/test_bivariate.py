"""Tests for symmetric bivariate polynomials (the HybridVSS dealer's object)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.groups import toy_group

Q = toy_group().q

degrees = st.integers(min_value=0, max_value=5)
seeds = st.integers(min_value=0, max_value=2**32)
points = st.integers(min_value=0, max_value=200)


class TestConstruction:
    @given(degrees, seeds)
    def test_random_symmetric_is_symmetric(self, t: int, seed: int) -> None:
        f = BivariatePolynomial.random_symmetric(t, Q, random.Random(seed))
        assert f.is_symmetric()
        assert f.degree == t

    @given(degrees, seeds)
    def test_secret_is_f00(self, t: int, seed: int) -> None:
        f = BivariatePolynomial.random_symmetric(
            t, Q, random.Random(seed), secret=1234
        )
        assert f.secret == 1234
        assert f.evaluate(0, 0) == 1234

    def test_general_polynomial_usually_not_symmetric(self) -> None:
        f = BivariatePolynomial.random_general(3, Q, random.Random(0))
        assert not f.is_symmetric()

    def test_rejects_non_square_matrix(self) -> None:
        with pytest.raises(ValueError):
            BivariatePolynomial(((1, 2), (3,)), Q)

    def test_coefficients_reduced(self) -> None:
        f = BivariatePolynomial(((Q + 1,),), Q)
        assert f.coeffs == ((1,),)


class TestEvaluation:
    @given(degrees, seeds, points, points)
    @settings(max_examples=60)
    def test_symmetry_of_evaluation(self, t: int, seed: int, x: int, y: int) -> None:
        f = BivariatePolynomial.random_symmetric(t, Q, random.Random(seed))
        assert f.evaluate(x, y) == f.evaluate(y, x)

    @given(degrees, seeds, points, points)
    @settings(max_examples=60)
    def test_evaluate_matches_naive(self, t: int, seed: int, x: int, y: int) -> None:
        f = BivariatePolynomial.random_general(t, Q, random.Random(seed))
        naive = (
            sum(
                f.coeffs[j][l] * pow(x, j, Q) * pow(y, l, Q)
                for j in range(t + 1)
                for l in range(t + 1)
            )
            % Q
        )
        assert f.evaluate(x, y) == naive

    @given(degrees, seeds, points, points)
    @settings(max_examples=60)
    def test_row_polynomial_consistency(self, t: int, seed: int, x: int, y: int) -> None:
        f = BivariatePolynomial.random_symmetric(t, Q, random.Random(seed))
        assert f.row_polynomial(x)(y) == f.evaluate(x, y)

    @given(degrees, seeds, points, points)
    @settings(max_examples=60)
    def test_column_polynomial_consistency(
        self, t: int, seed: int, x: int, y: int
    ) -> None:
        f = BivariatePolynomial.random_general(t, Q, random.Random(seed))
        assert f.column_polynomial(y)(x) == f.evaluate(x, y)


class TestSharingStructure:
    """The algebraic facts HybridVSS relies on."""

    @given(st.integers(min_value=1, max_value=4), seeds)
    @settings(max_examples=40)
    def test_row_polys_interpolate_to_shares(self, t: int, seed: int) -> None:
        # Node i's final share is f(i, 0); the secret is f(0, 0); shares
        # of t+1 nodes interpolate to the secret.
        from repro.crypto.polynomials import interpolate_at

        rng = random.Random(seed)
        f = BivariatePolynomial.random_symmetric(t, Q, rng, secret=777)
        shares = [(i, f.evaluate(i, 0)) for i in range(1, t + 2)]
        assert interpolate_at(shares, 0, Q) == 777

    @given(st.integers(min_value=1, max_value=4), seeds)
    @settings(max_examples=40)
    def test_echo_points_interpolate_to_row_poly(self, t: int, seed: int) -> None:
        # Node i can reconstruct its row polynomial from t+1 points
        # f(m, i) received in echoes — this is the Fig. 1 interpolation.
        from repro.crypto.polynomials import interpolate_polynomial

        rng = random.Random(seed)
        f = BivariatePolynomial.random_symmetric(t, Q, rng)
        i = 3
        pts = [(m, f.evaluate(m, i)) for m in range(1, t + 2)]
        recovered = interpolate_polynomial(pts, Q)
        assert recovered.coeffs == f.row_polynomial(i).coeffs
