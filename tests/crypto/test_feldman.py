"""Tests for Feldman commitments and the Fig. 1 verification predicates.

Parameterized over both group backends via the ``bgroup`` fixture:
every property here is backend-generic (the predicates only touch the
group through the :mod:`repro.crypto.backend` interface).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.polynomials import Polynomial

degrees = st.integers(min_value=0, max_value=4)
seeds = st.integers(min_value=0, max_value=2**32)
# Valid in both scalar fields (toy q is 64-bit, secp256k1 n is 256-bit).
secrets = st.integers(min_value=0, max_value=2**63)


def _commit(group, t: int, seed: int, secret: int | None = None):
    f = BivariatePolynomial.random_symmetric(
        t, group.q, random.Random(seed), secret=secret
    )
    return f, FeldmanCommitment.commit(f, group)


class TestVerifyPoly:
    @given(degrees, seeds, st.integers(min_value=1, max_value=30))
    @settings(max_examples=40)
    def test_accepts_correct_row_polynomial(
        self, bgroup, t: int, seed: int, i: int
    ) -> None:
        f, c = _commit(bgroup, t, seed)
        assert c.verify_poly(i, f.row_polynomial(i))

    @given(degrees, seeds)
    @settings(max_examples=30)
    def test_rejects_tampered_polynomial(self, bgroup, t: int, seed: int) -> None:
        f, c = _commit(bgroup, t, seed)
        a = f.row_polynomial(2)
        tampered = Polynomial((a.coeffs[0] + 1,) + a.coeffs[1:], bgroup.q)
        assert not c.verify_poly(2, tampered)

    def test_rejects_wrong_degree(self, bgroup) -> None:
        f, c = _commit(bgroup, 2, 0)
        a = f.row_polynomial(1)
        short = Polynomial(a.coeffs[:-1], bgroup.q)
        assert not c.verify_poly(1, short)

    def test_rejects_polynomial_for_other_node(self, bgroup) -> None:
        f, c = _commit(bgroup, 2, 1)
        assert not c.verify_poly(3, f.row_polynomial(4))


class TestVerifyPoint:
    @given(
        degrees,
        seeds,
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40)
    def test_accepts_correct_point(
        self, bgroup, t: int, seed: int, i: int, m: int
    ) -> None:
        f, c = _commit(bgroup, t, seed)
        assert c.verify_point(i, m, f.evaluate(m, i))

    @given(degrees, seeds)
    @settings(max_examples=30)
    def test_rejects_wrong_point(self, bgroup, t: int, seed: int) -> None:
        f, c = _commit(bgroup, t, seed)
        assert not c.verify_point(1, 2, (f.evaluate(2, 1) + 1) % bgroup.q)

    @given(degrees, seeds, st.integers(min_value=1, max_value=20))
    @settings(max_examples=30)
    def test_share_is_point_at_zero(self, bgroup, t: int, seed: int, i: int) -> None:
        f, c = _commit(bgroup, t, seed)
        assert c.verify_share(i, f.evaluate(i, 0))

    @given(degrees, seeds, st.integers(min_value=1, max_value=20))
    @settings(max_examples=30)
    def test_column_vector_matches_verify_point(
        self, bgroup, t: int, seed: int, m: int
    ) -> None:
        # The cached per-receiver verifier must agree with the naive
        # predicate — the session layer depends on this equivalence.
        f, c = _commit(bgroup, t, seed)
        i = 5
        vec = c.column_vector(i)
        alpha = f.evaluate(m, i)
        assert vec.verify_share(m, alpha) == c.verify_point(i, m, alpha)
        assert not vec.verify_share(m, (alpha + 1) % bgroup.q)


class TestCommitmentAlgebra:
    @given(degrees, seeds, seeds)
    @settings(max_examples=30)
    def test_combine_commits_to_sum(self, bgroup, t: int, s1: int, s2: int) -> None:
        f1, c1 = _commit(bgroup, t, s1)
        f2, c2 = _commit(bgroup, t, s2 + 10_000)
        combined = c1.combine(c2)
        # the combined commitment verifies points of f1 + f2
        i, m = 2, 3
        total = (f1.evaluate(m, i) + f2.evaluate(m, i)) % bgroup.q
        assert combined.verify_point(i, m, total)

    def test_combine_rejects_mismatched_degree(self, bgroup) -> None:
        _, c1 = _commit(bgroup, 1, 0)
        _, c2 = _commit(bgroup, 2, 0)
        with pytest.raises(ValueError):
            c1.combine(c2)

    @given(degrees, seeds)
    @settings(max_examples=30)
    def test_public_key_is_g_to_secret(self, bgroup, t: int, seed: int) -> None:
        f, c = _commit(bgroup, t, seed, secret=4321)
        assert c.public_key() == bgroup.commit(4321)

    @given(degrees, seeds, st.integers(min_value=1, max_value=20))
    @settings(max_examples=30)
    def test_share_commitment(self, bgroup, t: int, seed: int, i: int) -> None:
        f, c = _commit(bgroup, t, seed)
        assert c.share_commitment(i) == bgroup.commit(f.evaluate(i, 0))

    def test_byte_size(self, bgroup) -> None:
        _, c = _commit(bgroup, 3, 0)
        assert c.byte_size() == 16 * bgroup.element_bytes
        assert c.num_entries == 16

    def test_rejects_non_square(self, bgroup) -> None:
        g = bgroup.identity
        with pytest.raises(ValueError):
            FeldmanCommitment(((g, g), (g,)), bgroup)


class TestFeldmanVector:
    @given(degrees, seeds, st.integers(min_value=1, max_value=30))
    @settings(max_examples=40)
    def test_verify_share(self, bgroup, t: int, seed: int, i: int) -> None:
        poly = Polynomial.random(t, bgroup.q, random.Random(seed))
        vec = FeldmanVector.commit(poly, bgroup)
        assert vec.verify_share(i, poly(i))
        assert not vec.verify_share(i, (poly(i) + 1) % bgroup.q)

    @given(degrees, seeds, st.integers(min_value=0, max_value=30))
    @settings(max_examples=30)
    def test_evaluate_in_exponent(self, bgroup, t: int, seed: int, i: int) -> None:
        poly = Polynomial.random(t, bgroup.q, random.Random(seed))
        vec = FeldmanVector.commit(poly, bgroup)
        assert vec.evaluate_in_exponent(i) == bgroup.commit(poly(i))

    @given(degrees, seeds, seeds)
    @settings(max_examples=30)
    def test_combine(self, bgroup, t: int, s1: int, s2: int) -> None:
        p1 = Polynomial.random(t, bgroup.q, random.Random(s1))
        p2 = Polynomial.random(t, bgroup.q, random.Random(s2 + 1))
        v = FeldmanVector.commit(p1, bgroup).combine(
            FeldmanVector.commit(p2, bgroup)
        )
        assert v.verify_share(4, p1.add(p2)(4))

    def test_mismatched_field_rejected(self, bgroup) -> None:
        with pytest.raises(ValueError):
            FeldmanVector.commit(Polynomial((1,), bgroup.q - 2), bgroup)
