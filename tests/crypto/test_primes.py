"""Unit and property tests for primality testing and parameter generation."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import (
    SchnorrParams,
    generate_schnorr_params,
    is_prime,
    next_prime,
)

KNOWN_PRIMES = [
    2, 3, 5, 7, 11, 13, 101, 257, 65_537, 2_147_483_647,
    (1 << 61) - 1,  # Mersenne prime M61
    1_000_000_007,
]

KNOWN_COMPOSITES = [
    0, 1, 4, 9, 15, 21, 25, 561, 1105, 1729,  # includes Carmichael numbers
    2_465, 6_601, 8_911, 41_041, 825_265,
    (1 << 61) - 3,
    1_000_000_007 * 1_000_000_009,
]


class TestIsPrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p: int) -> None:
        assert is_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites_including_carmichael(self, c: int) -> None:
        assert not is_prime(c)

    def test_negative_numbers_are_not_prime(self) -> None:
        assert not is_prime(-7)

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=200)
    def test_agrees_with_trial_division(self, n: int) -> None:
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert is_prime(n) == by_trial

    @given(st.integers(min_value=2, max_value=10_000))
    def test_product_of_two_primes_is_composite(self, n: int) -> None:
        if is_prime(n):
            assert not is_prime(n * n)


class TestNextPrime:
    def test_next_prime_small(self) -> None:
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(14) == 17

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=50)
    def test_result_is_prime_and_greater(self, n: int) -> None:
        p = next_prime(n)
        assert p > n
        assert is_prime(p)


class TestSchnorrParams:
    def test_generation_is_deterministic(self) -> None:
        a = generate_schnorr_params(q_bits=32, p_bits=64, seed=5)
        b = generate_schnorr_params(q_bits=32, p_bits=64, seed=5)
        assert a == b

    def test_different_seeds_differ(self) -> None:
        a = generate_schnorr_params(q_bits=32, p_bits=64, seed=1)
        b = generate_schnorr_params(q_bits=32, p_bits=64, seed=2)
        assert a != b

    def test_generated_params_validate(self) -> None:
        params = generate_schnorr_params(q_bits=48, p_bits=96, seed=3)
        params.validate()
        assert params.q.bit_length() == 48
        assert params.p.bit_length() == 96

    def test_validate_rejects_composite_p(self) -> None:
        good = generate_schnorr_params(q_bits=32, p_bits=64, seed=0)
        bad = SchnorrParams(p=good.p + 2, q=good.q, g=good.g)
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_wrong_order_generator(self) -> None:
        good = generate_schnorr_params(q_bits=32, p_bits=64, seed=0)
        # p-1 has order dividing 2, not q (p-1 squared is 1 mod p)
        bad = SchnorrParams(p=good.p, q=good.q, g=good.p - 1)
        with pytest.raises(ValueError):
            bad.validate()

    def test_rejects_tiny_q(self) -> None:
        with pytest.raises(ValueError):
            generate_schnorr_params(q_bits=4)

    def test_rejects_p_not_exceeding_q(self) -> None:
        with pytest.raises(ValueError):
            generate_schnorr_params(q_bits=32, p_bits=33)
