"""The coincurve/libsecp256k1 import-probe seam: identical results with
and without it — the EC twin of ``tests/crypto/test_intops.py``.

With coincurve absent these tests pin the pure-python wNAF/Straus
engines against the naive double-and-add oracle; with it present (the
accelerated CI lane) they additionally assert the native paths are
bit-identical to the python ones on the same inputs.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.crypto import ec
from repro.crypto.ec import (
    HAVE_COINCURVE,
    INFINITY,
    N,
    EcPoint,
    ec_multiexp,
    scalar_mul,
    scalar_mul_naive,
    secp256k1_group,
)

G = secp256k1_group()


def _points_and_scalars(count: int = 12, seed: int = 0xEC5EA):
    rng = random.Random(seed)
    cases = []
    for _ in range(count):
        point = scalar_mul_naive(G.g, rng.randrange(1, N))
        cases.append((point, rng.randrange(0, N)))
    # Edge scalars on a fixed point.
    for k in (0, 1, 2, N - 1, N, N + 1):
        cases.append((G.g, k))
    return cases


class TestDispatch:
    def test_probe_state_is_consistent(self) -> None:
        # Whichever way the probe resolved, the active implementations
        # must match it — no half-configured module.
        if HAVE_COINCURVE:
            assert ec._scalar_mul_impl is ec._scalar_mul_coincurve
            assert ec._ec_multiexp_impl is ec._ec_multiexp_coincurve
        else:
            assert ec._scalar_mul_impl is ec._scalar_mul_python
            assert ec._ec_multiexp_impl is ec._ec_multiexp_python

    def test_swapping_the_impl_changes_dispatch(self, monkeypatch) -> None:
        calls = []

        def fake_scalar_mul(point, k):
            calls.append(k)
            return ec._scalar_mul_python(point, k)

        monkeypatch.setattr(ec, "_scalar_mul_impl", fake_scalar_mul)
        assert scalar_mul(G.g, 12345) == scalar_mul_naive(G.g, 12345)
        assert calls == [12345]

    def test_multiexp_routes_through_the_seam(self, monkeypatch) -> None:
        seen = []

        def spy(points, exps):
            seen.append(len(points))
            return ec._ec_multiexp_python(points, exps)

        monkeypatch.setattr(ec, "_ec_multiexp_impl", spy)
        pairs = [(scalar_mul_naive(G.g, i + 1), i + 2) for i in range(5)]
        expected = ec._ec_multiexp_python(
            [p for p, _ in pairs], [e for _, e in pairs]
        )
        assert ec_multiexp(pairs) == expected
        assert seen == [5]


class TestIdenticalResults:
    def test_scalar_mul_matches_naive_oracle(self) -> None:
        # Runs against whichever backend the probe found: with
        # coincurve absent this pins the wNAF path; with it present it
        # asserts the native path is bit-identical to the oracle.
        for point, k in _points_and_scalars():
            assert scalar_mul(point, k) == scalar_mul_naive(point, k)

    def test_python_impl_agrees_with_oracle_directly(self) -> None:
        # The fallback engine itself, independent of the probe outcome,
        # so both sides of the seam stay covered.
        for point, k in _points_and_scalars(seed=0xFA11):
            assert ec._scalar_mul_python(point, k) == scalar_mul_naive(point, k)

    def test_infinity_handling(self) -> None:
        assert scalar_mul(INFINITY, 7) == INFINITY
        assert scalar_mul(G.g, 0) == INFINITY
        assert ec_multiexp([]) == INFINITY


@pytest.mark.skipif(not HAVE_COINCURVE, reason="coincurve not installed")
class TestNativeBitIdentity:
    """Only meaningful where libsecp256k1 is importable (accelerated CI
    lane): the native implementations against the python ones."""

    def test_scalar_mul_native_equals_python(self) -> None:
        for point, k in _points_and_scalars(count=20, seed=0xC01):
            assert ec._scalar_mul_coincurve(point, k) == ec._scalar_mul_python(
                point, k
            )

    def test_multiexp_native_equals_python(self) -> None:
        rng = random.Random(0xC02)
        for size in (2, 3, 17, 40):
            points = [
                ec._scalar_mul_python(G.g, rng.randrange(1, N))
                for _ in range(size)
            ]
            exps = [rng.randrange(1, N) for _ in range(size)]
            assert ec._ec_multiexp_coincurve(
                points, exps
            ) == ec._ec_multiexp_python(points, exps)

    def test_multiexp_native_identity_maps_to_infinity(self) -> None:
        # k*P + (N-k)*P = identity, which pubkey_combine rejects; the
        # wrapper maps that refusal back to INFINITY.
        point = ec._scalar_mul_python(G.g, 777)
        assert ec._ec_multiexp_coincurve([point, point], [5, N - 5]) == INFINITY


class TestPicklability:
    def test_point_round_trips_through_pickle(self) -> None:
        # EcPoint uses __slots__ with a frozen __setattr__, so pool
        # workers depend on the explicit __reduce__.
        point = scalar_mul_naive(G.g, 123456789)
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point and clone.x == point.x and clone.y == point.y
        assert pickle.loads(pickle.dumps(INFINITY)) == INFINITY
