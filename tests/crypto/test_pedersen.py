"""Tests for Pedersen commitments (the §1 alternative to Feldman).

Parameterized over both group backends via the ``bgroup`` fixture.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pedersen import (
    PedersenCommitment,
    deal_pedersen,
    derive_second_generator,
)
from repro.crypto.polynomials import Polynomial, interpolate_at

# Valid in both scalar fields (toy q is 64-bit, secp256k1 n is 256-bit).
secrets = st.integers(0, 2**63)


class TestSecondGenerator:
    def test_h_is_group_element(self, bgroup) -> None:
        h = derive_second_generator(bgroup)
        assert bgroup.is_element(h)
        assert h not in (bgroup.identity, bgroup.g)

    def test_h_is_deterministic_per_label(self, bgroup) -> None:
        assert derive_second_generator(bgroup) == derive_second_generator(bgroup)
        assert derive_second_generator(bgroup) != derive_second_generator(
            bgroup, b"other"
        )


class TestPedersenCommitment:
    @given(secrets, st.integers(1, 4), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_shares_verify(self, bgroup, secret: int, t: int, seed: int) -> None:
        rng = random.Random(seed)
        commitment, shares = deal_pedersen(
            secret, t, list(range(1, 2 * t + 2)), bgroup, rng
        )
        for share in shares:
            assert commitment.verify_share(share.index, share.value, share.blind)

    @given(secrets, st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_tampered_share_rejected(self, bgroup, secret: int, seed: int) -> None:
        rng = random.Random(seed)
        q = bgroup.q
        commitment, shares = deal_pedersen(secret, 2, [1, 2, 3, 4, 5], bgroup, rng)
        s = shares[0]
        assert not commitment.verify_share(s.index, (s.value + 1) % q, s.blind)
        assert not commitment.verify_share(s.index, s.value, (s.blind + 1) % q)

    @given(secrets, st.integers(1, 3), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_shares_reconstruct_secret(
        self, bgroup, secret: int, t: int, seed: int
    ) -> None:
        rng = random.Random(seed)
        _, shares = deal_pedersen(secret, t, list(range(1, t + 2)), bgroup, rng)
        points = [(s.index, s.value) for s in shares]
        assert interpolate_at(points, 0, bgroup.q) == secret % bgroup.q

    def test_commit_requires_matching_degrees(self, bgroup) -> None:
        rng = random.Random(0)
        a = Polynomial.random(2, bgroup.q, rng)
        b = Polynomial.random(3, bgroup.q, rng)
        with pytest.raises(ValueError):
            PedersenCommitment.commit(a, b, bgroup)

    def test_combine(self, bgroup) -> None:
        rng = random.Random(1)
        q = bgroup.q
        h = derive_second_generator(bgroup)
        c1, s1 = deal_pedersen(10, 2, [1, 2, 3], bgroup, rng, h=h)
        c2, s2 = deal_pedersen(20, 2, [1, 2, 3], bgroup, rng, h=h)
        combined = c1.combine(c2)
        for a, b in zip(s1, s2):
            assert combined.verify_share(
                a.index, (a.value + b.value) % q, (a.blind + b.blind) % q
            )

    def test_combine_rejects_mismatched_h(self, bgroup) -> None:
        rng = random.Random(2)
        c1, _ = deal_pedersen(1, 1, [1], bgroup, rng, h=derive_second_generator(bgroup))
        c2, _ = deal_pedersen(
            1, 1, [1], bgroup, rng, h=derive_second_generator(bgroup, b"x")
        )
        with pytest.raises(ValueError):
            c1.combine(c2)

    def test_byte_size(self, bgroup) -> None:
        rng = random.Random(3)
        c, _ = deal_pedersen(5, 3, [1], bgroup, rng)
        assert c.byte_size() == 4 * bgroup.element_bytes

    def test_hiding_blinds_differ_from_feldman(self, bgroup) -> None:
        # Same value polynomial, different blinding polynomials give
        # different commitments — the unconditional-hiding property's
        # mechanical prerequisite.
        rng = random.Random(4)
        value = Polynomial.random(2, bgroup.q, rng, constant_term=7)
        b1 = Polynomial.random(2, bgroup.q, rng)
        b2 = Polynomial.random(2, bgroup.q, rng)
        h = derive_second_generator(bgroup)
        assert (
            PedersenCommitment.commit(value, b1, bgroup, h).entries
            != PedersenCommitment.commit(value, b2, bgroup, h).entries
        )
