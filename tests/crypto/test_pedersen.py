"""Tests for Pedersen commitments (the §1 alternative to Feldman)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import toy_group
from repro.crypto.pedersen import (
    PedersenCommitment,
    deal_pedersen,
    derive_second_generator,
)
from repro.crypto.polynomials import Polynomial, interpolate_at

G = toy_group()
Q = G.q


class TestSecondGenerator:
    def test_h_is_group_element(self) -> None:
        h = derive_second_generator(G)
        assert G.is_element(h)
        assert h not in (1, G.g)

    def test_h_is_deterministic_per_label(self) -> None:
        assert derive_second_generator(G) == derive_second_generator(G)
        assert derive_second_generator(G) != derive_second_generator(G, b"other")


class TestPedersenCommitment:
    @given(st.integers(0, Q - 1), st.integers(1, 4), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_shares_verify(self, secret: int, t: int, seed: int) -> None:
        rng = random.Random(seed)
        commitment, shares = deal_pedersen(secret, t, list(range(1, 2 * t + 2)), G, rng)
        for share in shares:
            assert commitment.verify_share(share.index, share.value, share.blind)

    @given(st.integers(0, Q - 1), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_tampered_share_rejected(self, secret: int, seed: int) -> None:
        rng = random.Random(seed)
        commitment, shares = deal_pedersen(secret, 2, [1, 2, 3, 4, 5], G, rng)
        s = shares[0]
        assert not commitment.verify_share(s.index, (s.value + 1) % Q, s.blind)
        assert not commitment.verify_share(s.index, s.value, (s.blind + 1) % Q)

    @given(st.integers(0, Q - 1), st.integers(1, 3), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_shares_reconstruct_secret(self, secret: int, t: int, seed: int) -> None:
        rng = random.Random(seed)
        _, shares = deal_pedersen(secret, t, list(range(1, t + 2)), G, rng)
        points = [(s.index, s.value) for s in shares]
        assert interpolate_at(points, 0, Q) == secret

    def test_commit_requires_matching_degrees(self) -> None:
        rng = random.Random(0)
        a = Polynomial.random(2, Q, rng)
        b = Polynomial.random(3, Q, rng)
        with pytest.raises(ValueError):
            PedersenCommitment.commit(a, b, G)

    def test_combine(self) -> None:
        rng = random.Random(1)
        h = derive_second_generator(G)
        c1, s1 = deal_pedersen(10, 2, [1, 2, 3], G, rng, h=h)
        c2, s2 = deal_pedersen(20, 2, [1, 2, 3], G, rng, h=h)
        combined = c1.combine(c2)
        for a, b in zip(s1, s2):
            assert combined.verify_share(
                a.index, (a.value + b.value) % Q, (a.blind + b.blind) % Q
            )

    def test_combine_rejects_mismatched_h(self) -> None:
        rng = random.Random(2)
        c1, _ = deal_pedersen(1, 1, [1], G, rng, h=derive_second_generator(G))
        c2, _ = deal_pedersen(1, 1, [1], G, rng, h=derive_second_generator(G, b"x"))
        with pytest.raises(ValueError):
            c1.combine(c2)

    def test_byte_size(self) -> None:
        rng = random.Random(3)
        c, _ = deal_pedersen(5, 3, [1], G, rng)
        assert c.byte_size() == 4 * G.element_bytes

    def test_hiding_blinds_differ_from_feldman(self) -> None:
        # Same value polynomial, different blinding polynomials give
        # different commitments — the unconditional-hiding property's
        # mechanical prerequisite.
        rng = random.Random(4)
        value = Polynomial.random(2, Q, rng, constant_term=7)
        b1 = Polynomial.random(2, Q, rng)
        b2 = Polynomial.random(2, Q, rng)
        h = derive_second_generator(G)
        assert (
            PedersenCommitment.commit(value, b1, G, h).entries
            != PedersenCommitment.commit(value, b2, G, h).entries
        )
