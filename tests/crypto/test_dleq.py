"""Tests for Chaum-Pedersen DLEQ proofs (threshold application layer).

Parameterized over both group backends via the ``bgroup`` fixture.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import dleq

# Valid in both scalar fields (toy q is 64-bit, secp256k1 n is 256-bit).
secrets = st.integers(1, 2**63)


class TestDleq:
    @given(secrets, st.integers(0, 2**32))
    @settings(max_examples=40)
    def test_roundtrip(self, bgroup, secret: int, seed: int) -> None:
        rng = random.Random(seed)
        g2 = bgroup.hash_to_element(b"base", str(seed).encode())
        h1, h2, proof = dleq.prove(bgroup, secret, bgroup.g, g2, rng)
        assert h1 == bgroup.commit(secret)
        assert h2 == bgroup.power(g2, secret)
        assert dleq.verify(bgroup, bgroup.g, h1, g2, h2, proof)

    @given(secrets, st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_rejects_mismatched_exponents(self, bgroup, secret: int, seed: int) -> None:
        rng = random.Random(seed)
        g2 = bgroup.hash_to_element(b"base2")
        h1, _, proof = dleq.prove(bgroup, secret, bgroup.g, g2, rng)
        wrong_h2 = bgroup.power(g2, (secret + 1) % bgroup.q)
        assert not dleq.verify(bgroup, bgroup.g, h1, g2, wrong_h2, proof)

    def test_rejects_tampered_proof(self, bgroup) -> None:
        rng = random.Random(7)
        q = bgroup.q
        g2 = bgroup.hash_to_element(b"base3")
        h1, h2, proof = dleq.prove(bgroup, 42, bgroup.g, g2, rng)
        bad = dleq.DleqProof((proof.challenge + 1) % q, proof.response)
        assert not dleq.verify(bgroup, bgroup.g, h1, g2, h2, bad)
        bad2 = dleq.DleqProof(proof.challenge, (proof.response + 1) % q)
        assert not dleq.verify(bgroup, bgroup.g, h1, g2, h2, bad2)

    def test_rejects_non_group_elements(self, bgroup) -> None:
        rng = random.Random(8)
        g2 = bgroup.hash_to_element(b"base4")
        h1, h2, proof = dleq.prove(bgroup, 9, bgroup.g, g2, rng)
        # 0 and -1 are elements of neither backend (out of range for
        # modp residues, not points at all for the curve).
        assert not dleq.verify(bgroup, bgroup.g, 0, g2, h2, proof)
        assert not dleq.verify(bgroup, bgroup.g, h1, g2, -1, proof)

    def test_proof_size(self, bgroup) -> None:
        rng = random.Random(9)
        _, _, proof = dleq.prove(bgroup, 5, bgroup.g, bgroup.commit(3), rng)
        assert proof.byte_size(bgroup) == 2 * bgroup.scalar_bytes
