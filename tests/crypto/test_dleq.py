"""Tests for Chaum-Pedersen DLEQ proofs (threshold application layer)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import dleq
from repro.crypto.groups import toy_group
from repro.crypto.hashing import hash_to_element

G = toy_group()


class TestDleq:
    @given(st.integers(1, G.q - 1), st.integers(0, 2**32))
    @settings(max_examples=40)
    def test_roundtrip(self, secret: int, seed: int) -> None:
        rng = random.Random(seed)
        g2 = hash_to_element(G.p, G.q, b"base", str(seed).encode())
        h1, h2, proof = dleq.prove(G, secret, G.g, g2, rng)
        assert h1 == G.commit(secret)
        assert h2 == G.power(g2, secret)
        assert dleq.verify(G, G.g, h1, g2, h2, proof)

    @given(st.integers(1, G.q - 1), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_rejects_mismatched_exponents(self, secret: int, seed: int) -> None:
        rng = random.Random(seed)
        g2 = hash_to_element(G.p, G.q, b"base2")
        h1, _, proof = dleq.prove(G, secret, G.g, g2, rng)
        wrong_h2 = G.power(g2, (secret + 1) % G.q)
        assert not dleq.verify(G, G.g, h1, g2, wrong_h2, proof)

    def test_rejects_tampered_proof(self) -> None:
        rng = random.Random(7)
        g2 = hash_to_element(G.p, G.q, b"base3")
        h1, h2, proof = dleq.prove(G, 42, G.g, g2, rng)
        bad = dleq.DleqProof((proof.challenge + 1) % G.q, proof.response)
        assert not dleq.verify(G, G.g, h1, g2, h2, bad)
        bad2 = dleq.DleqProof(proof.challenge, (proof.response + 1) % G.q)
        assert not dleq.verify(G, G.g, h1, g2, h2, bad2)

    def test_rejects_non_group_elements(self) -> None:
        rng = random.Random(8)
        g2 = hash_to_element(G.p, G.q, b"base4")
        h1, h2, proof = dleq.prove(G, 9, G.g, g2, rng)
        assert not dleq.verify(G, G.g, 0, g2, h2, proof)
        assert not dleq.verify(G, G.g, h1, g2, G.p, proof)

    def test_proof_size(self) -> None:
        rng = random.Random(9)
        _, _, proof = dleq.prove(G, 5, G.g, G.commit(3), rng)
        assert proof.byte_size(G) == 2 * G.scalar_bytes
