"""The process-pool crypto executor: serial ≡ parallel under seeded
claims, per-item Byzantine fallback, and pool-crash degradation.

The determinism contract under test: installing an executor never
changes results *or* the caller's rng stream — transcripts are
identical whether work fanned out or not.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto import parallel
from repro.crypto.backend import BatchedClaimVerifier
from repro.crypto.parallel import CryptoExecutor
from repro.crypto.polynomials import Polynomial
from repro.obs import metrics as obs_metrics

from tests.helpers import default_test_group

G = default_test_group()


def _claims(group, t: int = 3, count: int = 40, seed: int = 11):
    """A degree-t sharing: entries commit to the coefficients, claims
    are the polynomial's evaluations (the DKG/VSS verification shape)."""
    rng = random.Random(seed)
    poly = Polynomial(
        tuple(rng.randrange(group.q) for _ in range(t + 1)), group.q
    )
    entries = [group.power(group.g, c) for c in poly.coeffs]
    batch = [(i, poly.evaluate(i)) for i in range(1, count + 1)]
    return entries, batch


def _pool_executor(**kwargs) -> CryptoExecutor:
    """A real 2-worker pool with thresholds protocol-sized tests meet."""
    kwargs.setdefault("min_claims", 8)
    kwargs.setdefault("min_terms", 10)
    return CryptoExecutor(cores=2, **kwargs)


class _FailingFuture:
    def __init__(self, exc: Exception):
        self._exc = exc

    def result(self):
        raise self._exc


class _FailingPool:
    """Stands in for a ProcessPoolExecutor whose chunks all fail."""

    def __init__(self, exc: Exception):
        self._exc = exc
        self.shutdowns = 0

    def submit(self, job, payload):
        return _FailingFuture(self._exc)

    def shutdown(self, **kwargs):
        self.shutdowns += 1


class TestPartition:
    def test_contiguous_and_order_preserving(self) -> None:
        items = list(range(10))
        chunks = parallel.partition(items, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for chunk in chunks for x in chunk] == items

    def test_never_more_chunks_than_items(self) -> None:
        assert parallel.partition([1, 2], 8) == [[1], [2]]

    def test_empty(self) -> None:
        assert parallel.partition([], 4) == []


class TestChunkSalt:
    def test_deterministic_and_distinct(self) -> None:
        salt = random.Random(0).getrandbits(128)
        derived = [parallel.derive_chunk_salt(salt, i) for i in range(8)]
        assert derived == [parallel.derive_chunk_salt(salt, i) for i in range(8)]
        assert len(set(derived)) == 8
        assert all(0 <= s < 2**128 for s in derived)

    def test_salt_sensitivity(self) -> None:
        assert parallel.derive_chunk_salt(1, 0) != parallel.derive_chunk_salt(2, 0)


class TestResolveCores:
    def test_semantics(self) -> None:
        assert parallel.resolve_cores(None) == 1
        assert parallel.resolve_cores(1) == 1
        assert parallel.resolve_cores(3) == 3
        assert parallel.resolve_cores(0) == parallel.available_cpus()
        assert parallel.resolve_cores(0) >= 1


class TestSerialParallelEquivalence:
    def test_results_and_rng_stream_identical(self) -> None:
        entries, batch = _claims(G)
        serial_rng, pool_rng = random.Random(7), random.Random(7)
        serial = BatchedClaimVerifier(G, entries).verify(batch, rng=serial_rng)
        with _pool_executor() as executor:
            with parallel.executor_scope(executor):
                pooled = BatchedClaimVerifier(G, entries).verify(
                    batch, rng=pool_rng
                )
        assert pooled == serial
        assert pooled[0] == batch and pooled[1] == []
        # The parallel path consumed exactly the serial path's one draw.
        assert pool_rng.getstate() == serial_rng.getstate()

    def test_byzantine_claims_pinpointed_across_chunks(self) -> None:
        entries, batch = _claims(G)
        # Corrupt one claim in each half, i.e. one per worker chunk.
        batch[3] = (batch[3][0], (batch[3][1] + 1) % G.q)
        batch[29] = (batch[29][0], (batch[29][1] + 5) % G.q)
        serial = BatchedClaimVerifier(G, entries).verify(
            batch, rng=random.Random(7)
        )
        with _pool_executor() as executor:
            with parallel.executor_scope(executor):
                good, bad = BatchedClaimVerifier(G, entries).verify(
                    batch, rng=random.Random(7)
                )
        assert (good, bad) == serial
        assert sorted(bad) == [batch[3][0], batch[29][0]]
        assert len(good) == len(batch) - 2

    def test_verify_claim_sets_matches_serial(self) -> None:
        jobs = []
        expected = []
        for seed in (1, 2, 3):
            entries, batch = _claims(G, count=12, seed=seed)
            salt = random.Random(seed).getrandbits(128)
            jobs.append((entries, G.g, batch, salt))
            good, bad, _ = BatchedClaimVerifier(G, entries).verify_salted(
                batch, salt
            )
            expected.append((good, bad))
        with _pool_executor() as executor:
            results = executor.verify_claim_sets(G, jobs)
        assert results == expected

    def test_multiexp_matches_serial(self) -> None:
        rng = random.Random(13)
        pairs = [
            (G.power(G.g, rng.randrange(1, G.q)), rng.randrange(G.q))
            for _ in range(30)
        ]
        serial = G.multiexp(pairs)
        with _pool_executor() as executor:
            direct = executor.multiexp(G, pairs)
            with parallel.executor_scope(executor):
                routed = G.multiexp(pairs)
        assert direct == serial
        assert routed == serial


class TestThresholdsAndPassthrough:
    def test_serial_executor_never_engages(self) -> None:
        executor = CryptoExecutor(cores=1)
        assert not executor.parallel
        assert not executor.wants_claims(10**6)
        entries, batch = _claims(G, count=10)
        assert executor.verify_claims(G, entries, G.g, batch, salt=1) is None

    def test_small_batches_stay_serial(self) -> None:
        with _pool_executor(min_claims=64) as executor:
            assert not executor.wants_claims(40)
            assert executor.wants_claims(64)

    def test_single_chunk_is_refused(self) -> None:
        # One chunk would serialize through the pool for pure overhead.
        entries, batch = _claims(G, count=1)
        with _pool_executor() as executor:
            assert executor.verify_claims(G, entries, G.g, batch, 1) is None


class TestDegradation:
    def test_broken_pool_degrades_permanently_to_serial(self) -> None:
        from concurrent.futures.process import BrokenProcessPool

        entries, batch = _claims(G)
        executor = _pool_executor()
        fake = _FailingPool(BrokenProcessPool("worker died"))
        executor._pool = fake
        with parallel.executor_scope(executor):
            good, bad = BatchedClaimVerifier(G, entries).verify(
                batch, rng=random.Random(7)
            )
        # Same answer through the serial fallback...
        assert (good, bad) == (batch, [])
        # ...and the executor is poisoned: no further fan-out attempts.
        assert executor._broken and not executor.parallel
        assert fake.shutdowns == 1
        assert executor.verify_claims(G, entries, G.g, batch, 1) is None

    def test_chunk_exception_fails_one_call_only(self) -> None:
        entries, batch = _claims(G)
        executor = _pool_executor()
        executor._pool = _FailingPool(ValueError("bad payload"))
        with parallel.executor_scope(executor):
            good, bad = BatchedClaimVerifier(G, entries).verify(
                batch, rng=random.Random(7)
            )
        assert (good, bad) == (batch, [])
        # An ordinary failure does not poison the executor.
        assert not executor._broken and executor.parallel


class TestMetrics:
    def test_chunks_counted_by_mode(self) -> None:
        entries, batch = _claims(G)
        registry = obs_metrics.MetricsRegistry()
        previous = obs_metrics.set_registry(registry)
        try:
            with _pool_executor() as executor:
                with parallel.executor_scope(executor):
                    BatchedClaimVerifier(G, entries).verify(
                        batch, rng=random.Random(7)
                    )
            families = registry.snapshot()
        finally:
            obs_metrics.set_registry(previous)
        chunk_counts = {
            tuple(sorted(sample["labels"].items())): sample["value"]
            for sample in families[parallel.CHUNKS_TOTAL]["samples"]
        }
        assert chunk_counts[(("kind", "verify"), ("mode", "pool"))] == 2
        assert parallel.CHUNK_SECONDS in families
        assert parallel.WORKERS_GAUGE in families


class TestAccelerationStatus:
    def test_reports_probes_and_executor(self) -> None:
        status = parallel.acceleration_status()
        assert set(status) == {
            "gmpy2",
            "coincurve",
            "parallel_cores",
            "parallel_active",
            "available_cpus",
        }
        assert status["parallel_cores"] == 1 and not status["parallel_active"]
        with _pool_executor() as executor:
            active = parallel.acceleration_status(executor)
        assert active["parallel_cores"] == 2 and active["parallel_active"]

    def test_ambient_scope_install_and_restore(self) -> None:
        assert parallel.active_executor() is None
        executor = CryptoExecutor(cores=1)
        with parallel.executor_scope(executor) as installed:
            assert installed is executor
            assert parallel.active_executor() is executor
        assert parallel.active_executor() is None


@pytest.mark.parametrize("count", [32, 33, 47])
def test_uneven_batch_sizes_round_trip(count: int) -> None:
    # Chunk-boundary property check: odd sizes partition unevenly and
    # must still concatenate back to the serial answer.
    entries, batch = _claims(G, count=count, seed=count)
    serial = BatchedClaimVerifier(G, entries).verify(batch, rng=random.Random(3))
    with _pool_executor() as executor:
        with parallel.executor_scope(executor):
            pooled = BatchedClaimVerifier(G, entries).verify(
                batch, rng=random.Random(3)
            )
    assert pooled == serial
