"""Unit tests for the secp256k1 backend's arithmetic core.

Backend-generic behavior is covered by the ``bgroup``-parameterized
crypto tests and the protocol suites; this module cross-checks the EC
engine itself — wNAF against textbook double-and-add, the multiexp
engines against per-point evaluation, the point codec, and the
identity/negation edge cases the affine group law must get right.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import AbstractGroup
from repro.crypto.ec import (
    GENERATOR,
    INFINITY,
    N,
    P,
    EcPoint,
    EcSharedBases,
    ec_fixed_base,
    ec_multiexp,
    is_on_curve,
    point_add,
    point_neg,
    scalar_mul,
    scalar_mul_naive,
    secp256k1_group,
)
from repro.crypto.groups import toy_group

G = secp256k1_group()

scalars = st.integers(min_value=0, max_value=N + 2**64)  # exercises mod-n wrap
seeds = st.integers(min_value=0, max_value=2**32)


def _rand_point(seed: int) -> EcPoint:
    return scalar_mul(GENERATOR, random.Random(seed).randrange(1, N))


class TestScalarMul:
    @given(scalars)
    @settings(max_examples=60)
    def test_wnaf_matches_naive(self, k: int) -> None:
        assert scalar_mul(GENERATOR, k) == scalar_mul_naive(GENERATOR, k)

    @given(seeds, scalars)
    @settings(max_examples=30)
    def test_wnaf_matches_naive_on_random_points(self, seed: int, k: int) -> None:
        point = _rand_point(seed)
        assert scalar_mul(point, k) == scalar_mul_naive(point, k)

    @given(scalars)
    @settings(max_examples=30)
    def test_fixed_base_matches_variable_base(self, k: int) -> None:
        assert ec_fixed_base(GENERATOR).pow(k) == scalar_mul(GENERATOR, k)

    def test_order_annihilates(self) -> None:
        assert scalar_mul(GENERATOR, N) == INFINITY
        assert scalar_mul(GENERATOR, 0) == INFINITY
        assert scalar_mul(INFINITY, 12345) == INFINITY

    def test_n_minus_one_is_negation(self) -> None:
        assert scalar_mul(GENERATOR, N - 1) == point_neg(GENERATOR)


class TestGroupLaw:
    def test_identity_edges(self) -> None:
        point = _rand_point(1)
        assert point_add(point, INFINITY) == point
        assert point_add(INFINITY, point) == point
        assert point_add(INFINITY, INFINITY) == INFINITY
        assert point_neg(INFINITY) == INFINITY
        assert G.mul(point, G.identity) == point
        assert G.inv(G.identity) == G.identity

    def test_negation_cancels(self) -> None:
        point = _rand_point(2)
        assert point_add(point, point_neg(point)) == INFINITY
        assert is_on_curve(point_neg(point))

    def test_doubling_via_affine_add(self) -> None:
        point = _rand_point(3)
        assert point_add(point, point) == scalar_mul(point, 2)

    @given(seeds, seeds)
    @settings(max_examples=20)
    def test_commutative(self, s1: int, s2: int) -> None:
        a, b = _rand_point(s1), _rand_point(s2 + 2**33)
        assert point_add(a, b) == point_add(b, a)


class TestPointCodec:
    @given(seeds)
    @settings(max_examples=40)
    def test_roundtrip(self, seed: int) -> None:
        point = _rand_point(seed)
        raw = G.element_to_bytes(point)
        assert len(raw) == G.element_bytes == 33
        assert raw[0] in (2, 3)
        assert G.element_from_bytes(raw) == point

    def test_infinity_roundtrip(self) -> None:
        raw = G.element_to_bytes(INFINITY)
        assert raw == bytes(33)
        assert G.element_from_bytes(raw) == INFINITY

    def test_rejects_bad_length(self) -> None:
        with pytest.raises(ValueError):
            G.element_from_bytes(b"\x02" + bytes(30))

    def test_rejects_bad_prefix(self) -> None:
        raw = G.element_to_bytes(GENERATOR)
        with pytest.raises(ValueError):
            G.element_from_bytes(b"\x05" + raw[1:])

    def test_rejects_off_curve_x(self) -> None:
        # x = 5 has no square root of x^3 + 7 on secp256k1.
        with pytest.raises(ValueError):
            G.element_from_bytes(b"\x02" + (5).to_bytes(32, "big"))

    def test_rejects_oversized_x(self) -> None:
        with pytest.raises(ValueError):
            G.element_from_bytes(b"\x02" + (P + 1).to_bytes(32, "big"))

    def test_parity_prefix_selects_y(self) -> None:
        point = _rand_point(9)
        raw = bytearray(G.element_to_bytes(point))
        raw[0] = 2 if raw[0] == 3 else 3  # flip the parity bit
        assert G.element_from_bytes(bytes(raw)) == point_neg(point)


class TestMultiexp:
    @given(seeds, st.integers(2, 12))
    @settings(max_examples=20, deadline=None)
    def test_matches_per_point_evaluation(self, seed: int, count: int) -> None:
        rng = random.Random(seed)
        points = [_rand_point(rng.randrange(2**32)) for _ in range(count)]
        exps = [rng.randrange(N) for _ in range(count)]
        expected = INFINITY
        for point, e in zip(points, exps):
            expected = point_add(expected, scalar_mul_naive(point, e))
        assert ec_multiexp(zip(points, exps)) == expected

    def test_empty_and_degenerate(self) -> None:
        assert ec_multiexp([]) == INFINITY
        assert ec_multiexp([(GENERATOR, 0)]) == INFINITY
        assert ec_multiexp([(INFINITY, 7)]) == INFINITY
        assert ec_multiexp([(GENERATOR, 3)]) == scalar_mul(GENERATOR, 3)

    def test_shared_bases_match_multiexp(self) -> None:
        rng = random.Random(4)
        points = [_rand_point(i) for i in range(5)]
        shared = EcSharedBases(points)
        for _ in range(3):
            exps = [rng.randrange(N) for _ in points]
            assert shared.multiexp(exps) == ec_multiexp(zip(points, exps))
        x = rng.randrange(1, 50)
        assert shared.power_row(x) == ec_multiexp(
            (pt, pow(x, i, N)) for i, pt in enumerate(points)
        )

    def test_shared_bases_tolerate_identity_base(self) -> None:
        points = [GENERATOR, INFINITY, _rand_point(5)]
        shared = EcSharedBases(points)
        exps = [3, 9, 11]
        assert shared.multiexp(exps) == ec_multiexp(zip(points, exps))


class TestEcGroupSurface:
    def test_satisfies_backend_protocol(self) -> None:
        assert isinstance(G, AbstractGroup)
        assert isinstance(toy_group(), AbstractGroup)

    def test_validate(self) -> None:
        G.validate()

    def test_is_element(self) -> None:
        assert G.is_element(GENERATOR)
        assert G.is_element(G.identity)
        assert not G.is_element(EcPoint(1, 2))
        assert not G.is_element(12345)  # modp residues are not points

    def test_sizes_at_matched_security(self) -> None:
        assert G.security_bits == 256
        assert G.scalar_bytes == 32
        # 8x smaller than a 2048-bit modp residue (256 bytes), within
        # the one-byte compression prefix.
        assert G.element_bytes * 8 == 264

    def test_hash_to_element_lands_on_curve(self) -> None:
        for tag in (b"", b"a", b"dprf-input"):
            point = G.hash_to_element(tag)
            assert G.is_element(point) and point != INFINITY
        assert G.hash_to_element(b"x") != G.hash_to_element(b"y")

    def test_second_generator_differs_from_g(self) -> None:
        h = G.second_generator()
        assert G.is_element(h)
        assert h not in (G.g, INFINITY)
        assert h != G.second_generator(b"another-label")
