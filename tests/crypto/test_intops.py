"""The gmpy2 import-probe seam: identical results with and without it."""

from __future__ import annotations

import random

import pytest

from repro.crypto import intops
from repro.crypto.groups import RFC5114_1024_160, toy_group


def _cases(count: int = 50):
    rng = random.Random(0xACCE1)
    moduli = [
        RFC5114_1024_160.p,
        RFC5114_1024_160.q,
        toy_group().p,
        97,
        2**127 - 1,
    ]
    for _ in range(count):
        m = rng.choice(moduli)
        yield rng.randrange(1, m), rng.randrange(0, m), m


class TestDispatch:
    def test_probe_state_is_consistent(self) -> None:
        # Whichever way the probe resolved, the active implementations
        # must match it — no half-configured module.
        if intops.HAVE_GMPY2:
            assert intops._powmod_impl is intops._powmod_gmpy2
            assert intops._invert_impl is intops._invert_gmpy2
        else:
            assert intops._powmod_impl is intops._powmod_python
            assert intops._invert_impl is intops._invert_python

    def test_swapping_the_impl_changes_dispatch(self, monkeypatch) -> None:
        # The seam the accelerated path plugs into: a fake "accelerated"
        # implementation must be reachable through the public functions
        # and agree with the pure-python one on every case.
        calls = []

        def fake_powmod(base, exponent, modulus):
            calls.append((base, exponent, modulus))
            return intops._powmod_python(base, exponent, modulus)

        monkeypatch.setattr(intops, "_powmod_impl", fake_powmod)
        assert intops.powmod(3, 20, 97) == pow(3, 20, 97)
        assert calls == [(3, 20, 97)]


class TestIdenticalResults:
    def test_powmod_matches_builtin_pow(self) -> None:
        # Runs against whichever backend the probe found: with gmpy2
        # absent this pins the pure path; with it present it asserts
        # the accelerated path is bit-identical to CPython's pow.
        for base, exponent, modulus in _cases():
            assert intops.powmod(base, exponent, modulus) == pow(
                base, exponent, modulus
            )

    def test_invert_matches_builtin_pow(self) -> None:
        for base, _exponent, modulus in _cases():
            if base % modulus == 0:
                continue
            # Only prime moduli in _cases, so every nonzero inverts.
            assert intops.invert(base, modulus) == pow(base, -1, modulus)

    def test_invert_raises_zero_division_on_non_invertible(self) -> None:
        with pytest.raises(ZeroDivisionError):
            intops.invert(0, 97)
        with pytest.raises(ZeroDivisionError):
            intops.invert(6, 9)

    def test_pure_python_impls_agree_with_builtins_directly(self) -> None:
        # The fallback implementations themselves (independent of the
        # probe outcome), so both sides of the seam stay covered.
        assert intops._powmod_python(5, 117, 1009) == pow(5, 117, 1009)
        assert intops._invert_python(42, 1009) == pow(42, -1, 1009)
        with pytest.raises(ZeroDivisionError):
            intops._invert_python(0, 1009)


class TestGroupsRouteThroughIntops:
    def test_schnorr_group_power_uses_the_seam(self, monkeypatch) -> None:
        group = toy_group()
        seen = []

        def spy(base, exponent, modulus):
            seen.append(modulus)
            return intops._powmod_python(base, exponent, modulus)

        monkeypatch.setattr(intops, "_powmod_impl", spy)
        element = group.power(group.g, 12345)
        assert group.is_element(element)
        assert group.p in seen
