"""Tests for commitment digests, hash-to-field helpers and codecs."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.groups import toy_group
from repro.crypto.hashing import (
    DIGEST_BYTES,
    FullMatrixCodec,
    HashedMatrixCodec,
    commitment_digest,
    hash_to_element,
    hash_to_scalar,
)

G = toy_group()


def _commitment(seed: int, t: int = 2) -> FeldmanCommitment:
    f = BivariatePolynomial.random_symmetric(t, G.q, random.Random(seed))
    return FeldmanCommitment.commit(f, G)


class TestCommitmentDigest:
    def test_deterministic(self) -> None:
        c = _commitment(0)
        assert commitment_digest(c) == commitment_digest(c)

    def test_distinct_commitments_distinct_digests(self) -> None:
        assert commitment_digest(_commitment(1)) != commitment_digest(_commitment(2))

    def test_digest_length(self) -> None:
        assert len(commitment_digest(_commitment(3))) == DIGEST_BYTES


class TestHashToScalar:
    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=40)
    def test_in_range_and_deterministic(self, a: bytes, b: bytes) -> None:
        x = hash_to_scalar(G.q, a, b)
        assert 0 <= x < G.q
        assert x == hash_to_scalar(G.q, a, b)

    def test_length_prefixing_prevents_concatenation_ambiguity(self) -> None:
        assert hash_to_scalar(G.q, b"ab", b"c") != hash_to_scalar(G.q, b"a", b"bc")


class TestHashToElement:
    @given(st.binary(max_size=64))
    @settings(max_examples=30)
    def test_lands_in_subgroup(self, data: bytes) -> None:
        x = hash_to_element(G.p, G.q, data)
        assert G.is_element(x)

    def test_distinct_inputs_distinct_outputs(self) -> None:
        assert hash_to_element(G.p, G.q, b"a") != hash_to_element(G.p, G.q, b"b")


class TestCodecs:
    def test_full_codec_prices_matrix_everywhere(self) -> None:
        c = _commitment(4)
        codec = FullMatrixCodec()
        assert codec.send_overhead(c) == c.byte_size()
        assert codec.echo_overhead(c) == c.byte_size()
        assert codec.ready_overhead(c) == c.byte_size()

    def test_hashed_codec_compresses_echo_ready_only(self) -> None:
        c = _commitment(5)
        codec = HashedMatrixCodec()
        assert codec.send_overhead(c) == c.byte_size()
        assert codec.echo_overhead(c) == DIGEST_BYTES
        assert codec.ready_overhead(c) == DIGEST_BYTES

    def test_compression_is_strict_for_nontrivial_t(self) -> None:
        c = _commitment(6, t=3)
        assert HashedMatrixCodec().echo_overhead(c) < FullMatrixCodec().echo_overhead(c)
