"""Tests for SchnorrGroup arithmetic and parameter registries."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.groups import (
    RFC5114_1024_160,
    SchnorrGroup,
    group_by_name,
    toy_group,
)

scalars = st.integers(min_value=0, max_value=1 << 80)


class TestScalarField:
    @given(scalars, scalars)
    def test_add_sub_roundtrip(self, a: int, b: int) -> None:
        g = toy_group()
        assert g.scalar_sub(g.scalar_add(a, b), b) == g.scalar(a)

    @given(scalars)
    def test_inverse(self, a: int) -> None:
        g = toy_group()
        a = g.scalar(a)
        if a == 0:
            with pytest.raises(ZeroDivisionError):
                g.scalar_inv(a)
        else:
            assert g.scalar_mul(a, g.scalar_inv(a)) == 1

    @given(scalars)
    def test_neg(self, a: int) -> None:
        g = toy_group()
        assert g.scalar_add(a, g.scalar_neg(a)) == 0

    def test_random_scalar_in_range(self) -> None:
        g = toy_group()
        rng = random.Random(1)
        for _ in range(100):
            assert 0 <= g.random_scalar(rng) < g.q
            assert 1 <= g.random_nonzero_scalar(rng) < g.q


class TestGroupOps:
    @given(scalars, scalars)
    def test_exponent_laws(self, a: int, b: int) -> None:
        g = toy_group()
        lhs = g.mul(g.commit(a), g.commit(b))
        rhs = g.commit(g.scalar_add(a, b))
        assert lhs == rhs

    @given(scalars)
    def test_commit_lands_in_subgroup(self, a: int) -> None:
        g = toy_group()
        assert g.is_element(g.commit(a))

    def test_identity(self) -> None:
        g = toy_group()
        assert g.commit(0) == g.identity
        assert g.is_element(g.identity)

    @given(scalars)
    def test_inverse_element(self, a: int) -> None:
        g = toy_group()
        x = g.commit(a)
        assert g.mul(x, g.inv(x)) == g.identity

    def test_non_element_detection(self) -> None:
        g = toy_group()
        assert not g.is_element(0)
        assert not g.is_element(g.p)
        # An element of the full group Z_p^* that is not in the order-q
        # subgroup: a generator of Z_p^* itself, with overwhelming
        # probability 2 is not in the subgroup for our parameters.
        if pow(2, g.q, g.p) != 1:
            assert not g.is_element(2)


class TestSerialization:
    @given(scalars)
    def test_element_roundtrip(self, a: int) -> None:
        g = toy_group()
        x = g.commit(a)
        assert g.element_from_bytes(g.element_to_bytes(x)) == x

    @given(scalars)
    def test_scalar_roundtrip(self, a: int) -> None:
        g = toy_group()
        s = g.scalar(a)
        assert g.scalar_from_bytes(g.scalar_to_bytes(s)) == s

    def test_element_from_bytes_rejects_non_elements(self) -> None:
        g = toy_group()
        raw = (0).to_bytes(g.element_bytes, "big")
        with pytest.raises(ValueError):
            g.element_from_bytes(raw)

    def test_sizes_positive(self) -> None:
        g = toy_group()
        assert g.element_bytes >= 16
        assert g.scalar_bytes >= 8
        assert g.security_bits == g.q.bit_length()


class TestRegistry:
    @pytest.mark.parametrize("name", ["toy", "small"])
    def test_named_groups_validate(self, name: str) -> None:
        g = group_by_name(name)
        g.validate()

    def test_rfc_group_validates(self) -> None:
        RFC5114_1024_160.validate()
        assert RFC5114_1024_160.p.bit_length() == 1024
        assert RFC5114_1024_160.q.bit_length() == 160

    def test_rfc5114_2048_256_constants(self) -> None:
        # RFC 5114 §2.3: the standardized 2048-bit MODP group with a
        # 256-bit prime-order subgroup (validate() checks p and q
        # primality, q | p-1, and that g generates the order-q group).
        from repro.crypto.groups import RFC5114_2048_256

        RFC5114_2048_256.validate()
        assert RFC5114_2048_256.p.bit_length() == 2048
        assert RFC5114_2048_256.q.bit_length() == 256
        assert RFC5114_2048_256.name == "rfc5114-2048-256"
        assert group_by_name("rfc5114-2048-256") is RFC5114_2048_256
        # Spot-check the checked-in hex against the RFC's first words.
        assert hex(RFC5114_2048_256.p).startswith("0x87a8e61d")
        assert hex(RFC5114_2048_256.q).startswith("0x8cf83642")
        assert hex(RFC5114_2048_256.g).startswith("0x3fb32c9b")

    def test_unknown_name_raises(self) -> None:
        with pytest.raises(KeyError):
            group_by_name("nonexistent")

    def test_seeded_variants_differ(self) -> None:
        assert toy_group(0) != toy_group(1)
