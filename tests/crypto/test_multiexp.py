"""Randomized equivalence of the multiexp engine vs naive pow loops.

Every fast path (Straus, Pippenger, fixed-base tables, shared-base
Straus, the batch verifier, and the cached Feldman row verifiers) must
agree bit-for-bit with the textbook per-exponent implementation, on
honest inputs and — for the batch verifier — on adversarial inputs
where the randomized-linear-combination fallback must pinpoint exactly
the corrupted items.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.groups import (
    RFC5114_1024_160,
    SchnorrGroup,
    small_group,
    toy_group,
)
from repro.crypto.multiexp import (
    FixedBaseTable,
    SharedBases,
    _pippenger,
    _straus,
    fixed_base_table,
    multiexp,
)
from repro.crypto.polynomials import Polynomial

GROUPS = [toy_group(), small_group(), RFC5114_1024_160]
GROUP_IDS = [g.name for g in GROUPS]


def _naive(pairs: list[tuple[int, int]], p: int) -> int:
    acc = 1
    for base, exp in pairs:
        acc = acc * pow(base, exp, p) % p
    return acc


def _random_element(group: SchnorrGroup, rng: random.Random) -> int:
    return pow(group.g, rng.randrange(1, group.q), group.p)


@pytest.mark.parametrize("group", GROUPS, ids=GROUP_IDS)
@pytest.mark.parametrize("count", [0, 1, 2, 3, 7, 33])
def test_multiexp_matches_naive(group: SchnorrGroup, count: int) -> None:
    rng = random.Random(("multiexp", group.name, count).__repr__())
    pairs = [
        (_random_element(group, rng), rng.randrange(group.q))
        for _ in range(count)
    ]
    assert multiexp(pairs, group.p, group.q) == _naive(pairs, group.p)


@pytest.mark.parametrize("group", GROUPS, ids=GROUP_IDS)
def test_multiexp_edge_exponents(group: SchnorrGroup) -> None:
    rng = random.Random(("edges", group.name).__repr__())
    b = _random_element(group, rng)
    pairs = [(b, 0), (b, 1), (b, group.q - 1), (b, group.q), (1, 5)]
    assert multiexp(pairs, group.p, group.q) == _naive(
        [(base, e % group.q) for base, e in pairs], group.p
    )
    assert multiexp([], group.p, group.q) == 1
    with pytest.raises(ValueError):
        multiexp([(b, -1)], group.p)


def test_straus_and_pippenger_agree_at_any_size() -> None:
    """Both cores are exercised directly, below and above the cutoff."""
    group = toy_group()
    rng = random.Random(0xE14)
    for count in (2, 5, 64, 320):
        bases = [_random_element(group, rng) for _ in range(count)]
        exps = [rng.randrange(1, group.q) for _ in range(count)]
        expected = _naive(list(zip(bases, exps)), group.p)
        assert _straus(bases, exps, group.p) == expected
        assert _pippenger(bases, exps, group.p) == expected


@pytest.mark.parametrize("group", GROUPS, ids=GROUP_IDS)
def test_fixed_base_table_matches_pow(group: SchnorrGroup) -> None:
    rng = random.Random(("fixed", group.name).__repr__())
    table = FixedBaseTable(group.p, group.q, group.g)
    for exponent in [0, 1, 2, group.q - 1, group.q, group.q + 3] + [
        rng.randrange(group.q) for _ in range(10)
    ]:
        assert table.pow(exponent) == pow(group.g, exponent % group.q, group.p)
    # The process-wide cache hands back one table per parameter set.
    assert fixed_base_table(group.p, group.q, group.g) is fixed_base_table(
        group.p, group.q, group.g
    )


@pytest.mark.parametrize("group", GROUPS, ids=GROUP_IDS)
def test_shared_bases_matches_naive(group: SchnorrGroup) -> None:
    rng = random.Random(("shared", group.name).__repr__())
    bases = [_random_element(group, rng) for _ in range(5)]
    shared = SharedBases(bases, group.p, group.q)
    for _ in range(3):
        exps = [rng.randrange(group.q) for _ in bases]
        assert shared.multiexp(exps) == _naive(list(zip(bases, exps)), group.p)
    x = rng.randrange(2, 1000)
    expected = _naive(
        [(b, pow(x, i, group.q)) for i, b in enumerate(bases)], group.p
    )
    assert shared.power_row(x) == expected
    assert shared.multiexp([0] * len(bases)) == 1
    with pytest.raises(ValueError):
        shared.multiexp([1])


@pytest.mark.parametrize("group", GROUPS, ids=GROUP_IDS)
def test_batch_verifier_accepts_honest_batches(group: SchnorrGroup) -> None:
    rng = random.Random(("batch", group.name).__repr__())
    poly = Polynomial.random(4, group.q, rng)
    entries = tuple(group.commit(c) for c in poly.coeffs)
    verifier = group.batch_verifier(entries)
    items = [(i, poly(i)) for i in range(1, 12)]
    good, bad = verifier.verify(items, rng=rng)
    assert good == items and bad == []
    # Single-item batches use the direct path.
    good, bad = verifier.verify(items[:1], rng=rng)
    assert good == items[:1] and bad == []
    assert verifier.verify([], rng=rng) == ([], [])


@pytest.mark.parametrize("group", GROUPS, ids=GROUP_IDS)
def test_batch_verifier_pinpoints_adversarial_items(
    group: SchnorrGroup,
) -> None:
    """The fallback must identify exactly the corrupted senders."""
    rng = random.Random(("adversarial", group.name).__repr__())
    poly = Polynomial.random(3, group.q, rng)
    entries = tuple(group.commit(c) for c in poly.coeffs)
    verifier = group.batch_verifier(entries)
    for bad_indices in ([4], [2, 7], [1, 5, 9]):
        items = []
        for i in range(1, 10):
            value = poly(i)
            if i in bad_indices:
                value = (value + rng.randrange(1, group.q)) % group.q
            items.append((i, value))
        good, bad = verifier.verify(items, rng=rng)
        assert sorted(bad) == bad_indices
        assert [i for i, _ in good] == [
            i for i in range(1, 10) if i not in bad_indices
        ]
        assert all(value == poly(i) for i, value in good)


def test_batch_verifier_keeps_first_duplicate() -> None:
    group = toy_group()
    rng = random.Random(17)
    poly = Polynomial.random(2, group.q, rng)
    entries = tuple(group.commit(c) for c in poly.coeffs)
    verifier = group.batch_verifier(entries)
    good, bad = verifier.verify([(3, poly(3)), (3, poly(3) + 1)], rng=rng)
    assert good == [(3, poly(3))] and bad == []


# -- cached row verifiers vs the textbook double loops ----------------------


def _naive_verify_point(
    commitment: FeldmanCommitment, i: int, m: int, alpha: int
) -> bool:
    """Fig. 1 verify-point computed directly from the raw matrix."""
    g = commitment.group
    t = commitment.degree
    m_pows = [pow(m, j, g.q) for j in range(t + 1)]
    i_pows = [pow(i, ell, g.q) for ell in range(t + 1)]
    expected = 1
    for j in range(t + 1):
        for ell in range(t + 1):
            e = (m_pows[j] * i_pows[ell]) % g.q
            expected = g.mul(expected, pow(commitment.matrix[j][ell], e, g.p))
    return pow(g.g, alpha % g.q, g.p) == expected


def _naive_share_commitment(commitment: FeldmanCommitment, i: int) -> int:
    g = commitment.group
    acc = 1
    for j, row in enumerate(commitment.matrix):
        acc = g.mul(acc, pow(row[0], pow(i, j, g.q), g.p))
    return acc


@pytest.mark.parametrize("group", [toy_group(), small_group()], ids=["toy", "small"])
def test_row_verifier_matches_naive_predicates(group: SchnorrGroup) -> None:
    rng = random.Random(("rowver", group.name).__repr__())
    t = 3
    poly = BivariatePolynomial.random_symmetric(t, group.q, rng, secret=5)
    commitment = FeldmanCommitment.commit(poly, group)
    for i in (1, 2, 7):
        row = poly.row_polynomial(i)
        assert commitment.verify_poly(i, row)
        bad = Polynomial(
            (row.coeffs[0] + 1,) + row.coeffs[1:], group.q
        )
        assert not commitment.verify_poly(i, bad)
        assert commitment.share_commitment(i) == _naive_share_commitment(
            commitment, i
        )
        for m in (1, 4, 9):
            alpha = poly.evaluate(m, i)
            assert commitment.verify_point(i, m, alpha)
            assert _naive_verify_point(commitment, i, m, alpha)
            assert not commitment.verify_point(i, m, alpha + 1)
        # Batched point verification with one corrupted sender.
        items = [(m, poly.evaluate(m, i)) for m in range(1, 8)]
        items[3] = (items[3][0], (items[3][1] + 1) % group.q)
        good, bad_senders = commitment.batch_verify_points(i, items, rng=rng)
        assert bad_senders == [items[3][0]]
        assert len(good) == len(items) - 1


def test_row_verifier_handles_asymmetric_matrices() -> None:
    """The symmetry shortcut must not mis-collapse a general matrix."""
    group = toy_group()
    rng = random.Random(99)
    t = 2
    # A deliberately non-symmetric coefficient matrix f_jl.
    coeffs = [
        [rng.randrange(group.q) for _ in range(t + 1)] for _ in range(t + 1)
    ]
    matrix = tuple(
        tuple(group.commit(c) for c in row) for row in coeffs
    )
    commitment = FeldmanCommitment(matrix, group)

    def f(x: int, y: int) -> int:
        return (
            sum(
                coeffs[j][ell] * pow(x, j, group.q) * pow(y, ell, group.q)
                for j in range(t + 1)
                for ell in range(t + 1)
            )
            % group.q
        )

    for i in (1, 3):
        # verify-point(C, i, m, alpha) checks alpha = f(m, i).
        for m in (2, 5):
            assert commitment.verify_point(i, m, f(m, i))
            assert not commitment.verify_point(i, m, f(m, i) + 1)
            assert commitment.verify_point(i, m, f(m, i)) == _naive_verify_point(
                commitment, i, m, f(m, i)
            )
        # verify-poly(C, i, a) checks a(y) = f(i, y).
        row = Polynomial(
            tuple(
                sum(
                    coeffs[j][ell] * pow(i, j, group.q)
                    for j in range(t + 1)
                )
                % group.q
                for ell in range(t + 1)
            ),
            group.q,
        )
        assert commitment.verify_poly(i, row)
    assert not commitment._is_symmetric()


@pytest.mark.parametrize("group", [toy_group(), small_group()], ids=["toy", "small"])
def test_feldman_vector_batch_matches_single(group: SchnorrGroup) -> None:
    rng = random.Random(("vector", group.name).__repr__())
    poly = Polynomial.random(4, group.q, rng)
    vector = FeldmanVector.commit(poly, group)
    items = [(i, poly(i)) for i in range(1, 9)]
    good, bad = vector.batch_verify(items, rng=rng)
    assert good == items and bad == []
    for i, value in items:
        assert vector.verify_share(i, value)
        assert not vector.verify_share(i, value + 1)
    assert vector.evaluate_in_exponent(6) == pow(
        group.g, poly(6), group.p
    )
