"""Tests for Schnorr signatures (message authentication, §2.3).

Parameterized over both group backends via the ``bgroup`` fixture.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.schnorr import Signature, SigningKey, verify


class TestSignVerify:
    @given(st.binary(max_size=64), st.integers(0, 2**32))
    @settings(max_examples=40)
    def test_roundtrip(self, bgroup, message: bytes, seed: int) -> None:
        rng = random.Random(seed)
        key = SigningKey.generate(bgroup, rng)
        sig = key.sign(message, rng)
        assert verify(bgroup, key.public_key, message, sig)

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 2**32))
    @settings(max_examples=40)
    def test_rejects_modified_message(self, bgroup, message: bytes, seed: int) -> None:
        rng = random.Random(seed)
        key = SigningKey.generate(bgroup, rng)
        sig = key.sign(message, rng)
        tampered = bytes([message[0] ^ 1]) + message[1:]
        assert not verify(bgroup, key.public_key, tampered, sig)

    def test_rejects_wrong_key(self, bgroup) -> None:
        rng = random.Random(1)
        k1 = SigningKey.generate(bgroup, rng)
        k2 = SigningKey.generate(bgroup, rng)
        sig = k1.sign(b"msg", rng)
        assert not verify(bgroup, k2.public_key, b"msg", sig)

    def test_rejects_tampered_signature_fields(self, bgroup) -> None:
        rng = random.Random(2)
        q = bgroup.q
        key = SigningKey.generate(bgroup, rng)
        sig = key.sign(b"msg", rng)
        assert not verify(
            bgroup,
            key.public_key,
            b"msg",
            Signature((sig.challenge + 1) % q, sig.response),
        )
        assert not verify(
            bgroup,
            key.public_key,
            b"msg",
            Signature(sig.challenge, (sig.response + 1) % q),
        )

    def test_rejects_out_of_range_values(self, bgroup) -> None:
        rng = random.Random(3)
        key = SigningKey.generate(bgroup, rng)
        sig = key.sign(b"msg", rng)
        assert not verify(
            bgroup, key.public_key, b"msg", Signature(sig.challenge, bgroup.q)
        )
        assert not verify(
            bgroup, key.public_key, b"msg", Signature(-1, sig.response)
        )

    def test_rejects_invalid_public_key(self, bgroup) -> None:
        rng = random.Random(4)
        key = SigningKey.generate(bgroup, rng)
        sig = key.sign(b"msg", rng)
        # 0 and -1 are elements of neither backend.
        assert not verify(bgroup, 0, b"msg", sig)
        assert not verify(bgroup, -1, b"msg", sig)

    def test_signature_size(self, bgroup) -> None:
        rng = random.Random(5)
        sig = SigningKey.generate(bgroup, rng).sign(b"x", rng)
        assert sig.byte_size(bgroup) == 2 * bgroup.scalar_bytes

    def test_distinct_nonces_give_distinct_signatures(self, bgroup) -> None:
        rng = random.Random(6)
        key = SigningKey.generate(bgroup, rng)
        s1 = key.sign(b"m", rng)
        s2 = key.sign(b"m", rng)
        assert s1 != s2  # randomized signing
        assert verify(bgroup, key.public_key, b"m", s1)
        assert verify(bgroup, key.public_key, b"m", s2)
