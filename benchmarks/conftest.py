"""Benchmark harness plumbing.

Every bench prints a paper-vs-measured table and saves a copy under
``benchmarks/results/`` so the artifacts survive pytest's capture; the
EXPERIMENTS.md index references these files.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_table():
    """Render a table to stdout and persist it to results/<name>.txt."""

    def _save(table: Table, name: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.render()
        path = RESULTS_DIR / f"{name}.txt"
        existing = path.read_text() if path.exists() else ""
        if f"== {table.title} ==" not in existing:
            path.write_text(existing + text + "\n")

    return _save


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
