"""E12 — simulated vs. real-socket DKG (the paper's Internet claim).

The reproduction's discrete-event simulator predicts completion in
protocol time units; the new :mod:`repro.net` runtime executes the same
node state machines over real asyncio TCP on localhost with every
message crossing the wire codec.  This bench compares the two layers:

* **communication** — messages and bytes must match exactly (the same
  deterministic state machines emit the same traffic, priced by the
  same codec);
* **latency** — raw-socket wall time per DKG, next to the simulator's
  unit count projected at the configured time scale with injected
  link latency matching the sim's default UniformDelay(0.5, 1.5).
"""

from __future__ import annotations

from conftest import once

from repro.analysis import Table
from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig, run_dkg
from repro.net import run_local_cluster
from repro.sim.network import UniformDelay

G = toy_group()
SCALE = 0.005  # 5 ms per protocol time unit


def test_e12_sim_vs_real_traffic_and_latency(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for n in (4, 7, 10):
            t = (n - 1) // 3
            config = DkgConfig(n=n, t=t, group=G)
            sim = run_dkg(config, seed=12, delay_model=UniformDelay(0.5, 1.5))
            assert sim.succeeded
            real = run_local_cluster(
                config,
                seed=12,
                time_scale=SCALE,
                delay_model=UniformDelay(0.5, 1.5),
            )
            assert real.succeeded, real.errors
            # Traffic matches the deterministic sim exactly unless
            # wall-clock jitter fired a view-change timeout the sim
            # never saw — visible as lead-ch traffic.  In that case the
            # real run can only send *more*.
            race_free = real.metrics.messages_by_kind.get(
                "dkg.lead-ch", 0
            ) == sim.metrics.messages_by_kind.get("dkg.lead-ch", 0)
            if race_free:
                assert real.metrics.messages_total == sim.metrics.messages_total
                assert real.metrics.bytes_total == sim.metrics.bytes_total
            else:
                assert real.metrics.messages_total >= sim.metrics.messages_total
            projected_ms = sim.last_completion_time * SCALE * 1000
            real_ms = real.wall_seconds * 1000
            rows.append(
                (
                    n,
                    sim.metrics.messages_total,
                    sim.metrics.bytes_total,
                    round(projected_ms, 1),
                    round(real_ms, 1),
                    round(real_ms / projected_ms, 2),
                )
            )
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E12: simulated vs real-socket DKG (identical traffic by construction)",
        ["n", "messages", "bytes", "sim-projected ms", "real TCP ms", "real/sim"],
    )
    for row in rows:
        table.add(*row)
    save_table(table, "e12_real_network")


def test_e12_raw_socket_floor(benchmark, save_table) -> None:
    """No injected latency: how fast the real stack can go — the wire
    codec + kernel sockets + event loop floor for one full DKG."""

    def sweep():
        rows = []
        for n in (4, 7):
            t = (n - 1) // 3
            config = DkgConfig(n=n, t=t, group=G)
            real = run_local_cluster(config, seed=5, time_scale=SCALE)
            assert real.succeeded, real.errors
            per_msg_us = real.wall_seconds / real.metrics.messages_total * 1e6
            rows.append(
                (
                    n,
                    real.metrics.messages_total,
                    round(real.wall_seconds * 1000, 1),
                    round(per_msg_us, 1),
                )
            )
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E12b: raw-socket DKG floor (no injected latency)",
        ["n", "messages", "wall ms", "us/message"],
    )
    for row in rows:
        table.add(*row)
    save_table(table, "e12_real_network")
