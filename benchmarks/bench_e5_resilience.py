"""E5 — the resilience bound n >= 3t + 2f + 1 (§2.2).

Paper claims: 3t + 2f + 1 nodes are necessary and sufficient; with
f = 0 the classic 3t + 1 applies; with t = 0, 2f + 1 nodes are needed.
The bench sweeps (n, t, f) at and below the bound, with the adversary
actually spending its full corruption/crash budget, and records
success/failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from conftest import once

from repro.analysis import Table, resilience_bound
from repro.crypto.groups import toy_group
from repro.sim.adversary import Adversary
from repro.sim.clock import TimeoutPolicy
from repro.sim.node import Context, ProtocolNode
from repro.dkg import DkgConfig, run_dkg

G = toy_group()


@dataclass
class SilentNode(ProtocolNode):
    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        pass

    def on_operator(self, payload: Any, ctx: Context) -> None:
        pass


def _attempt(n: int, t: int, f: int, seed: int = 11) -> bool:
    """Run a DKG with t silent Byzantine nodes and f crashed nodes;
    return True iff every honest up node completed."""
    byzantine = set(range(n - t + 1, n + 1))  # the top t indices
    crashed = list(range(n - t - f + 1, n - t + 1))  # next f indices
    cfg = DkgConfig(
        n=n, t=t, f=f, group=G, enforce_resilience=False,
        timeout=TimeoutPolicy(initial=15.0, multiplier=1.5, cap=60.0),
    )
    adv = Adversary(
        t=t, f=f,
        byzantine=frozenset(byzantine),
        crash_plan=[(0.0, i, None) for i in crashed],
        d_budget=max(10, f),
    )

    def factory(i, config, keystore, ca):
        return SilentNode(i) if i in byzantine else None

    res = run_dkg(
        cfg, seed=seed, adversary=adv, node_factory=factory,
        until=3_000.0, max_events=None,
    )
    honest_up = [
        i for i in range(1, n + 1) if i not in byzantine and i not in crashed
    ]
    return all(res.nodes[i].completed is not None for i in honest_up)


def test_e5_boundary_grid(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for t, f in [(1, 0), (2, 0), (1, 1), (0, 2), (2, 1)]:
            bound = resilience_bound(t, f)
            at_bound = _attempt(bound, t, f)
            below = _attempt(bound - 1, t, f)
            rows.append((t, f, bound, at_bound, below))
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E5: DKG success at and below n = 3t + 2f + 1 (paper: tight bound)",
        ["t", "f", "bound n", "succeeds at n", "succeeds at n-1"],
    )
    for t, f, bound, ok_at, ok_below in rows:
        table.add(t, f, bound, ok_at, ok_below)
        assert ok_at, f"DKG must succeed at the bound (t={t}, f={f})"
        assert not ok_below, f"DKG must fail below the bound (t={t}, f={f})"
    save_table(table, "E5")


def test_e5_slack_above_bound_helps_latency(benchmark, save_table) -> None:
    """Extra honest nodes above the bound reduce completion time: the
    output threshold n - t - f is met by faster quorums."""

    def sweep():
        rows = []
        t, f = 2, 0
        for n in (7, 9, 11):
            cfg = DkgConfig(n=n, t=t, f=f, group=G)
            res = run_dkg(cfg, seed=12)
            assert res.succeeded
            rows.append((n, res.last_completion_time))
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E5b: completion time vs slack above the bound (t=2, f=0)",
        ["n", "last completion time"],
    )
    for n, when in rows:
        table.add(n, when)
    save_table(table, "E5")
    # More nodes => quorums fill from the fastest messages; the slowest
    # completion should not degrade.
    assert rows[-1][1] <= rows[0][1] * 1.5
