"""E1 — HybridVSS crash-free complexity (§3 Efficiency Discussion).

Paper claims:
* message complexity O(n^2) — exactly n + 2n^2 in the crash-free case;
* communication complexity O(kappa n^4) with full commitment matrices;
* O(kappa n^3) using the Cachin et al. hash compression.

The bench sweeps n, measures both codecs, and checks the growth orders
via log-log regression.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import (
    Table,
    fit_exponent,
    vss_messages_crash_free,
)
from repro.crypto.groups import toy_group
from repro.crypto.hashing import FullMatrixCodec, HashedMatrixCodec
from repro.vss import VssConfig, run_vss

NS = [7, 10, 13, 16, 19, 22]
G = toy_group()


def _sweep(codec_factory):
    rows = []
    for n in NS:
        t = (n - 1) // 3
        cfg = VssConfig(n=n, t=t, group=G, codec=codec_factory())
        res = run_vss(cfg, secret=1, seed=1)
        assert len(res.completed_nodes) == n
        rows.append((n, t, res.metrics.messages_total, res.metrics.bytes_total))
    return rows


def test_e1_message_complexity_quadratic(benchmark, save_table) -> None:
    rows = once(benchmark, lambda: _sweep(FullMatrixCodec))
    table = Table(
        "E1a: HybridVSS messages vs n (paper: exactly n + 2n^2)",
        ["n", "t", "measured msgs", "paper msgs", "ratio"],
    )
    for n, t, msgs, _ in rows:
        predicted = vss_messages_crash_free(n)
        table.add(n, t, msgs, predicted, msgs / predicted)
        assert msgs == predicted  # the count is exact, not just asymptotic
    save_table(table, "E1")
    exponent = fit_exponent([r[0] for r in rows], [r[2] for r in rows])
    assert 1.8 <= exponent <= 2.1, f"message growth ~n^{exponent:.2f}, want ~n^2"


def test_e1_bytes_full_matrix_quartic(benchmark, save_table) -> None:
    rows = once(benchmark, lambda: _sweep(FullMatrixCodec))
    table = Table(
        "E1b: HybridVSS bytes, full-matrix codec (paper: O(kappa n^4))",
        ["n", "t", "measured bytes", "fitted order"],
    )
    exponent = fit_exponent([r[0] for r in rows], [r[3] for r in rows])
    for n, t, _, total in rows:
        table.add(n, t, total, f"n^{exponent:.2f}")
    save_table(table, "E1")
    # t ~ n/3, so bytes ~ n^2 msgs * n^2 matrix = n^4.
    assert 3.3 <= exponent <= 4.2, f"byte growth ~n^{exponent:.2f}, want ~n^4"


def test_e1_bytes_hashed_codec_cubic(benchmark, save_table) -> None:
    full = _sweep(FullMatrixCodec)
    hashed = once(benchmark, lambda: _sweep(HashedMatrixCodec))
    table = Table(
        "E1c: hash-compressed codec (paper: O(kappa n^3)); savings vs full",
        ["n", "full bytes", "hashed bytes", "savings factor"],
    )
    for (n, _, _, fb), (_, _, _, hb) in zip(full, hashed):
        table.add(n, fb, hb, fb / hb)
        assert hb < fb
    save_table(table, "E1")
    # Savings must *grow* with n (quartic vs cubic asymptotics).
    savings = [fb / hb for (_, _, _, fb), (_, _, _, hb) in zip(full, hashed)]
    assert savings[-1] > savings[0]
    # Exact analytic accounting for the measured bytes: at toy element
    # sizes the quadratic digest term still dominates the cubic matrix
    # term, so the asymptotic order is checked on the closed form below.
    for n, t, _, hb in hashed:
        matrix = (t + 1) ** 2 * G.element_bytes
        send = n * (8 + matrix + (t + 1) * G.scalar_bytes)
        votes = 2 * n * n * (8 + 32 + G.scalar_bytes)
        assert hb == send + votes


def test_e1_asymptotic_orders_of_the_codec_model(benchmark, save_table) -> None:
    """The paper's O(kappa n^4) vs O(kappa n^3) split, checked on the
    analytic model at deployment scales (n up to 400) where the
    asymptotic term dominates regardless of element size."""
    from repro.analysis import vss_bytes_crash_free_full, vss_bytes_crash_free_hashed

    def orders():
        big_ns = [50, 100, 200, 400]
        full = [vss_bytes_crash_free_full(n, n // 3, 16) for n in big_ns]
        hashed = [vss_bytes_crash_free_hashed(n, n // 3, 16) for n in big_ns]
        return (
            big_ns,
            fit_exponent(big_ns, full),
            fit_exponent(big_ns, hashed),
        )

    big_ns, full_order, hashed_order = once(benchmark, orders)
    table = Table(
        "E1d: asymptotic byte orders of the two codecs (model, large n)",
        ["codec", "fitted order", "paper"],
    )
    table.add("full matrix", f"n^{full_order:.2f}", "O(kappa n^4)")
    table.add("hashed", f"n^{hashed_order:.2f}", "O(kappa n^3)")
    save_table(table, "E1")
    assert 3.7 <= full_order <= 4.1
    assert 2.7 <= hashed_order <= 3.1
