"""E18 — the parallel crypto executor: cores axis over the hot paths.

Extends the E14 (hot-path batching) / E15 (backend) trajectory with the
third raw-speed axis: fanning the batchable crypto work across a
process pool (``repro.crypto.parallel``).  Three workloads per backend,
each swept over ``--cores`` ∈ {1, 2, 4, auto}:

* **batched verification** — many independent RLC claim sets at the
  n=13 DKG shape, the embarrassingly-parallel verification load of a
  node validating a whole deployment's sharings.  Serial and parallel
  results are asserted identical set-by-set;
* **DKG e2e** — a full simulated DKG with the executor installed
  ambient (thresholds lowered so protocol-sized batches engage the
  pool); the transcript hash is asserted unchanged at every core count
  — the determinism guarantee the ``--cores`` flag rides on;
* **pool refill** — ``ThresholdService`` presignature prefill, where
  the whole deficit forges as chunked nonce DKGs across the pool.

Honest-accounting note: ``available_cpus`` is recorded in the report.
A process pool cannot beat serial on a single-core box, so the ≥2x
acceptance gate (4 cores vs 1 at n=13) and the --smoke not-slower
guard are enforced only where the hardware can express them
(``available_cpus`` >= 4 and >= 2 respectively); correctness
assertions (identical results, identical transcripts) are enforced
everywhere, every run.

Run::

    PYTHONPATH=src python benchmarks/bench_e18_parallel.py [--smoke]

Acceptance (multi-core hardware): batched verification throughput at 4
cores >= 2x the 1-core throughput at n=13 on at least one backend.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.crypto import parallel
from repro.crypto.backend import BatchedClaimVerifier
from repro.crypto.groups import group_by_name
from repro.crypto.parallel import CryptoExecutor
from repro.crypto.polynomials import Polynomial
from repro.runtime.trace import transcript_hash
from repro.sim.network import ConstantDelay
from repro.service.workers import ServiceConfig, ThresholdService
from repro.dkg import DkgConfig, run_dkg

CORES_AXIS: list[int | str] = [1, 2, 4, "auto"]


def _resolve(cores: int | str) -> int:
    return parallel.resolve_cores(0 if cores == "auto" else int(cores))


def _claim_sets(group, n: int, t: int, sets: int, seed: int = 18):
    """Independent degree-t sharings, n claims each (the DKG shape)."""
    rng = random.Random(seed)
    jobs = []
    for _ in range(sets):
        poly = Polynomial(
            tuple(rng.randrange(group.q) for _ in range(t + 1)), group.q
        )
        entries = [group.power(group.g, c) for c in poly.coeffs]
        batch = [(i, poly.evaluate(i)) for i in range(1, n + 1)]
        jobs.append((entries, group.g, batch, rng.getrandbits(128)))
    return jobs


def measure_batched_verification(
    group, n: int, t: int, sets: int
) -> tuple[dict, bool]:
    """Claims/second over independent sets, serial vs each core count."""
    jobs = _claim_sets(group, n, t, sets)
    # Untimed warm pass: group-level fixed-base/shared-base caches fill
    # on first contact and would otherwise flatter whichever mode runs
    # second.
    for entries, base, batch, salt in jobs[:2]:
        BatchedClaimVerifier(group, entries, base).verify_salted(batch, salt)
    t0 = time.perf_counter()
    serial_results = [
        BatchedClaimVerifier(group, entries, base).verify_salted(batch, salt)[:2]
        for entries, base, batch, salt in jobs
    ]
    serial_s = time.perf_counter() - t0
    total_claims = sets * n
    row: dict = {
        "n": n,
        "t": t,
        "sets": sets,
        "serial_claims_per_s": round(total_claims / serial_s, 1),
        "cores": {},
    }
    results_identical = True
    for cores in CORES_AXIS:
        resolved = _resolve(cores)
        with CryptoExecutor(cores=resolved) as executor:
            executor.warm()
            t0 = time.perf_counter()
            pooled = executor.verify_claim_sets(group, jobs)
            elapsed = time.perf_counter() - t0
        if pooled is None:  # serial executor: run the reference path
            t0 = time.perf_counter()
            pooled = [
                BatchedClaimVerifier(group, entries, base).verify_salted(
                    batch, salt
                )[:2]
                for entries, base, batch, salt in jobs
            ]
            elapsed = time.perf_counter() - t0
        if pooled != serial_results:
            results_identical = False
        row["cores"][str(cores)] = {
            "resolved": resolved,
            "claims_per_s": round(total_claims / elapsed, 1),
            "speedup_vs_serial": round(serial_s / elapsed, 2),
        }
    row["results_identical"] = results_identical
    return row, results_identical


def measure_dkg_e2e(group, n: int, t: int, seed: int = 18) -> tuple[dict, bool]:
    """Full DKG with the executor ambient; transcript hash per cores."""
    config = DkgConfig(n=n, t=t, f=0, group=group)
    row: dict = {"n": n, "t": t, "cores": {}}
    hashes = set()
    for cores in CORES_AXIS:
        resolved = _resolve(cores)
        executor = CryptoExecutor(cores=resolved, min_claims=8, min_terms=64)
        with executor, parallel.executor_scope(executor):
            t0 = time.perf_counter()
            result = run_dkg(config, seed=seed)
            elapsed = time.perf_counter() - t0
        assert result.succeeded
        digest = transcript_hash(
            ((i, node.completed) for i, node in result.nodes.items()),
            group=group,
        )
        hashes.add(digest)
        row["cores"][str(cores)] = {
            "resolved": resolved,
            "seconds": round(elapsed, 3),
        }
    row["transcript_hash_invariant"] = len(hashes) == 1
    return row, len(hashes) == 1


def measure_pool_refill(group, pool_target: int, seed: int = 18) -> dict:
    """Presignature prefill: the whole deficit forged per core count."""
    import asyncio

    row: dict = {"pool_target": pool_target, "cores": {}}
    for cores in CORES_AXIS:
        resolved = _resolve(cores)
        service = ThresholdService(
            ServiceConfig(
                n=5,
                t=1,
                group=group,
                seed=seed,
                pool_target=pool_target,
                cores=resolved,
            )
        )

        async def _prefill(service=service):
            t0 = time.perf_counter()
            await service.start()
            elapsed = time.perf_counter() - t0
            level = service.pool.level
            await service.stop()
            return elapsed, level

        elapsed, level = asyncio.run(_prefill())
        assert level == pool_target
        row["cores"][str(cores)] = {
            "resolved": resolved,
            "seconds": round(elapsed, 3),
            "presigs_per_s": round(pool_target / elapsed, 2),
        }
    return row


def run_bench(smoke: bool = False) -> dict:
    backends = (
        {"secp256k1": group_by_name("secp256k1")}
        if smoke
        else {
            "modp-2048-256": group_by_name("rfc5114-2048-256"),
            "secp256k1": group_by_name("secp256k1"),
        }
    )
    cpus = parallel.available_cpus()
    report: dict = {
        "bench": "e18_parallel",
        "mode": "smoke" if smoke else "full",
        "available_cpus": cpus,
        "cores_axis": [str(c) for c in CORES_AXIS],
        "backends": {},
    }
    verify_sets = 8 if smoke else 24
    all_identical = True
    all_invariant = True
    for name, group in backends.items():
        print(f"-- {name} (available_cpus={cpus})")
        row: dict = {"group_name": group.name}
        verification, identical = measure_batched_verification(
            group, n=13, t=4, sets=verify_sets
        )
        all_identical &= identical
        row["verification"] = verification
        print(f"   verification: {verification['cores']}")
        dkg, invariant = measure_dkg_e2e(
            group, n=7 if smoke else 13, t=2 if smoke else 4
        )
        all_invariant &= invariant
        row["dkg_e2e"] = dkg
        print(f"   dkg e2e: {dkg['cores']}")
        row["pool_refill"] = measure_pool_refill(
            group, pool_target=4 if smoke else 8
        )
        print(f"   pool refill: {row['pool_refill']['cores']}")
        report["backends"][name] = row
    best_speedup = max(
        row["verification"]["cores"]["4"]["speedup_vs_serial"]
        for row in report["backends"].values()
    )
    report["headline"] = {
        "results_identical": all_identical,
        "transcript_hash_invariant": all_invariant,
        "best_verify_speedup_4_cores": best_speedup,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced shapes; fail if parallel verification is slower "
        "than serial at n=13 (enforced on >= 2 cores)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e18.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    if not args.smoke:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    headline = report["headline"]
    print(f"headline: {headline}")
    # Correctness gates: unconditional, every run, every core count.
    if not headline["results_identical"]:
        print("ACCEPTANCE MISS: parallel results diverged", file=sys.stderr)
        return 1
    if not headline["transcript_hash_invariant"]:
        print(
            "ACCEPTANCE MISS: transcript hash changed under --cores > 1",
            file=sys.stderr,
        )
        return 1
    # Throughput gates: only where the hardware can express a speedup.
    cpus = report["available_cpus"]
    if args.smoke and cpus >= 2:
        worst = min(
            row["verification"]["cores"]["auto"]["speedup_vs_serial"]
            for row in report["backends"].values()
        )
        # Shared-runner slack: "not slower" with a 10% noise allowance.
        if worst < 0.9:
            print(
                f"ACCEPTANCE MISS: parallel batched verification slower "
                f"than serial ({worst}x) on {cpus} cpus",
                file=sys.stderr,
            )
            return 1
    if not args.smoke and cpus >= 4:
        if headline["best_verify_speedup_4_cores"] < 2.0:
            print(
                "ACCEPTANCE MISS: best 4-core verification speedup "
                f"{headline['best_verify_speedup_4_cores']}x < 2x",
                file=sys.stderr,
            )
            return 1
    elif cpus < 4:
        print(
            f"note: {cpus} cpu(s) available — throughput gates waived, "
            "correctness gates enforced"
        )
    print("acceptance ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
