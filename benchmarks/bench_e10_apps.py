"""E10 — threshold applications driven by DKG output (§1 motivation).

The paper motivates DKG as the missing building block for dealerless
threshold encryption/signatures and distributed PRFs/coins.  This bench
runs each application end-to-end over a real simulated DKG and records
the operation costs (partials verified, exponentiations implied,
wall-clock for the crypto layer).
"""

from __future__ import annotations

import random
import time

from conftest import once

from repro.analysis import Table
from repro.apps import dprf, threshold_elgamal as eg, threshold_schnorr as ts
from repro.crypto import schnorr
from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig, run_dkg

G = toy_group()


def test_e10_threshold_elgamal_roundtrip(benchmark, save_table) -> None:
    def run():
        dkg = run_dkg(DkgConfig(n=7, t=2, group=G), seed=61)
        rng = random.Random(61)
        message = G.commit(123)
        start = time.perf_counter()
        ct = eg.encrypt(G, dkg.public_key, message, rng)
        partials = [
            eg.partial_decrypt(G, ct, i, dkg.shares[i], rng)
            for i in (1, 3, 5)
        ]
        plain = eg.combine(G, ct, dkg.commitment, partials, t=2)
        elapsed = time.perf_counter() - start
        return message == plain, len(partials), elapsed

    ok, partials, elapsed = once(benchmark, run)
    table = Table(
        "E10a: threshold ElGamal decryption over DKG output",
        ["decrypted correctly", "partials used", "crypto seconds"],
    )
    table.add(ok, partials, elapsed)
    save_table(table, "E10")
    assert ok


def test_e10_threshold_schnorr_signing(benchmark, save_table) -> None:
    def run():
        key = run_dkg(DkgConfig(n=7, t=2, group=G), seed=62)
        nonce = run_dkg(DkgConfig(n=7, t=2, group=G), seed=63)
        message = b"bench signature"
        partials = [
            ts.PartialSignature(
                i,
                ts.partial_sign(
                    G, message, key.shares[i], nonce.shares[i],
                    key.public_key, nonce.public_key,
                ),
            )
            for i in (2, 4, 6)
        ]
        sig = ts.combine(
            G, message, partials, key.commitment, nonce.commitment, t=2
        )
        verified = schnorr.verify(G, key.public_key, message, sig)
        # Total distributed cost: 2 DKGs (key + nonce) worth of messages.
        total_msgs = key.metrics.messages_total + nonce.metrics.messages_total
        return verified, total_msgs

    verified, total_msgs = once(benchmark, run)
    table = Table(
        "E10b: threshold Schnorr (key DKG + per-message nonce DKG)",
        ["signature verifies", "total DKG messages (2 instances)"],
    )
    table.add(verified, total_msgs)
    save_table(table, "E10")
    assert verified


def test_e10_distributed_coin_throughput(benchmark, save_table) -> None:
    def run():
        dkg = run_dkg(DkgConfig(n=7, t=2, group=G), seed=64)
        rng = random.Random(64)
        flips = []
        start = time.perf_counter()
        for round_no in range(20):
            tag = f"coin-{round_no}".encode()
            partials = [
                dprf.partial_eval(G, tag, i, dkg.shares[i], rng)
                for i in (1, 2, 3)
            ]
            flips.append(dprf.coin_flip(G, tag, dkg.commitment, partials, t=2))
        elapsed = time.perf_counter() - start
        return flips, elapsed

    flips, elapsed = once(benchmark, run)
    table = Table(
        "E10c: distributed common coin (DDH DPRF), 20 flips",
        ["flips", "ones", "seconds total", "coins/sec"],
    )
    table.add(len(flips), sum(flips), elapsed, len(flips) / elapsed)
    save_table(table, "E10")
    assert set(flips) <= {0, 1}
    assert 2 <= sum(flips) <= 18  # both outcomes occur


def test_e10_partial_verification_filters_byzantine(benchmark, save_table) -> None:
    def run():
        dkg = run_dkg(DkgConfig(n=7, t=2, group=G), seed=65)
        rng = random.Random(65)
        tag = b"robustness"
        good = [
            dprf.partial_eval(G, tag, i, dkg.shares[i], rng) for i in (1, 2, 3)
        ]
        bad = [
            dprf.partial_eval(G, tag, i, dkg.shares[i] + 7, rng)
            for i in (4, 5)
        ]
        value = dprf.combine(G, tag, dkg.commitment, bad + good, t=2)
        oracle = G.power(dprf.input_point(G, tag), dkg.reconstruct())
        rejected = sum(
            not dprf.verify_partial(G, tag, dkg.commitment, p) for p in bad
        )
        return value == oracle, rejected

    correct, rejected = once(benchmark, run)
    table = Table(
        "E10d: Byzantine partial contributions filtered by DLEQ proofs",
        ["output correct despite 2 bad partials", "bad partials rejected"],
    )
    table.add(correct, rejected)
    save_table(table, "E10")
    assert correct and rejected == 2
