"""E3 — DKG optimistic-phase complexity (§4 Efficiency).

Paper claims: the n parallel HybridVSS instances dominate at
O(t d n^3) messages / O(kappa t d n^4) bits; the leader's reliable
broadcast adds only O(t d n^2) messages.  Crash-free, the totals are
exact: n * (n + 2n^2) VSS messages + (n + 2n^2) broadcast messages.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import Table, dkg_messages_optimistic, fit_exponent
from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig, run_dkg

NS = [7, 10, 13, 16, 19]
G = toy_group()


def _sweep():
    rows = []
    for n in NS:
        t = (n - 1) // 3
        res = run_dkg(DkgConfig(n=n, t=t, group=G), seed=2)
        assert res.succeeded
        assert res.metrics.leader_changes == 0  # optimistic path
        vss_msgs = sum(
            v for k, v in res.metrics.messages_by_kind.items()
            if k.startswith("vss.")
        )
        dkg_msgs = sum(
            v for k, v in res.metrics.messages_by_kind.items()
            if k.startswith("dkg.")
        )
        rows.append(
            (n, t, res.metrics.messages_total, vss_msgs, dkg_msgs,
             res.metrics.bytes_total)
        )
    return rows


def test_e3_total_message_count_exact(benchmark, save_table) -> None:
    rows = once(benchmark, _sweep)
    table = Table(
        "E3a: DKG optimistic messages (paper: n VSSs + 1 reliable broadcast)",
        ["n", "t", "measured", "paper exact", "ratio"],
    )
    for n, t, total, _, _, _ in rows:
        predicted = dkg_messages_optimistic(n)
        table.add(n, t, total, predicted, total / predicted)
        assert total == predicted
    save_table(table, "E3")
    exponent = fit_exponent([r[0] for r in rows], [r[2] for r in rows])
    assert 2.7 <= exponent <= 3.2, f"message growth ~n^{exponent:.2f}, want ~n^3"


def test_e3_broadcast_overhead_is_one_order_below_vss(
    benchmark, save_table
) -> None:
    rows = once(benchmark, _sweep)
    table = Table(
        "E3b: VSS vs agreement traffic (paper: O(n^3) vs O(n^2) messages)",
        ["n", "vss msgs", "agreement msgs", "agreement share"],
    )
    for n, _, total, vss_msgs, dkg_msgs, _ in rows:
        table.add(n, vss_msgs, dkg_msgs, dkg_msgs / total)
        # agreement traffic is exactly one reliable broadcast
        assert dkg_msgs == n + 2 * n * n
    save_table(table, "E3")
    vss_order = fit_exponent([r[0] for r in rows], [r[3] for r in rows])
    dkg_order = fit_exponent([r[0] for r in rows], [r[4] for r in rows])
    assert vss_order - dkg_order > 0.7  # one polynomial order apart


def test_e3_bytes_growth(benchmark, save_table) -> None:
    rows = once(benchmark, _sweep)
    table = Table(
        "E3c: DKG optimistic bytes (paper: O(kappa t d n^4))",
        ["n", "bytes", "fitted order"],
    )
    exponent = fit_exponent([r[0] for r in rows], [r[5] for r in rows])
    for n, _, _, _, _, total_bytes in rows:
        table.add(n, total_bytes, f"n^{exponent:.2f}")
    save_table(table, "E3")
    # t ~ n/3: n^3 messages x n^2-entry matrices / mixed smaller terms.
    assert 3.5 <= exponent <= 4.6, f"byte growth ~n^{exponent:.2f}, want ~n^4+"
