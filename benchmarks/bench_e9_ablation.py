"""E9 — design-choice ablations (§1, §3).

Paper claims:
* symmetric bivariate polynomials give a constant-factor complexity
  reduction over general-bivariate AVSS (§3);
* Feldman commitments are chosen over Pedersen's for simplicity and
  efficiency — Pedersen costs a second generator exponentiation per
  commitment entry and a blinding polynomial (§1).
"""

from __future__ import annotations

import random
import time

from conftest import once

from repro.analysis import Table
from repro.baselines import run_general_avss
from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.groups import small_group, toy_group
from repro.crypto.pedersen import PedersenCommitment, derive_second_generator
from repro.crypto.polynomials import Polynomial
from repro.vss import VssConfig, run_vss

G = toy_group()


def test_e9_symmetric_vs_general_bivariate(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for n in (7, 10, 13, 16):
            t = (n - 1) // 3
            cfg = VssConfig(n=n, t=t, group=G)
            sym = run_vss(cfg, secret=1, seed=51)
            gen = run_general_avss(cfg, secret=1, seed=51)
            rows.append(
                (n, sym.metrics.bytes_total, gen.metrics.bytes_total)
            )
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E9a: symmetric vs general bivariate VSS bytes (paper: constant factor)",
        ["n", "symmetric", "general (AVSS)", "general/symmetric"],
    )
    ratios = []
    for n, sym_bytes, gen_bytes in rows:
        ratio = gen_bytes / sym_bytes
        ratios.append(ratio)
        table.add(n, sym_bytes, gen_bytes, ratio)
        assert ratio > 1.0
    save_table(table, "E9")
    # Constant factor: the ratio does not grow with n.
    assert max(ratios) / min(ratios) < 1.3


def test_e9_feldman_vs_pedersen_commit_time(benchmark, save_table) -> None:
    """Commitment computation cost: Pedersen doubles the exponentiations
    (g^a h^b per entry) and needs the blinding polynomial."""
    group = small_group()  # 160-bit q: exponentiation cost is visible
    rng = random.Random(52)
    t = 5
    h = derive_second_generator(group)

    def measure():
        results = []
        reps = 20
        start = time.perf_counter()
        for _ in range(reps):
            f = BivariatePolynomial.random_symmetric(t, group.q, rng)
            FeldmanCommitment.commit(f, group)
        feldman_time = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in range(reps):
            value = Polynomial.random(t, group.q, rng)
            blind = Polynomial.random(t, group.q, rng)
            PedersenCommitment.commit(value, blind, group, h)
        pedersen_vec_time = (time.perf_counter() - start) / reps
        # Normalize per committed coefficient: Feldman commits a
        # (t+1)^2 matrix, Pedersen here a (t+1) vector.
        results.append(
            (feldman_time / (t + 1) ** 2, pedersen_vec_time / (t + 1))
        )
        return results

    results = once(benchmark, measure)
    feldman_per, pedersen_per = results[0]
    table = Table(
        "E9b: per-coefficient commitment cost, 160-bit group (seconds)",
        ["scheme", "sec/coefficient", "relative"],
    )
    table.add("Feldman (g^a)", feldman_per, 1.0)
    table.add("Pedersen (g^a h^b)", pedersen_per, pedersen_per / feldman_per)
    save_table(table, "E9")
    # Pedersen costs ~2x per coefficient (two exponentiations + mul).
    assert 1.5 <= pedersen_per / feldman_per <= 3.5


def test_e9_pedersen_share_size_overhead(benchmark, save_table) -> None:
    """Pedersen shares carry the blinding value: 2x scalar payload."""

    def measure():
        group = toy_group()
        feldman_share = group.scalar_bytes
        pedersen_share = 2 * group.scalar_bytes
        return feldman_share, pedersen_share

    feldman_share, pedersen_share = once(benchmark, measure)
    table = Table(
        "E9c: per-share payload (paper: Feldman chosen for efficiency)",
        ["scheme", "share bytes"],
    )
    table.add("Feldman", feldman_share)
    table.add("Pedersen", pedersen_share)
    save_table(table, "E9")
    assert pedersen_share == 2 * feldman_share
