"""E15 — group backends at matched ~128-bit security: modp vs secp256k1.

The protocols only touch the group through the
:mod:`repro.crypto.backend` interface, so the whole stack runs over
either backend unchanged.  This bench quantifies what the elliptic
curve buys at the security level the modp stack pays 2048-bit
arithmetic for:

* **primitives** — fixed-base commit, variable-base exponentiation,
  Schnorr sign/verify round-trips;
* **DKG e2e** — full simulated DKG completion at n ∈ {7, 13};
* **verification** — batched point verification against one bivariate
  commitment (the Fig. 1 hot path, post-E14 batching on both sides);
* **signing** — threshold-Schnorr partial generation + batched combine;
* **wire** — serialized element sizes and the dealer's ``send`` frame.

The modp reference is the standardized RFC 5114 §2.3 group
(``group_by_name("rfc5114-2048-256")`` — the checked-in RFC constants,
2048-bit field / 256-bit prime-order subgroup), secp256k1 is the curve
backend.  Both have |q| = 256, so scalar work is identical and the
delta is pure group-arithmetic cost.

Run::

    PYTHONPATH=src python benchmarks/bench_e15_backends.py [--smoke]

Acceptance: secp256k1 DKG e2e >= 3x faster than modp-2048-256 at n=7.
``--smoke`` runs a single reduced shape as a CI regression guard with a
relaxed >= 2x gate (shared runners are noisy).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.apps import threshold_schnorr
from repro.crypto import schnorr
from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.groups import group_by_name
from repro.net import wire
from repro.vss.messages import SendMsg, SessionId
from repro.dkg import DkgConfig, run_dkg


def _time(fn, rounds: int) -> float:
    t0 = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - t0) / rounds


def measure_primitives(group, rounds: int = 50, seed: int = 15) -> dict:
    rng = random.Random(seed)
    scalars = [group.random_nonzero_scalar(rng) for _ in range(rounds)]
    base = group.power(group.g, scalars[0])
    group.commit(scalars[0])  # warm the fixed-base table (one-time build)
    it = iter(scalars * 3)
    commit_s = _time(lambda: group.commit(next(it)), rounds)
    it = iter(scalars * 3)
    power_s = _time(lambda: group.power(base, next(it)), rounds)
    key = schnorr.SigningKey.generate(group, rng)
    sign_s = _time(lambda: key.sign(b"bench", rng), rounds)
    sig = key.sign(b"bench", rng)
    verify_s = _time(
        lambda: schnorr.verify(group, key.public_key, b"bench", sig), rounds
    )
    return {
        "commit_ms": round(commit_s * 1e3, 3),
        "power_ms": round(power_s * 1e3, 3),
        "schnorr_sign_ms": round(sign_s * 1e3, 3),
        "schnorr_verify_ms": round(verify_s * 1e3, 3),
    }


def measure_dkg(group, n: int, t: int, seed: int = 15):
    t0 = time.perf_counter()
    result = run_dkg(DkgConfig(n=n, t=t, f=0, group=group), seed=seed)
    elapsed = time.perf_counter() - t0
    assert result.succeeded
    return {"n": n, "t": t, "seconds": round(elapsed, 3)}, result


def measure_batched_verification(
    group, n: int, t: int, rounds: int = 5, seed: int = 15
) -> dict:
    """Batched Fig. 1 point verification (the post-E14 fast path)."""
    rng = random.Random(seed)
    poly = BivariatePolynomial.random_symmetric(t, group.q, rng, secret=7)
    matrix = FeldmanCommitment.commit(poly, group).matrix
    me = 1
    items = [(m, poly.evaluate(m, me)) for m in range(1, n + 1)]
    t0 = time.perf_counter()
    for _ in range(rounds):
        commitment = FeldmanCommitment(matrix, group)  # cold caches
        good, bad = commitment.batch_verify_points(me, items, rng=rng)
        assert len(good) == n and not bad
    per_point = (time.perf_counter() - t0) / (rounds * n)
    return {
        "n": n,
        "t": t,
        "points_per_s": round(1 / per_point, 1),
        "point_ms": round(per_point * 1e3, 3),
    }


def measure_signing(group, key, nonce, rounds: int = 5, seed: int = 16) -> dict:
    """Threshold-Schnorr: partial generation + batched combine."""
    rng = random.Random(seed)
    message = b"bench-e15"
    t = key.nodes[1].config.t
    indices = sorted(key.nodes)[: 2 * t + 1]
    partial_s = _time(
        lambda: threshold_schnorr.partial_sign(
            group,
            message,
            key.nodes[indices[0]].completed.share,
            nonce.nodes[indices[0]].completed.share,
            key.public_key,
            nonce.public_key,
        ),
        rounds * 5,
    )
    partials = [
        threshold_schnorr.PartialSignature(
            i,
            threshold_schnorr.partial_sign(
                group,
                message,
                key.nodes[i].completed.share,
                nonce.nodes[i].completed.share,
                key.public_key,
                nonce.public_key,
            ),
        )
        for i in indices
    ]
    key_c = key.nodes[indices[0]].completed.commitment
    nonce_c = nonce.nodes[indices[0]].completed.commitment

    def combine() -> None:
        sig = threshold_schnorr.combine(
            group, message, partials, key_c, nonce_c, t, rng=rng
        )
        assert schnorr.verify(group, key.public_key, message, sig)

    combine_s = _time(combine, rounds)
    return {
        "partials": len(partials),
        "partial_sign_ms": round(partial_s * 1e3, 3),
        "combine_verified_ms": round(combine_s * 1e3, 3),
    }


def measure_wire(group, t: int = 4, seed: int = 15) -> dict:
    rng = random.Random(seed)
    poly = BivariatePolynomial.random_symmetric(t, group.q, rng, secret=7)
    commitment = FeldmanCommitment.commit(poly, group)
    send = SendMsg(SessionId(1, 0), commitment, poly.row_polynomial(1))
    return {
        "element_bytes": group.element_bytes,
        "send_frame_bytes": len(wire.encode(send, group=group)),
    }


def run_bench(smoke: bool = False) -> dict:
    print("generating/fetching groups ...")
    backends = {
        # RFC 5114 §2.3 constants (no parameter generation needed).
        "modp-2048-256": group_by_name("rfc5114-2048-256"),
        "secp256k1": group_by_name("secp256k1"),
    }
    dkg_shapes = [(7, 2)] if smoke else [(7, 2), (13, 4)]
    verify_shapes = [(7, 2)] if smoke else [(13, 4), (25, 8)]
    report: dict = {
        "bench": "e15_backends",
        "mode": "smoke" if smoke else "full",
        "security_bits": {
            name: group.security_bits for name, group in backends.items()
        },
        "backends": {},
    }
    for name, group in backends.items():
        print(f"-- {name}")
        row: dict = {"group_name": group.name}
        row["primitives"] = measure_primitives(
            group, rounds=20 if smoke else 50
        )
        print(f"   primitives: {row['primitives']}")
        row["dkg_e2e"] = []
        results = {}
        for n, t in dkg_shapes:
            dkg_row, result = measure_dkg(group, n, t)
            results[n] = result
            row["dkg_e2e"].append(dkg_row)
            print(f"   dkg e2e n={n}: {dkg_row['seconds']} s")
        row["verification"] = [
            measure_batched_verification(group, n, t, rounds=2 if smoke else 5)
            for n, t in verify_shapes
        ]
        print(f"   verification: {row['verification']}")
        key_n = dkg_shapes[0][0]
        _, nonce = measure_dkg(group, key_n, dkg_shapes[0][1], seed=17)
        row["signing"] = measure_signing(group, results[key_n], nonce)
        print(f"   signing: {row['signing']}")
        row["wire"] = measure_wire(group)
        print(f"   wire: {row['wire']}")
        report["backends"][name] = row
    modp = report["backends"]["modp-2048-256"]
    ec = report["backends"]["secp256k1"]
    report["headline"] = {
        "dkg_speedup": round(
            modp["dkg_e2e"][0]["seconds"] / ec["dkg_e2e"][0]["seconds"], 2
        ),
        "verify_speedup": round(
            ec["verification"][0]["points_per_s"]
            / modp["verification"][0]["points_per_s"],
            2,
        ),
        "sign_combine_speedup": round(
            modp["signing"]["combine_verified_ms"]
            / ec["signing"]["combine_verified_ms"],
            2,
        ),
        "element_size_ratio": round(
            modp["wire"]["element_bytes"] / ec["wire"]["element_bytes"], 2
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single reduced shape; fail if the curve loses its 3x edge",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e15.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    headline = report["headline"]
    print(f"headline: {headline}")
    # Full runs enforce the 3x acceptance bar; the CI smoke uses a 2x
    # regression gate so shared-runner noise cannot flake the lane.
    target = 2.0 if args.smoke else 3.0
    if headline["dkg_speedup"] < target:
        print(
            "ACCEPTANCE MISS: secp256k1 DKG e2e only "
            f"{headline['dkg_speedup']}x modp-2048-256 (target {target}x)",
            file=sys.stderr,
        )
        return 1
    print(f"acceptance ok: secp256k1 {headline['dkg_speedup']}x on DKG e2e")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
