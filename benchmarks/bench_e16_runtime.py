"""E16 — session-multiplexed runtime vs. one-host-per-protocol.

Serving workloads need many concurrent DKGs (one per pooled
presignature nonce).  Before the sans-I/O runtime each got its own
protocol world: its own simulated event queue, or — on the real
network — its own set of n server sockets and n² connections.  The
:class:`~repro.runtime.runtime.ProtocolRuntime` multiplexes any number
of sessions over one endpoint per node instead.  This bench measures
both layouts in both execution backends:

* **sim** — K nonce-style DKGs (n=5, t=1): K independent
  ``run_dkg`` worlds (sequential, the old service forge path) vs. one
  ``run_dkg_sessions`` world with K multiplexed sessions (the new
  batch-refill path).  Virtual time makes both CPU-bound, so this row
  is an *overhead parity check*: the envelope and session routing must
  not cost measurable wall time;
* **tcp** — K DKGs over real asyncio sockets under injected link
  latency (the paper's over-the-Internet setting, where protocol
  rounds wait on the network): K separate ``LocalCluster``
  deployments run back to back (K·n server sockets, latency paid K
  times over) vs. one ``SessionCluster`` carrying K concurrent
  sessions (n sockets, rounds of different sessions overlapping in
  the latency gaps), wall-clock timed end to end.

Run::

    PYTHONPATH=src python benchmarks/bench_e16_runtime.py [--smoke]

Acceptance: the multiplexed TCP layout completes all K DKGs faster
than K sequential single-protocol clusters, every session agrees, and
the sim overhead check stays within noise of 1x.  ``--smoke`` runs a
reduced K as a CI regression guard.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from pathlib import Path

from repro.crypto.groups import toy_group
from repro.net.cluster import COMPLETED_KIND, SessionCluster, run_local_cluster
from repro.runtime.sessions import DkgSessionSpec, run_dkg_sessions
from repro.sim.network import ConstantDelay, UniformDelay
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.dkg import DkgConfig, run_dkg
from repro.dkg.messages import DkgStartInput
from repro.dkg.node import DkgNode

TIME_SCALE = 0.005
# 5–15 ms per hop at TIME_SCALE: a LAN-to-metro link, enough that
# protocol rounds are latency-bound (the regime the runtime targets).
TCP_DELAY = (1.0, 3.0)


def bench_sim(config: DkgConfig, k: int, seed: int = 1) -> dict:
    t0 = time.perf_counter()
    for tau in range(k):
        result = run_dkg(
            config, seed=seed, tau=tau, delay_model=ConstantDelay(0.0)
        )
        assert result.succeeded
    separate_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    results = run_dkg_sessions(
        [DkgSessionSpec(f"dkg-{tau}", config, tau=tau) for tau in range(k)],
        seed=seed,
        delay_model=ConstantDelay(0.0),
    )
    multiplexed_s = time.perf_counter() - t0
    assert all(r.succeeded for r in results.values())
    assert len({r.public_key for r in results.values()}) == k
    return {
        "k": k,
        "separate_worlds_s": round(separate_s, 4),
        "multiplexed_s": round(multiplexed_s, 4),
        "speedup": round(separate_s / multiplexed_s, 2),
    }


def bench_tcp(config: DkgConfig, k: int, seed: int = 1) -> dict:
    members = config.vss().indices
    delay = UniformDelay(*TCP_DELAY)

    # Old layout: one cluster (n sockets, n² links) per DKG, run after
    # run — the one-host-per-protocol arrangement the service had.
    t0 = time.perf_counter()
    for tau in range(k):
        result = run_local_cluster(
            config, seed=seed, tau=tau, delay_model=delay,
            time_scale=TIME_SCALE, timeout=120.0,
        )
        assert result.succeeded, result.errors
    separate_s = time.perf_counter() - t0

    # New layout: ONE cluster, K concurrent sessions over n endpoints.
    async def multiplexed() -> dict:
        ca = CertificateAuthority(config.group)
        rng = random.Random(seed)
        keystores = {i: KeyStore.enroll(i, ca, rng) for i in members}
        async with SessionCluster(
            list(members), seed=seed, group=config.group,
            codec=config.codec, delay_model=delay, time_scale=TIME_SCALE,
        ) as cluster:
            for tau in range(k):
                cluster.open_session(
                    f"dkg-{tau}",
                    {
                        i: DkgNode(i, config, keystores[i], ca, tau=tau)
                        for i in members
                    },
                )
            for tau in range(k):
                cluster.inject_all(f"dkg-{tau}", DkgStartInput(tau))
            keys = set()
            for tau in range(k):
                outs = await cluster.wait_session_outputs(
                    f"dkg-{tau}", COMPLETED_KIND, set(members), timeout=120.0
                )
                assert sorted(outs) == list(members), f"session {tau}"
                keys |= {o.public_key for o in outs.values()}
            assert cluster.collect_errors() == []
            assert len(keys) == k
            return {"endpoints": len(cluster.hosts)}

    t0 = time.perf_counter()
    info = asyncio.run(multiplexed())
    multiplexed_s = time.perf_counter() - t0
    return {
        "k": k,
        "separate_clusters_s": round(separate_s, 4),
        "separate_server_sockets": k * len(members),
        "multiplexed_s": round(multiplexed_s, 4),
        "multiplexed_server_sockets": info["endpoints"],
        "speedup": round(separate_s / multiplexed_s, 2),
    }


def run_bench(smoke: bool = False) -> dict:
    group = toy_group()
    config = DkgConfig(n=5, t=1, group=group) if not smoke else DkgConfig(
        n=4, t=1, group=group
    )
    sim_ks = [4] if smoke else [2, 4, 8, 16]
    tcp_ks = [4] if smoke else [4, 8]
    report: dict = {
        "bench": "e16_runtime",
        "mode": "smoke" if smoke else "full",
        "config": {"n": config.n, "t": config.t, "group": group.name},
        "sim": [],
        "tcp": [],
    }
    for k in sim_ks:
        row = bench_sim(config, k)
        print(f"sim  k={k}: separate {row['separate_worlds_s']}s, "
              f"multiplexed {row['multiplexed_s']}s ({row['speedup']}x)")
        report["sim"].append(row)
    for k in tcp_ks:
        row = bench_tcp(config, k)
        print(f"tcp  k={k}: {row['separate_server_sockets']} sockets / "
              f"{row['separate_clusters_s']}s separate vs "
              f"{row['multiplexed_server_sockets']} sockets / "
              f"{row['multiplexed_s']}s multiplexed ({row['speedup']}x)")
        report["tcp"].append(row)
    report["headline"] = {
        "tcp_speedup": report["tcp"][0]["speedup"],
        "socket_reduction": round(
            report["tcp"][0]["separate_server_sockets"]
            / report["tcp"][0]["multiplexed_server_sockets"],
            2,
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced shapes; fail if multiplexing loses to separate clusters",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e16.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"headline: {report['headline']}")
    # Full runs must beat the separate-cluster layout outright; the CI
    # smoke uses a relaxed gate so shared-runner noise cannot flake it.
    target = 0.8 if args.smoke else 1.0
    if report["headline"]["tcp_speedup"] < target:
        print(
            "ACCEPTANCE MISS: multiplexed sessions slower than separate "
            f"clusters ({report['headline']['tcp_speedup']}x < {target}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
