"""E17 — the cost of always-on observability.

The :mod:`repro.obs` layer instruments every tier of the stack — group
exponentiations, driver transitions, wire frames, service requests —
and its contract is that the instrumentation is cheap enough to leave
on in production.  This bench measures that contract directly: the
same end-to-end DKG run with the metrics registry **enabled** (a fresh
:class:`~repro.obs.metrics.MetricsRegistry` collecting everything)
versus **disabled** (``set_registry(None)``, every hot-path helper a
no-op), on both group backends.

The DKG uses a realistic modp group and the secp256k1 curve, so the
run is dominated by real group arithmetic — exactly the regime a
deployment is in, and the fairest denominator for relative overhead.

A third arm measures the **flight recorder**: the same run with a
payload-mode :class:`~repro.obs.trace.JsonlTraceSink` capturing every
event's wire encoding to disk (the ``--trace-out`` path).  Capture
does real per-event serialization, so its gate is wider than the
metrics gate — but it must stay cheap enough to flip on for any
suspect run.

Run::

    PYTHONPATH=src python benchmarks/bench_e17_observability.py [--smoke]

Acceptance: metrics-enabled overhead stays within 3% and payload
capture within 10% on both backends, measured as the median of
per-repeat paired ratios — each repeat runs all arms on the same seed
back to back, so machine noise cancels pairwise (smoke gates are
relaxed further for shared-runner noise).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.crypto.groups import group_by_name
from repro.dkg import DkgConfig, run_dkg
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.replay import capture_meta
from repro.obs.trace import JsonlTraceSink, set_trace_sink
from repro.sim.network import ConstantDelay

OVERHEAD_GATE = 0.03  # full runs: <= 3% median metrics overhead
SMOKE_GATE = 0.15  # smoke: one repeat on shared runners, noise dominates
CAPTURE_GATE = 0.10  # full runs: <= 10% median payload-capture overhead
SMOKE_CAPTURE_GATE = 0.35

BACKENDS = ("rfc5114-1024-160", "secp256k1")


def _one_dkg(config: DkgConfig, seed: int) -> None:
    result = run_dkg(config, seed=seed, delay_model=ConstantDelay(0.0))
    assert result.succeeded


def _time_run(config: DkgConfig, seed: int, mode: str) -> float:
    """One timed DKG in one arm: "disabled", "metrics" or "capture"."""
    previous = set_registry(None if mode == "disabled" else MetricsRegistry())
    try:
        if mode != "capture":
            t0 = time.perf_counter()
            _one_dkg(config, seed)
            return time.perf_counter() - t0
        # Capture arm: payload-mode recorder to a real file, end record
        # (transcript hash) included in the timed region — the full
        # cost a --trace-out user pays.
        handle, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(handle)
        try:
            t0 = time.perf_counter()
            sink = JsonlTraceSink(
                path,
                payloads=True,
                group=config.group,
                meta=capture_meta("dkg", config, seed, "sim", tau=0),
                mode="w",
            )
            previous_sink = set_trace_sink(sink)
            try:
                _one_dkg(config, seed)
            finally:
                set_trace_sink(previous_sink)
                sink.close()
            elapsed = time.perf_counter() - t0
            assert sink.recorded > 0 and sink.transcript is not None
            return elapsed
        finally:
            os.unlink(path)
    finally:
        set_registry(previous)


def bench_backend(group_name: str, repeats: int, seed: int = 1) -> dict:
    config = DkgConfig(n=4, t=1, group=group_by_name(group_name))
    _one_dkg(config, seed)  # warm-up: caches, lazy imports, JIT-ish paths
    arms: dict[str, list[float]] = {"disabled": [], "metrics": [], "capture": []}
    # Interleave so clock drift and thermal state hit all arms equally.
    for repeat in range(repeats):
        for mode in arms:
            arms[mode].append(_time_run(config, seed + repeat, mode))
    # Within a repeat the three arms run the same seed back to back, so
    # per-repeat paired ratios cancel machine noise (CPU contention,
    # thermal drift) that a ratio of global medians would absorb.
    def overhead(mode: str) -> float:
        ratios = [
            (arm - base) / base
            for arm, base in zip(arms[mode], arms["disabled"])
            if base > 0
        ]
        return statistics.median(ratios) if ratios else 0.0

    return {
        "group": group_name,
        "repeats": repeats,
        "disabled_median_s": round(statistics.median(arms["disabled"]), 4),
        "enabled_median_s": round(statistics.median(arms["metrics"]), 4),
        "capture_median_s": round(statistics.median(arms["capture"]), 4),
        "overhead": round(overhead("metrics"), 4),
        "capture_overhead": round(overhead("capture"), 4),
    }


def _snapshot_coverage(seed: int = 1) -> dict:
    """One instrumented run's snapshot: proof the families populate."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        _one_dkg(DkgConfig(n=4, t=1, group=group_by_name(BACKENDS[0])), seed)
        snapshot = registry.snapshot()
    finally:
        set_registry(previous)
    events = sum(
        s["value"]
        for s in snapshot.get("repro_runtime_events_total", {}).get("samples", [])
    )
    group_ops = sum(
        s["value"]
        for s in snapshot.get("repro_crypto_group_ops_total", {}).get("samples", [])
    )
    return {
        "families": sorted(snapshot),
        "runtime_events": int(events),
        "crypto_group_ops": int(group_ops),
    }


def run_bench(smoke: bool = False) -> dict:
    repeats = 1 if smoke else 9
    report: dict = {
        "bench": "e17_observability",
        "mode": "smoke" if smoke else "full",
        "gate": SMOKE_GATE if smoke else OVERHEAD_GATE,
        "capture_gate": SMOKE_CAPTURE_GATE if smoke else CAPTURE_GATE,
        "backends": [],
    }
    for group_name in BACKENDS:
        row = bench_backend(group_name, repeats)
        print(
            f"{group_name}: disabled {row['disabled_median_s']}s, "
            f"metrics {row['enabled_median_s']}s "
            f"({row['overhead'] * 100:+.2f}%), "
            f"capture {row['capture_median_s']}s "
            f"({row['capture_overhead'] * 100:+.2f}%)"
        )
        report["backends"].append(row)
    coverage = _snapshot_coverage()
    report["coverage"] = coverage
    print(
        f"coverage: {len(coverage['families'])} metric families, "
        f"{coverage['runtime_events']} runtime events, "
        f"{coverage['crypto_group_ops']} group ops"
    )
    report["headline"] = {
        "max_overhead": max(row["overhead"] for row in report["backends"]),
        "max_capture_overhead": max(
            row["capture_overhead"] for row in report["backends"]
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="one repeat per backend with a relaxed overhead gate (CI)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e17.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"headline: {report['headline']}")
    gate = report["gate"]
    if report["headline"]["max_overhead"] > gate:
        print(
            "ACCEPTANCE MISS: observability overhead "
            f"{report['headline']['max_overhead'] * 100:.2f}% > {gate * 100:.0f}%"
        )
        return 1
    capture_gate = report["capture_gate"]
    if report["headline"]["max_capture_overhead"] > capture_gate:
        print(
            "ACCEPTANCE MISS: payload-capture overhead "
            f"{report['headline']['max_capture_overhead'] * 100:.2f}% "
            f"> {capture_gate * 100:.0f}%"
        )
        return 1
    # Sanity: an instrumented run must actually populate the registry.
    if report["coverage"]["crypto_group_ops"] <= 0:
        print("ACCEPTANCE MISS: crypto collector recorded no group operations")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
