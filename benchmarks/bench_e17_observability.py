"""E17 — the cost of always-on observability.

The :mod:`repro.obs` layer instruments every tier of the stack — group
exponentiations, driver transitions, wire frames, service requests —
and its contract is that the instrumentation is cheap enough to leave
on in production.  This bench measures that contract directly: the
same end-to-end DKG run with the metrics registry **enabled** (a fresh
:class:`~repro.obs.metrics.MetricsRegistry` collecting everything)
versus **disabled** (``set_registry(None)``, every hot-path helper a
no-op), on both group backends.

The DKG uses a realistic modp group and the secp256k1 curve, so the
run is dominated by real group arithmetic — exactly the regime a
deployment is in, and the fairest denominator for relative overhead.

Run::

    PYTHONPATH=src python benchmarks/bench_e17_observability.py [--smoke]

Acceptance: enabled/disabled median overhead stays within 3% on both
backends (the smoke gate is relaxed for shared-runner noise).
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.crypto.groups import group_by_name
from repro.dkg import DkgConfig, run_dkg
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.sim.network import ConstantDelay

OVERHEAD_GATE = 0.03  # full runs: <= 3% median overhead
SMOKE_GATE = 0.15  # smoke: one repeat on shared runners, noise dominates

BACKENDS = ("rfc5114-1024-160", "secp256k1")


def _one_dkg(config: DkgConfig, seed: int) -> None:
    result = run_dkg(config, seed=seed, delay_model=ConstantDelay(0.0))
    assert result.succeeded


def _time_run(config: DkgConfig, seed: int, enabled: bool) -> float:
    previous = set_registry(MetricsRegistry() if enabled else None)
    try:
        t0 = time.perf_counter()
        _one_dkg(config, seed)
        return time.perf_counter() - t0
    finally:
        set_registry(previous)


def bench_backend(group_name: str, repeats: int, seed: int = 1) -> dict:
    config = DkgConfig(n=4, t=1, group=group_by_name(group_name))
    _one_dkg(config, seed)  # warm-up: caches, lazy imports, JIT-ish paths
    enabled, disabled = [], []
    # Interleave so clock drift and thermal state hit both arms equally.
    for repeat in range(repeats):
        disabled.append(_time_run(config, seed + repeat, enabled=False))
        enabled.append(_time_run(config, seed + repeat, enabled=True))
    base = statistics.median(disabled)
    instrumented = statistics.median(enabled)
    overhead = (instrumented - base) / base if base > 0 else 0.0
    return {
        "group": group_name,
        "repeats": repeats,
        "disabled_median_s": round(base, 4),
        "enabled_median_s": round(instrumented, 4),
        "overhead": round(overhead, 4),
    }


def _snapshot_coverage(seed: int = 1) -> dict:
    """One instrumented run's snapshot: proof the families populate."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        _one_dkg(DkgConfig(n=4, t=1, group=group_by_name(BACKENDS[0])), seed)
        snapshot = registry.snapshot()
    finally:
        set_registry(previous)
    events = sum(
        s["value"]
        for s in snapshot.get("repro_runtime_events_total", {}).get("samples", [])
    )
    group_ops = sum(
        s["value"]
        for s in snapshot.get("repro_crypto_group_ops_total", {}).get("samples", [])
    )
    return {
        "families": sorted(snapshot),
        "runtime_events": int(events),
        "crypto_group_ops": int(group_ops),
    }


def run_bench(smoke: bool = False) -> dict:
    repeats = 1 if smoke else 5
    report: dict = {
        "bench": "e17_observability",
        "mode": "smoke" if smoke else "full",
        "gate": SMOKE_GATE if smoke else OVERHEAD_GATE,
        "backends": [],
    }
    for group_name in BACKENDS:
        row = bench_backend(group_name, repeats)
        print(
            f"{group_name}: disabled {row['disabled_median_s']}s, "
            f"enabled {row['enabled_median_s']}s "
            f"({row['overhead'] * 100:+.2f}%)"
        )
        report["backends"].append(row)
    coverage = _snapshot_coverage()
    report["coverage"] = coverage
    print(
        f"coverage: {len(coverage['families'])} metric families, "
        f"{coverage['runtime_events']} runtime events, "
        f"{coverage['crypto_group_ops']} group ops"
    )
    report["headline"] = {
        "max_overhead": max(row["overhead"] for row in report["backends"]),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="one repeat per backend with a relaxed overhead gate (CI)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e17.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"headline: {report['headline']}")
    gate = report["gate"]
    if report["headline"]["max_overhead"] > gate:
        print(
            "ACCEPTANCE MISS: observability overhead "
            f"{report['headline']['max_overhead'] * 100:.2f}% > {gate * 100:.0f}%"
        )
        return 1
    # Sanity: an instrumented run must actually populate the registry.
    if report["coverage"]["crypto_group_ops"] <= 0:
        print("ACCEPTANCE MISS: crypto collector recorded no group operations")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
