"""E4 — DKG pessimistic phase / leader changes (§4 Efficiency).

Paper claims: each leader change costs O(t d n^2) messages and
O(kappa t d n^3) bits; k faulty leaders in a row cost k such rounds,
against the worst case O(t d n^2 (n + d)).  The bench forces 1..3
silent Byzantine leaders and measures the per-change increment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from conftest import once

from repro.analysis import Table
from repro.crypto.groups import toy_group
from repro.sim.adversary import Adversary
from repro.sim.clock import TimeoutPolicy
from repro.sim.node import Context, ProtocolNode
from repro.dkg import DkgConfig, run_dkg

G = toy_group()


@dataclass
class SilentNode(ProtocolNode):
    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        pass

    def on_operator(self, payload: Any, ctx: Context) -> None:
        pass


def _run_with_k_bad_leaders(n: int, t: int, k: int, seed: int = 7):
    silent = set(range(1, k + 1))  # leaders for views 0..k-1
    cfg = DkgConfig(
        n=n, t=t, group=G,
        timeout=TimeoutPolicy(initial=25.0, multiplier=2.0),
    )
    adv = Adversary.corrupting(t=t, f=0, byzantine=silent)

    def factory(i, config, keystore, ca):
        return SilentNode(i) if i in silent else None

    return run_dkg(cfg, seed=seed, adversary=adv, node_factory=factory)


def test_e4_per_leader_change_cost(benchmark, save_table) -> None:
    def sweep():
        n, t = 10, 2
        rows = []
        for k in (0, 1, 2):
            if k == 0:
                res = run_dkg(DkgConfig(n=n, t=t, group=G), seed=7)
            else:
                res = _run_with_k_bad_leaders(n, t, k)
            assert res.succeeded
            views = {o.view for o in res.completions.values()}
            assert views == {k}
            lead_ch = res.metrics.messages_by_kind.get("dkg.lead-ch", 0)
            agreement = sum(
                v for key, v in res.metrics.messages_by_kind.items()
                if key.startswith("dkg.")
            )
            rows.append((k, lead_ch, agreement, res.last_completion_time))
        return n, rows

    n, rows = once(benchmark, sweep)
    table = Table(
        "E4a: pessimistic-phase traffic, n=10 (paper: O(t d n^2) per change)",
        ["bad leaders", "lead-ch msgs", "agreement msgs", "completion time"],
    )
    for k, lead_ch, agreement, when in rows:
        table.add(k, lead_ch, agreement, when)
    save_table(table, "E4")
    # No lead-ch traffic on the optimistic path; each leader change adds
    # at most one all-to-all round of lead-ch messages.
    assert rows[0][1] == 0
    for k, lead_ch, _, _ in rows[1:]:
        assert 0 < lead_ch <= k * n * n
    # Traffic grows with the number of changes.
    assert rows[1][1] < rows[2][1]


def test_e4_leader_change_latency_grows_with_timeouts(
    benchmark, save_table
) -> None:
    def sweep():
        rows = []
        for k in (0, 1, 2):
            if k == 0:
                res = run_dkg(DkgConfig(n=10, t=2, group=G), seed=8)
            else:
                res = _run_with_k_bad_leaders(10, 2, k, seed=8)
            rows.append((k, res.metrics.leader_changes and max(
                o.view for o in res.completions.values()
            ) or 0, res.last_completion_time))
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E4b: completion time vs bad leaders (timeouts dominate latency)",
        ["bad leaders", "final view", "completion time"],
    )
    times = []
    for k, view, when in rows:
        table.add(k, view, when)
        times.append(when)
    save_table(table, "E4")
    # Latency is monotone in the number of leader changes, and each
    # change adds at least one timeout period (25.0 at view 0).
    assert times[0] < times[1] < times[2]
    assert times[1] - times[0] >= 20.0


def test_e4_lead_ch_traffic_quadratic(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for n in (7, 10, 13):
            t = (n - 1) // 3
            res = _run_with_k_bad_leaders(n, t, 1, seed=9)
            rows.append(
                (n, res.metrics.messages_by_kind["dkg.lead-ch"],
                 res.metrics.bytes_by_kind["dkg.lead-ch"])
            )
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E4c: lead-ch traffic for one change (paper: O(n^2) messages)",
        ["n", "lead-ch msgs", "lead-ch bytes", "msgs / n^2"],
    )
    for n, msgs, total_bytes in rows:
        table.add(n, msgs, total_bytes, msgs / (n * n))
        # each honest node broadcasts one lead-ch: <= n^2 messages
        assert msgs <= n * n
    save_table(table, "E4")
