"""E20 — the schedule fuzzer: adversarial interleavings/second, with
the detection pipeline gated on every run.

PR 10 added ``repro.fuzz``: seeded mutation of flight-recorder
captures, re-executed through the replay world and checked against the
paper's invariants (agreement, share-consistency, quorum certificates,
liveness-under-budget).  This experiment measures what that costs —
how many adversarial interleavings per second the fuzzer explores on
each crypto backend — and proves, every run, that the pipeline still
*detects*: a planted share corruption must be caught, shrunk to the
single faulty op, and reproduced from its emitted capture.

Correctness gates (unconditional, both modes):

* honest campaigns report **zero** violations on every backend;
* the planted-bug self-check passes end to end (detect -> shrink to
  exactly one op -> reproducer replays to the same verdict);
* per-seed plans are deterministic: re-running a campaign yields the
  same mutation count.

Throughput is reported, not gated — on the 1-CPU reference box the
modp backend explores tens of interleavings per second while
secp256k1 pays real curve arithmetic per replayed frame; both numbers
are the experiment's result, neither is a pass/fail axis.

Run::

    PYTHONPATH=src python benchmarks/bench_e20_fuzz.py [--smoke] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.crypto.groups import group_by_name, toy_group
from repro.fuzz import FuzzRunner, Schedule, generate_capture

# (backend, seeds) per mode: secp256k1 replays cost real curve ops, so
# its campaign is shorter for comparable wall time.
_FULL_CAMPAIGNS = {"modp": 200, "secp256k1": 40}
_SMOKE_CAMPAIGNS = {"modp": 20, "secp256k1": 5}


def _group(backend: str):
    return toy_group() if backend == "modp" else group_by_name(backend)


def run_campaign(backend: str, seeds: int) -> dict:
    """One honest fuzz campaign + self-check on one backend."""
    base = Schedule.from_capture(
        generate_capture("dkg", n=4, t=1, f=0, seed=0, group=_group(backend))
    )
    runner = FuzzRunner(base, max_ops=6)
    started = time.monotonic()
    report = runner.run(seeds, self_check=False)
    campaign_wall = time.monotonic() - started

    # Determinism gate: the same (capture, seed) range must plan the
    # same mutations again.
    rerun = FuzzRunner(base.copy(), max_ops=6).run(seeds, self_check=False)

    # Detection gate: plant, detect, shrink, reproduce.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        check_runner = FuzzRunner(base.copy(), max_ops=6, reproducer_dir=tmp)
        started = time.monotonic()
        self_check = check_runner.run_self_check()
        self_check_wall = time.monotonic() - started
        shrink_executions = check_runner.executions

    return {
        "backend": backend,
        "seeds": seeds,
        "mutations": report.mutations,
        "executions": report.executions,
        "violations": sum(len(r.violations) for r in report.failures),
        "schedules_per_second": (
            round(report.executions / campaign_wall, 2)
            if campaign_wall > 0
            else None
        ),
        "mutations_per_second": (
            round(report.mutations / campaign_wall, 2)
            if campaign_wall > 0
            else None
        ),
        "campaign_wall_seconds": round(campaign_wall, 3),
        "deterministic": rerun.mutations == report.mutations,
        "self_check": {
            "ok": bool(self_check.get("ok")),
            "shrunk_ops": self_check.get("shrunk_ops"),
            "reproduced": bool(self_check.get("reproduced")),
            "executions": shrink_executions,
            "wall_seconds": round(self_check_wall, 3),
        },
    }


def run_bench(smoke: bool) -> dict:
    campaigns = _SMOKE_CAMPAIGNS if smoke else _FULL_CAMPAIGNS
    results = [
        run_campaign(backend, seeds) for backend, seeds in campaigns.items()
    ]
    headline = {
        r["backend"]: r["schedules_per_second"] for r in results
    }
    return {
        "bench": "e20_fuzz",
        "mode": "smoke" if smoke else "full",
        "available_cpus": os.cpu_count(),
        "protocol": "dkg",
        "committee": {"n": 4, "t": 1, "f": 0},
        "workload": (
            "seeded mutation campaigns over a sim DKG capture, replayed "
            "and invariant-checked per seed; planted-fault self-check gated"
        ),
        "campaigns": results,
        "headline": {"schedules_per_second": headline},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short campaigns for CI; same unconditional gates",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e20.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"headline: {report['headline']}")
    for campaign in report["campaigns"]:
        backend = campaign["backend"]
        if campaign["violations"]:
            print(
                f"ACCEPTANCE MISS: {campaign['violations']} violations on an "
                f"honest {backend} campaign"
            )
            return 1
        if not campaign["deterministic"]:
            print(f"ACCEPTANCE MISS: {backend} campaign is nondeterministic")
            return 1
        check = campaign["self_check"]
        if not check["ok"] or not check["reproduced"]:
            print(f"ACCEPTANCE MISS: planted-bug self-check failed on {backend}")
            return 1
        if check["shrunk_ops"] != 1:
            print(
                f"ACCEPTANCE MISS: shrink left {check['shrunk_ops']} ops on "
                f"{backend} (want the 1 planted op)"
            )
            return 1
    print("acceptance ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
