"""E19 — the sharded serving layer: signed-ops/s vs committee count.

E13 measured one committee behind one frontend; E18 bought parallelism
*inside* a process.  This experiment measures the axis the shard router
(PR 9, ``repro.service.shard``) adds: **M independent committees in M
separate processes** behind one consistent-hash router.  Each shard is
a real ``repro serve`` subprocess (secp256k1, n=4, t=1) bootstrapping
its own DKG and holding its own key; the parent process runs a
:class:`~repro.service.shard.router.ShardRouter` over remote shards and
drives concurrent keyed SIGN traffic spread over many key ids.

The workload is deliberately **forge-bound** (``--pool 0``: every sign
runs its nonce DKG on demand).  That puts the per-request cost on the
shard's CPU, where the scaling claim lives — a pooled workload measures
the router's dispatch loop instead, which is not the axis under test.

Honest-accounting notes, in the E18 tradition:

* ``available_cpus`` is recorded.  M processes cannot beat one process
  on a single-core box, so the throughput gate (M=4 >= 3x M=1) is
  enforced only when ``available_cpus >= 4``.  Correctness gates —
  every request answered with a verifying signature under its *own*
  committee's key, distinct keys across committees, a clean fleet
  snapshot — are enforced everywhere, every run.
* Signatures are verified *outside* the timed window, so the parent's
  verification cost never flatters or taxes a configuration.

Run::

    PYTHONPATH=src python benchmarks/bench_e19_shards.py [--smoke]

Acceptance (multi-core hardware): signed-ops/s at M=4 >= 3x M=1.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.crypto import schnorr
from repro.crypto.groups import group_by_name
from repro.service import protocol
from repro.service.shard import api
from repro.service.shard.router import ShardRouter
from repro.service.workers import ServiceConfig

_SERVE_BANNER = "serving "
_SEED_BASE = 1900


class ShardProcess:
    """One ``repro serve`` subprocess: spawn, wait for the banner,
    expose the bound port, terminate."""

    def __init__(self, index: int, *, pool: int):
        self.index = index
        self.seed = _SEED_BASE + 7919 * index
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--backend",
                "secp256k1",
                "--n",
                "4",
                "--t",
                "1",
                "--seed",
                str(self.seed),
                "--pool",
                str(pool),
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        self.port = self._await_banner()

    def _await_banner(self, timeout: float = 120.0) -> int:
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"shard process {self.index} exited before serving "
                    f"(rc={self.proc.poll()})"
                )
            if line.startswith(_SERVE_BANNER) and " on " in line:
                return int(line.rsplit(":", 1)[1])
        raise RuntimeError(f"shard process {self.index}: no banner")

    def stop(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


async def _drive(
    router: ShardRouter,
    *,
    requests: int,
    concurrency: int,
    keys: int,
) -> tuple[float, list[tuple[bytes, bytes, object]]]:
    """Issue ``requests`` keyed signs through the router from
    ``concurrency`` closed-loop workers; return (wall, transcript)."""
    sequence = iter(range(requests))
    transcript: list[tuple[bytes, bytes, object]] = []

    async def worker() -> None:
        for i in sequence:
            key_id = f"bench-key-{i % keys}".encode()
            message = f"e19 op {i}".encode()
            response = await router.handle(
                api.ShardSignRequest(i, key_id, message)
            )
            transcript.append((key_id, message, response))

    t0 = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return time.perf_counter() - t0, transcript


async def _measure(
    shards: list[ShardProcess],
    *,
    requests: int,
    concurrency: int,
    keys: int,
) -> dict:
    group = group_by_name("secp256k1")
    template = ServiceConfig(n=4, t=1, group=group, seed=0, pool_target=0)
    router = ShardRouter(template)
    for shard in shards:
        await router.add_remote_shard(
            f"shard-{shard.index}", "127.0.0.1", shard.port
        )
    try:
        wall, transcript = await _drive(
            router, requests=requests, concurrency=concurrency, keys=keys
        )

        # Post-hoc verification, off the clock: each signature must
        # verify under the public key of the committee that owns its
        # key id *now* — routing is stable, so that is the signer.
        pubkeys: dict[bytes, int] = {}
        failures = 0
        for key_id, message, response in transcript:
            if not isinstance(response, protocol.SignResponse):
                failures += 1
                continue
            if key_id not in pubkeys:
                status = await router.handle(
                    api.ShardStatusRequest(0, key_id)
                )
                assert isinstance(status, protocol.StatusResponse), status
                pubkeys[key_id] = status.public_key
            if not schnorr.verify(
                group,
                pubkeys[key_id],
                message,
                schnorr.Signature(response.challenge, response.response),
            ):
                failures += 1

        fleet = await router.fleet_document()
        distinct_keys = len(set(pubkeys.values()))
        # How many committees actually own the touched key ids — the
        # number of distinct group keys we should have seen.
        owning_shards = len({router.ring.route(k) for k in pubkeys})
        routed = {
            sid: handle.routed_total
            for sid, handle in sorted(router.handles.items())
        }
    finally:
        await router.stop()
    return {
        "shards": len(shards),
        "requests": requests,
        "concurrency": concurrency,
        "key_ids": keys,
        "wall_seconds": round(wall, 3),
        "signed_ops_per_s": round(len(transcript) / wall, 2),
        "failures": failures,
        "distinct_committee_keys": distinct_keys,
        "owning_shards": owning_shards,
        "fleet_down": fleet["fleet"]["down"],
        "routed_per_shard": routed,
    }


def measure_sweep(
    m: int, *, requests: int, concurrency: int, keys: int
) -> dict:
    shards = [ShardProcess(i, pool=0) for i in range(m)]
    try:
        return asyncio.run(
            _measure(
                shards,
                requests=requests,
                concurrency=concurrency,
                keys=keys,
            )
        )
    finally:
        for shard in shards:
            shard.stop()


def run_bench(smoke: bool = False) -> dict:
    m_axis = [1, 2] if smoke else [1, 2, 4]
    requests = 4 if smoke else 12
    concurrency = 4 if smoke else 8
    keys = 16
    cpus = os.cpu_count() or 1
    report: dict = {
        "bench": "e19_shards",
        "mode": "smoke" if smoke else "full",
        "available_cpus": cpus,
        "backend": "secp256k1",
        "committee": {"n": 4, "t": 1},
        "workload": "forge-bound (pool=0): every sign is an on-demand "
        "nonce DKG on the owning shard",
        "m_axis": m_axis,
        "sweep": {},
    }
    for m in m_axis:
        row = measure_sweep(
            m, requests=requests, concurrency=concurrency, keys=keys
        )
        report["sweep"][str(m)] = row
        print(
            f"-- M={m}: {row['signed_ops_per_s']} signed-ops/s "
            f"({row['failures']} failures, "
            f"{row['distinct_committee_keys']} committee keys)"
        )
    base = report["sweep"][str(m_axis[0])]["signed_ops_per_s"]
    top = report["sweep"][str(m_axis[-1])]["signed_ops_per_s"]
    report["headline"] = {
        "all_requests_verified": all(
            row["failures"] == 0 for row in report["sweep"].values()
        ),
        "committees_independent": all(
            row["distinct_committee_keys"] == row["owning_shards"]
            for row in report["sweep"].values()
        ),
        "fleet_clean": all(
            row["fleet_down"] == 0 for row in report["sweep"].values()
        ),
        f"speedup_m{m_axis[-1]}_vs_m1": round(top / base, 2),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="M in {1,2}, few requests; correctness gates only",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e19.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    if not args.smoke:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    headline = report["headline"]
    print(f"headline: {headline}")
    # Correctness gates: unconditional, every run, every M.
    if not headline["all_requests_verified"]:
        print(
            "ACCEPTANCE MISS: a request failed or a signature did not "
            "verify under its committee key",
            file=sys.stderr,
        )
        return 1
    if not headline["committees_independent"]:
        print(
            "ACCEPTANCE MISS: shard committees share a group key",
            file=sys.stderr,
        )
        return 1
    if not headline["fleet_clean"]:
        print("ACCEPTANCE MISS: fleet snapshot reported a shard down",
              file=sys.stderr)
        return 1
    # Throughput gate: only where the hardware can express it.
    cpus = report["available_cpus"]
    if not args.smoke and cpus >= 4:
        speedup = headline["speedup_m4_vs_m1"]
        if speedup < 3.0:
            print(
                f"ACCEPTANCE MISS: M=4 signed-ops/s only {speedup}x M=1 "
                f"(< 3x) on {cpus} cpus",
                file=sys.stderr,
            )
            return 1
    elif not args.smoke:
        print(
            f"note: {cpus} cpu(s) available — the M=4 >= 3x M=1 gate is "
            "waived, correctness gates enforced"
        )
    print("acceptance ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
