"""E8 — group modification protocols (§6).

Paper claims: modification agreement is one reliable broadcast per
proposal (O(n^2) messages); node addition costs one resharing round
plus t+1 subshare transfers, without touching existing shares; removal
and t/f changes happen at phase boundaries via the renewal machinery.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import Table
from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig
from repro.groupmod import GroupManager, ModProposal, run_node_addition

G = toy_group()


def test_e8_agreement_cost_per_proposal(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for n in (7, 10, 13):
            t = (n - 1) // 3
            gm = GroupManager(DkgConfig(n=n, t=t, group=G), seed=41)
            gm.bootstrap()
            report = gm.agree({1: ModProposal("add", n + 1)})
            rows.append((n, report.metrics.messages_total))
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E8a: modification agreement messages (paper: one reliable broadcast)",
        ["n", "msgs", "msgs / n^2"],
    )
    for n, msgs in rows:
        table.add(n, msgs, msgs / (n * n))
        # propose (n) + echo (n^2) + ready (n^2)
        assert msgs == n + 2 * n * n
    save_table(table, "E8")


def test_e8_node_addition_cost(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for n in (7, 10, 13):
            t = (n - 1) // 3
            gm = GroupManager(DkgConfig(n=n, t=t, group=G), seed=42)
            gm.bootstrap()
            result = run_node_addition(
                gm.config, gm.shares, gm.commitment, n + 1, seed=42
            )
            assert result.share is not None
            subshares = result.metrics.messages_by_kind["groupmod.subshare"]
            rows.append((n, t, result.metrics.messages_total, subshares))
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E8b: node addition traffic (paper: DKG-like resharing + subshares)",
        ["n", "t", "total msgs", "subshare msgs"],
    )
    for n, t, msgs, subshares in rows:
        table.add(n, t, msgs, subshares)
        # every existing node sends exactly one subshare to P_new
        assert subshares == n
    save_table(table, "E8")


def test_e8_full_lifecycle_secret_invariance(benchmark, save_table) -> None:
    def run():
        gm = GroupManager(DkgConfig(n=7, t=2, group=G), seed=43)
        gm.bootstrap()
        secret = gm.reconstruct()
        steps = []
        gm.add_node(8)
        steps.append(("add node 8 (mid-phase)", gm.reconstruct() == secret,
                      len(gm.members)))
        gm.agree({1: ModProposal("remove", 2), 3: ModProposal("add", 9)})
        gm.phase_change()
        steps.append(("remove 2 + add 9 (phase change)",
                      gm.reconstruct() == secret, len(gm.members)))
        gm.agree({1: ModProposal("add", 10, f_delta=1)})
        gm.phase_change()
        steps.append(("add 10 with f+1", gm.reconstruct() == secret,
                      len(gm.members)))
        return steps, gm.config.f

    steps, final_f = once(benchmark, run)
    table = Table(
        "E8c: lifecycle (bootstrap -> add -> remove+add -> f change)",
        ["step", "secret preserved", "members"],
    )
    for step, ok, members in steps:
        table.add(step, ok, members)
        assert ok
    save_table(table, "E8")
    assert final_f == 1
