"""E6 — the asynchrony argument of §2.1.

Paper claims: (a) a real-world adversary who knows the time bounds of a
(partially) synchronous protocol can slow it down by delaying its
messages to the verge of those bounds, while (b) an asynchronous
protocol completes at the speed of the honest nodes' actual messages —
"the asynchrony assumption may increase message complexity ... but in
practice does not increase the actual execution time".

Setup: honest link delays are ~1 time unit; the synchrony bound Delta
must be set conservatively (here 10x the mean honest delay — any real
deployment picks a large margin precisely because the cost of a wrong
bound is a safety/liveness failure).  We compare:

* our asynchronous DKG, honest run — completes in a few honest RTTs;
* our asynchronous DKG with a rushing adversary delaying *its* t nodes'
  messages near the timeout — honest quorums carry the protocol, so
  completion time barely moves;
* synchronous Joint-Feldman — pays rounds x Delta regardless of how
  fast messages actually travelled.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import Table
from repro.baselines import run_joint_feldman
from repro.crypto.groups import toy_group
from repro.sim.adversary import Adversary
from repro.sim.network import UniformDelay
from repro.dkg import DkgConfig, run_dkg

G = toy_group()
HONEST_DELAY = UniformDelay(0.5, 1.5)  # mean 1.0
DELTA = 10.0  # the conservative synchrony bound


def test_e6_async_vs_sync_latency(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for n in (7, 10, 13):
            t = (n - 1) // 3
            async_res = run_dkg(
                DkgConfig(n=n, t=t, group=G), seed=21, delay_model=HONEST_DELAY
            )
            assert async_res.succeeded
            sync_res = run_joint_feldman(n=n, t=t, group=G, seed=21, delta=DELTA)
            rows.append(
                (n, async_res.last_completion_time, sync_res.sync.latency,
                 sync_res.sync.latency / async_res.last_completion_time)
            )
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E6a: completion time, async DKG vs synchronous JF-DKG (Delta=10x mean delay)",
        ["n", "async DKG", "sync JF-DKG (rounds*Delta)", "sync/async"],
    )
    for n, a, s, ratio in rows:
        table.add(n, a, s, ratio)
        # The async protocol finishes before the sync one pays even its
        # full round budget at a conservative Delta.
        assert a < s
    save_table(table, "E6")


def test_e6_adversarial_delay_does_not_slow_async(benchmark, save_table) -> None:
    def sweep():
        n, t = 10, 3
        base = run_dkg(
            DkgConfig(n=n, t=t, group=G), seed=22, delay_model=HONEST_DELAY
        )
        byzantine = frozenset({8, 9, 10})
        slowed = run_dkg(
            DkgConfig(n=n, t=t, group=G),
            seed=22,
            delay_model=HONEST_DELAY,
            adversary=Adversary(
                t=t, f=0, byzantine=byzantine,
                byzantine_send_delay=DELTA * 0.9,  # verge of the bound
                rushing=False,
            ),
        )
        return base, slowed

    base, slowed = once(benchmark, sweep)
    table = Table(
        "E6b: async DKG under adversarial message delay (t nodes hold back)",
        ["scenario", "completion time", "leader changes"],
    )
    honest_time = base.last_completion_time
    # Completion time for *honest* nodes in the slowed run:
    slowed_honest = max(
        o.time
        for o in slowed.simulation.outputs
        if getattr(o.payload, "kind", "") == "dkg.out.completed"
        and o.node <= 7
    )
    table.add("no adversary", honest_time, base.metrics.leader_changes)
    table.add("t nodes delay to verge", slowed_honest,
              slowed.metrics.leader_changes)
    save_table(table, "E6")
    # §2.1: honest quorums (n - t - f reachable without the adversary)
    # complete without waiting for the delayed messages.
    assert slowed.succeeded
    assert slowed_honest <= honest_time * 2.0
    assert slowed_honest < DELTA  # far below even one synchronous round


def test_e6_sync_baseline_charged_full_rounds(benchmark, save_table) -> None:
    def run():
        return run_joint_feldman(n=10, t=3, group=G, seed=23, delta=DELTA)

    res = once(benchmark, run)
    table = Table(
        "E6c: synchronous baseline pays rounds x Delta by construction",
        ["rounds", "Delta", "latency"],
    )
    table.add(res.sync.rounds, DELTA, res.sync.latency)
    save_table(table, "E6")
    assert res.sync.latency == res.sync.rounds * DELTA
