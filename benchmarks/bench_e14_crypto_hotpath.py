"""E14 — the commitment-verification hot path: multiexp + batching.

The Fig. 1 predicates dominate runtime at realistic group sizes: every
echo/ready costs a verify-point against the bivariate commitment
matrix, and a DKG is n full VSS sessions of them.  This bench measures
three implementations of "check n points from n senders against one
commitment" at rfc5114-1024-160:

* **naive** — the textbook O(t^2)-exponentiation double loop per point
  (the seed implementation of ``verify_point``);
* **collapsed** — the cached per-node row verifier: one O(t^2) matrix
  collapse, then O(t) per point;
* **batched** — buffer all points and verify them in ONE randomized-
  linear-combination multiexp (``batch_verify_points``), the path the
  VSS/DKG sessions now take at their decision thresholds.

It also times end-to-end DKG completion at n ∈ {7, 13, 25} and the
threshold-Schnorr combine (sequential vs batched partial
verification), and writes everything to ``BENCH_e14.json``.

Run directly (CI runs ``--smoke`` as a perf-regression guard)::

    PYTHONPATH=src python benchmarks/bench_e14_crypto_hotpath.py [--smoke]

Acceptance: batched verification >= 5x naive at n=13, t=4.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.apps import threshold_schnorr
from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.groups import RFC5114_1024_160, SchnorrGroup, toy_group
from repro.dkg import DkgConfig, run_dkg
from repro.sim.network import ConstantDelay


def _naive_verify_point(
    commitment: FeldmanCommitment, i: int, m: int, alpha: int
) -> bool:
    """Fig. 1 verify-point exactly as the seed implemented it."""
    g = commitment.group
    t = commitment.degree
    m_pows = [pow(m, j, g.q) for j in range(t + 1)]
    i_pows = [pow(i, ell, g.q) for ell in range(t + 1)]
    expected = 1
    for j in range(t + 1):
        for ell in range(t + 1):
            e = (m_pows[j] * i_pows[ell]) % g.q
            expected = g.mul(expected, pow(commitment.matrix[j][ell], e, g.p))
    return pow(g.g, alpha % g.q, g.p) == expected


def measure_verification(
    group: SchnorrGroup, n: int, t: int, rounds: int = 3, seed: int = 14
) -> dict:
    """Time naive vs collapsed vs batched checking of n points."""
    rng = random.Random(seed)
    poly = BivariatePolynomial.random_symmetric(t, group.q, rng, secret=7)
    matrix = FeldmanCommitment.commit(poly, group).matrix
    me = 1
    items = [(m, poly.evaluate(m, me)) for m in range(1, n + 1)]

    def fresh() -> FeldmanCommitment:
        # A new instance per round so per-commitment caches start cold,
        # as they do for each newly dealt commitment in a session.
        return FeldmanCommitment(matrix, group)

    t0 = time.perf_counter()
    for _ in range(rounds):
        commitment = fresh()
        assert all(
            _naive_verify_point(commitment, me, m, alpha) for m, alpha in items
        )
    naive = (time.perf_counter() - t0) / rounds

    t0 = time.perf_counter()
    for _ in range(rounds):
        commitment = fresh()
        assert all(commitment.verify_point(me, m, alpha) for m, alpha in items)
    collapsed = (time.perf_counter() - t0) / rounds

    t0 = time.perf_counter()
    for _ in range(rounds):
        commitment = fresh()
        good, bad = commitment.batch_verify_points(me, items, rng=rng)
        assert not bad and len(good) == n
    batched = (time.perf_counter() - t0) / rounds

    return {
        "n": n,
        "t": t,
        "points": n,
        "naive_pts_per_s": round(n / naive, 1),
        "collapsed_pts_per_s": round(n / collapsed, 1),
        "batched_pts_per_s": round(n / batched, 1),
        "speedup_collapsed": round(naive / collapsed, 2),
        "speedup_batched": round(naive / batched, 2),
    }


def measure_dkg(group: SchnorrGroup, n: int, t: int, seed: int = 14):
    """Wall-clock one full DKG (zero network delay: crypto-bound)."""
    config = DkgConfig(n=n, t=t, group=group)
    t0 = time.perf_counter()
    result = run_dkg(config, seed=seed, delay_model=ConstantDelay(0.0))
    elapsed = time.perf_counter() - t0
    assert result.succeeded
    return {"n": n, "t": t, "seconds": round(elapsed, 3)}, result


def measure_combine(group: SchnorrGroup, key, nonce, rounds: int = 10) -> dict:
    """Threshold-Schnorr combine: per-partial verify vs one batch."""
    message = b"bench-e14"
    partials = [
        threshold_schnorr.PartialSignature(
            i,
            threshold_schnorr.partial_sign(
                group,
                message,
                key.shares[i],
                nonce.shares[i],
                key.public_key,
                nonce.public_key,
            ),
        )
        for i in sorted(key.shares)
    ]
    t = key.config.t
    t0 = time.perf_counter()
    for _ in range(rounds):
        threshold_schnorr.combine(
            group, message, partials, key.commitment, nonce.commitment, t
        )
    sequential = (time.perf_counter() - t0) / rounds
    rng = random.Random(3)
    t0 = time.perf_counter()
    for _ in range(rounds):
        threshold_schnorr.combine(
            group, message, partials, key.commitment, nonce.commitment, t,
            rng=rng,
        )
    batched = (time.perf_counter() - t0) / rounds
    return {
        "partials": len(partials),
        "sequential_ms": round(sequential * 1000, 2),
        "batched_ms": round(batched * 1000, 2),
        "speedup": round(sequential / batched, 2),
    }


def run_bench(smoke: bool) -> dict:
    if smoke:
        # Toy group: per-op times are microseconds, so the regression
        # gate needs many rounds to rise above timer noise.
        group = toy_group()
        shapes = [(7, 2)]
        dkg_shapes = [(7, 2)]
        verify_rounds, combine_rounds = 200, 50
    else:
        group = RFC5114_1024_160
        shapes = [(7, 2), (13, 4), (25, 8)]
        dkg_shapes = [(7, 2), (13, 4), (25, 8)]
        verify_rounds, combine_rounds = 3, 10
    report: dict = {
        "bench": "e14_crypto_hotpath",
        "mode": "smoke" if smoke else "full",
        "group": group.name,
        "verification": [],
        "dkg_e2e": [],
    }
    for n, t in shapes:
        row = measure_verification(group, n, t, rounds=verify_rounds)
        report["verification"].append(row)
        print(
            f"verify n={n} t={t}: naive {row['naive_pts_per_s']}/s, "
            f"collapsed {row['collapsed_pts_per_s']}/s "
            f"({row['speedup_collapsed']}x), "
            f"batched {row['batched_pts_per_s']}/s "
            f"({row['speedup_batched']}x)"
        )
    results = {}
    for n, t in dkg_shapes:
        row, result = measure_dkg(group, n, t)
        results[n] = result
        report["dkg_e2e"].append(row)
        print(f"dkg e2e n={n} t={t}: {row['seconds']} s")
    combine_n = 13 if not smoke else 7
    key = results[combine_n]
    _, nonce = measure_dkg(group, combine_n, (combine_n - 1) // 3, seed=15)
    report["combine"] = measure_combine(group, key, nonce, rounds=combine_rounds)
    print(
        f"combine ({report['combine']['partials']} partials): "
        f"sequential {report['combine']['sequential_ms']} ms, "
        f"batched {report['combine']['batched_ms']} ms "
        f"({report['combine']['speedup']}x)"
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="toy-group regression guard: fail if batched is slower than naive",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e14.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.smoke:
        row = report["verification"][0]
        if row["speedup_batched"] < 1.0:
            print(
                "PERF REGRESSION: batched verification slower than naive "
                f"({row['speedup_batched']}x)",
                file=sys.stderr,
            )
            return 1
        print(f"smoke ok: batched {row['speedup_batched']}x naive")
        return 0
    headline = next(r for r in report["verification"] if r["n"] == 13)
    if headline["speedup_batched"] < 5.0:
        print(
            "ACCEPTANCE MISS: batched verification "
            f"{headline['speedup_batched']}x naive at n=13 (target 5x)",
            file=sys.stderr,
        )
        return 1
    print(f"acceptance ok: batched {headline['speedup_batched']}x at n=13 t=4")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
