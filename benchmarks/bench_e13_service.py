"""E13 — the serving layer: presignature pool vs on-demand nonce DKG.

The paper's §1 pitch is DKG as the building block for Internet-scale
threshold services; threshold Schnorr makes the cost concrete — every
signature needs a fresh shared nonce, i.e. *another DKG*.  This bench
runs the full serving stack (asyncio TCP gateway, 32+ concurrent
closed-loop clients, per-node workers, batch partial verification) on
an n=7, t=2 cluster in two modes:

* **on-demand** — the pool is disabled; every SIGN pays for its nonce
  DKG inside the request path;
* **pooled** — K nonce DKGs are precomputed off-path with low-watermark
  refill; mid-run, one node is crashed to exercise crash invalidation
  and continued service.

Acceptance: the pool cuts p50 signing latency by >= 3x, and the pooled
run keeps serving through the crash with zero failed or invalid
signatures.

A second table isolates the batch partial-signature verification win
(random linear combination vs one-by-one verification).
"""

from __future__ import annotations

import asyncio
import random
import time

from conftest import once

from repro.analysis import Table
from repro.apps import threshold_schnorr
from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig, run_dkg
from repro.service import (
    LoadGenerator,
    ServiceConfig,
    ServiceFrontend,
    ThresholdService,
)
from repro.sim.network import ConstantDelay

G = toy_group()
N, T, SEED = 7, 2, 13
CLIENTS = 32
REQUESTS_PER_CLIENT = 2
CRASH_NODE = 7  # crashed 100 ms into the pooled run


async def _run_mode(
    pool_target: int, crash_after_served: int | None
) -> tuple[dict, dict]:
    service = ThresholdService(
        ServiceConfig(n=N, t=T, group=G, seed=SEED, pool_target=pool_target)
    )
    await service.start()  # pool prefill happens here, off the request path
    frontend = ServiceFrontend(service, max_queue=1024)
    await frontend.start()
    served_at_crash: list[int] = []

    async def _crash_midrun() -> None:
        while service.served < crash_after_served:
            await asyncio.sleep(0.001)
        served_at_crash.append(service.served)
        service.crash_node(CRASH_NODE)

    crasher = (
        asyncio.create_task(_crash_midrun())
        if crash_after_served is not None
        else None
    )
    generator = LoadGenerator(
        frontend.host,
        frontend.port,
        clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        op="sign",
    )
    report = await generator.run()
    if crasher is not None:
        await crasher
    state = {
        "alive": len(service.alive),
        "pool_forged": service.pool.forged,
        "pool_invalidated": service.pool.invalidated,
        "served": service.served,
        "failed": service.failed,
        "served_at_crash": served_at_crash[0] if served_at_crash else None,
    }
    await frontend.stop()
    await service.stop()
    return report.as_dict(), state


def test_e13_presig_pool_speedup(benchmark, save_table) -> None:
    total = CLIENTS * REQUESTS_PER_CLIENT

    def sweep():
        on_demand, _ = asyncio.run(_run_mode(0, None))
        pooled, state = asyncio.run(_run_mode(total, total // 4))
        return on_demand, pooled, state

    on_demand, pooled, state = once(benchmark, sweep)

    # Correctness under load and through the crash.
    for report in (on_demand, pooled):
        assert report["completed"] == total
        assert report["errors"] == 0
        assert report["invalid_signatures"] == 0
    # The crash fired mid-run and the service finished the workload.
    assert state["served_at_crash"] is not None
    assert state["served_at_crash"] < state["served"]
    assert state["alive"] == N - 1
    assert state["failed"] == 0
    # The headline: presignatures take the nonce DKG off the hot path.
    speedup = on_demand["p50_ms"] / pooled["p50_ms"]
    assert speedup >= 3.0, f"pool p50 speedup only {speedup:.1f}x"

    table = Table(
        f"E13: signing service, n={N} t={T}, {CLIENTS} concurrent clients "
        f"({total} signatures; pooled run crashes node {CRASH_NODE} mid-run)",
        [
            "mode",
            "completed",
            "presig hits",
            "p50 ms",
            "p99 ms",
            "sigs/s",
            "speedup",
        ],
    )
    table.add(
        "on-demand nonce DKG",
        on_demand["completed"],
        on_demand["presig_hits"],
        on_demand["p50_ms"],
        on_demand["p99_ms"],
        on_demand["throughput_rps"],
        1.0,
    )
    table.add(
        "presignature pool",
        pooled["completed"],
        pooled["presig_hits"],
        pooled["p50_ms"],
        pooled["p99_ms"],
        pooled["throughput_rps"],
        round(speedup, 1),
    )
    save_table(table, "e13_service")


def test_e13b_batch_partial_verification(benchmark, save_table) -> None:
    """Batch (RLC) vs sequential verification of n partial signatures."""

    def sweep():
        config = DkgConfig(n=N, t=T, group=G)
        key = run_dkg(config, seed=1, delay_model=ConstantDelay(0.0))
        nonce = run_dkg(config, seed=2, delay_model=ConstantDelay(0.0))
        message = b"bench"
        partials = [
            threshold_schnorr.PartialSignature(
                i,
                threshold_schnorr.partial_sign(
                    G,
                    message,
                    key.shares[i],
                    nonce.shares[i],
                    key.public_key,
                    nonce.public_key,
                ),
            )
            for i in key.shares
        ]
        rng = random.Random(3)
        rounds = 50
        t0 = time.perf_counter()
        for _ in range(rounds):
            for partial in partials:
                assert threshold_schnorr.verify_partial(
                    G, message, partial, key.commitment, nonce.commitment
                )
        sequential = (time.perf_counter() - t0) / rounds
        t0 = time.perf_counter()
        for _ in range(rounds):
            valid, bad = threshold_schnorr.batch_verify(
                G, message, partials, key.commitment, nonce.commitment, rng
            )
            assert not bad and len(valid) == len(partials)
        batched = (time.perf_counter() - t0) / rounds
        return sequential, batched

    sequential, batched = once(benchmark, sweep)
    table = Table(
        f"E13b: verifying {N} partial signatures (toy group)",
        ["method", "ms/batch", "speedup"],
    )
    table.add("one-by-one verify_partial", round(sequential * 1000, 3), 1.0)
    table.add(
        "random-linear-combination batch",
        round(batched * 1000, 3),
        round(sequential / batched, 2),
    )
    save_table(table, "e13_service")
