"""E11 — operational fault scenarios (extension beyond the paper's
tables; exercises §2.2's failure model end to end).

§2.2 models link failures and network partitioning through the crash
abstraction and argues the system rides through them.  This bench
measures the DKG under a library of realistic fault shapes — rolling
restarts, crash storms, flaky nodes, healed partitions — recording
completion, overhead and latency for each.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import Table, completion_latencies, summarize
from repro.crypto.groups import toy_group
from repro.sim.clock import TimeoutPolicy
from repro.sim.network import PartitionDelay, UniformDelay
from repro.sim.scenarios import (
    crash_storm,
    fault_free,
    flaky_node,
    rolling_restart,
)
from repro.dkg import DkgConfig, run_dkg

G = toy_group()
N, T, F = 9, 2, 1


def _cfg() -> DkgConfig:
    return DkgConfig(
        n=N, t=T, f=F, group=G,
        timeout=TimeoutPolicy(initial=40.0, multiplier=2.0),
    )


def test_e11_scenario_suite(benchmark, save_table) -> None:
    def sweep():
        scenarios = [
            fault_free(T, F),
            rolling_restart(T, F, nodes=[3, 6], downtime=6.0, gap=2.0),
            crash_storm(T, F, victims=[2, 4, 6, 8], episodes=4, seed=1),
            flaky_node(T, F, node=5, flaps=3),
        ]
        rows = []
        for spec in scenarios:
            res = run_dkg(_cfg(), seed=11, adversary=spec.adversary)
            assert res.succeeded, spec.name
            rows.append(
                (spec.name, res.metrics.messages_total,
                 res.metrics.recoveries, res.last_completion_time)
            )
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E11a: DKG under operational fault scenarios (n=9, t=2, f=1)",
        ["scenario", "messages", "recoveries", "completion time"],
    )
    baseline = rows[0][1]
    for name, msgs, recoveries, when in rows:
        table.add(name, msgs, recoveries, when)
        # Faults add bounded overhead: each recovery costs O(n^2)
        # (help broadcast + B replays across the n sessions); allow a
        # generous constant on the paper's per-recovery bound.
        assert msgs <= baseline + max(recoveries, 1) * 10 * N * N
    save_table(table, "E11")


def test_e11_partition_heal_latency(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for heal in (10.0, 30.0, 60.0):
            delays = PartitionDelay(
                group_a=frozenset({1, 2, 3}), heal_time=heal,
                base=UniformDelay(0.5, 1.5),
            )
            res = run_dkg(
                DkgConfig(
                    n=7, t=2, group=G,
                    timeout=TimeoutPolicy(initial=heal + 20.0),
                ),
                seed=12, delay_model=delays,
            )
            assert res.succeeded
            times = completion_latencies(res.simulation, "dkg.out.completed")
            summary = summarize(times)
            rows.append((heal, summary.median, summary.maximum))
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E11b: DKG completion vs partition heal time (3|4 split)",
        ["heal time", "median completion", "max completion"],
    )
    for heal, median, maximum in rows:
        table.add(heal, median, maximum)
        # cross-partition quorums mean completion tracks the heal time
        assert maximum >= heal
    save_table(table, "E11")
    # later heals shift completion correspondingly
    assert rows[0][2] < rows[1][2] < rows[2][2]
