"""E7 — proactive share renewal (§5.2).

Paper claims: renewal is a modified DKG (so DKG-like complexity); the
renewed shares interpolate to the *same* secret under a fresh
polynomial; a mobile adversary collecting t shares per phase never
accumulates the secret.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import Table, fit_exponent
from repro.crypto.groups import toy_group
from repro.crypto.polynomials import interpolate_at
from repro.dkg import DkgConfig
from repro.proactive import ProactiveSystem

G = toy_group()


def test_e7_renewal_complexity_matches_dkg(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for n in (7, 10, 13):
            t = (n - 1) // 3
            system = ProactiveSystem(DkgConfig(n=n, t=t, group=G), seed=31)
            boot = system.bootstrap()
            report = system.renew()
            rows.append(
                (n, boot.metrics.messages_total,
                 report.metrics.messages_total)
            )
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E7a: renewal vs DKG message counts (paper: same complexity)",
        ["n", "DKG msgs", "renewal msgs", "renewal/DKG"],
    )
    for n, dkg_msgs, renew_msgs in rows:
        table.add(n, dkg_msgs, renew_msgs, renew_msgs / dkg_msgs)
        # Renewal adds only the n^2 clock-tick messages on top of the
        # DKG pattern and interpolates instead of summing.
        assert dkg_msgs <= renew_msgs <= dkg_msgs + 2 * n * n
    save_table(table, "E7")
    order = fit_exponent([r[0] for r in rows], [r[2] for r in rows])
    assert 2.6 <= order <= 3.3  # ~n^3, like the DKG


def test_e7_secret_invariant_over_many_phases(benchmark, save_table) -> None:
    def run():
        system = ProactiveSystem(DkgConfig(n=7, t=2, group=G), seed=32)
        system.bootstrap()
        secret = system.reconstruct()
        pk = system.public_key
        checks = []
        for phase in range(1, 6):
            report = system.renew()
            checks.append(
                (phase, system.reconstruct() == secret,
                 report.public_key == pk)
            )
        return checks

    checks = once(benchmark, run)
    table = Table(
        "E7b: secret/public key invariance across 5 renewal phases",
        ["phase", "secret preserved", "public key preserved"],
    )
    for phase, secret_ok, pk_ok in checks:
        table.add(phase, secret_ok, pk_ok)
        assert secret_ok and pk_ok
    save_table(table, "E7")


def test_e7_mobile_adversary_defeated(benchmark, save_table) -> None:
    """The headline proactive property: 2t shares across two phases
    (more than t+1 in total) are useless; t+1 same-phase shares break."""

    def run():
        system = ProactiveSystem(DkgConfig(n=7, t=2, group=G), seed=33)
        system.bootstrap()
        secret = system.reconstruct()
        system.renew(corrupted={1, 2})
        r2 = system.renew(corrupted={3, 4})
        leaked = [
            (i, s) for view in system.adversary_view.values()
            for i, s in view.items()
        ]
        cross_phase = interpolate_at(leaked[:3], 0, G.q)
        same_phase = interpolate_at(sorted(r2.shares.items())[:3], 0, G.q)
        return secret, len(leaked), cross_phase, same_phase

    secret, leaked_count, cross, same = once(benchmark, run)
    table = Table(
        "E7c: mobile adversary, t corruptions per phase over 2 phases",
        ["total shares seen", "cross-phase interp == secret",
         "t+1 same-phase == secret (sanity)"],
    )
    table.add(leaked_count, cross == secret, same == secret)
    save_table(table, "E7")
    assert leaked_count == 4  # 2t > t, yet:
    assert cross != secret
    assert same == secret
