"""E2 — HybridVSS crash/recovery overhead (§3 Efficiency Discussion).

Paper claims: the recovery mechanism costs O(n^2) messages from the
recovering node plus O(n) from each helper; with crashes bounded by
d(kappa) the totals are O(t d n^2) messages and O(kappa t d n^3) bits;
help-request counters cap the work at (t+1) d(kappa) responses.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import Table, vss_recovery_messages
from repro.crypto.groups import toy_group
from repro.sim.adversary import Adversary
from repro.vss import VssConfig, run_vss

G = toy_group()


def _run_with_crashes(n: int, t: int, f: int, crashes: list, seed: int = 3):
    cfg = VssConfig(n=n, t=t, f=f, group=G, d_budget=max(10, len(crashes)))
    adv = Adversary.crash_only(t=t, f=f, crash_plan=crashes,
                               d_budget=max(10, len(crashes)))
    return run_vss(cfg, secret=1, seed=seed, adversary=adv)


def test_e2_single_recovery_overhead(benchmark, save_table) -> None:
    def sweep():
        rows = []
        for n in (9, 13, 17, 21):
            t, f = (n - 3) // 3, 1
            base = run_vss(VssConfig(n=n, t=t, f=f, group=G), secret=1, seed=3)
            crashed = _run_with_crashes(n, t, f, [(0.1, 4, 30.0)])
            extra = (
                crashed.metrics.messages_total - base.metrics.messages_total
            )
            rows.append((n, t, base.metrics.messages_total, extra))
        return rows

    rows = once(benchmark, sweep)
    table = Table(
        "E2a: single crash/recovery message overhead (paper: O(n^2))",
        ["n", "t", "crash-free msgs", "recovery overhead", "bound 2n^2"],
    )
    for n, t, base, extra in rows:
        bound = vss_recovery_messages(n)
        table.add(n, t, base, extra, bound)
        assert 0 < extra <= 2 * bound
        # everyone completed despite the crash
    save_table(table, "E2")


def test_e2_overhead_scales_with_crash_count(benchmark, save_table) -> None:
    def sweep():
        n, t, f = 13, 3, 1
        base = run_vss(VssConfig(n=n, t=t, f=f, group=G), secret=1, seed=4)
        rows = []
        for d in (1, 2, 4):
            # d sequential crash/recovery episodes of the same f=1 slot.
            crashes = [(0.1 + 40.0 * k, 4 + (k % 3), 20.0) for k in range(d)]
            res = _run_with_crashes(n, t, f, crashes, seed=4)
            extra = res.metrics.messages_total - base.metrics.messages_total
            rows.append((d, res.metrics.recoveries, extra))
        return base.metrics.messages_total, rows

    base_msgs, rows = once(benchmark, sweep)
    table = Table(
        "E2b: overhead vs number of crashes d (paper: O(t d n^2) total)",
        ["d", "recoveries", "extra msgs", "extra per crash"],
    )
    per_crash = []
    for d, recoveries, extra in rows:
        table.add(d, recoveries, extra, extra / d)
        per_crash.append(extra / d)
        assert recoveries == d
    save_table(table, "E2")
    # Per-crash cost stays bounded (linear in d overall): the largest
    # per-crash cost is within 3x of the smallest.
    assert max(per_crash) <= 3 * min(per_crash)


def test_e2_help_budget_caps_malicious_help_requests(benchmark, save_table) -> None:
    """A node spamming help requests gets at most d(kappa) responses per
    helper and (t+1) d(kappa) total — the d-uniform bound in action."""
    from repro.sim.node import Context, ProtocolNode
    from repro.vss.messages import HelpMsg, SessionId
    from dataclasses import dataclass
    from typing import Any

    @dataclass
    class HelpSpammer(ProtocolNode):
        fired: bool = False

        def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
            if not self.fired:
                self.fired = True
                for _ in range(50):  # way over budget
                    for j in range(1, 8):
                        ctx.send(j, HelpMsg(SessionId(1, 0)))

    def run():
        cfg = VssConfig(n=7, t=2, f=0, group=G, d_budget=3)
        adv = Adversary.corrupting(t=2, f=0, byzantine={5})
        res = run_vss(
            cfg, secret=1, seed=5, adversary=adv,
            node_factory={5: HelpSpammer(5)},
        )
        return res

    res = once(benchmark, run)
    help_sent = res.metrics.messages_by_kind["vss.help"]
    table = Table(
        "E2c: help-request flooding capped by d(kappa) budgets",
        ["help msgs sent", "per-helper budget", "observation"],
    )
    table.add(help_sent, 3, "responses bounded; run completed")
    save_table(table, "E2")
    assert help_sent == 50 * 7
    # The other nodes still complete; spam does not blow up the run.
    assert len(res.completed_nodes) >= 6
