#!/usr/bin/env python3
"""A dealerless threshold signing service ("wallet") scenario.

Seven nodes jointly hold a signing key that never exists in one place:

1. a key DKG establishes the wallet's public key;
2. each signing request runs an ephemeral nonce DKG, then t+1 signers
   publish partial responses that combine into an ordinary Schnorr
   signature;
3. a Byzantine signer submitting a corrupted partial is detected and
   filtered — the signature still completes;
4. the wallet key survives share renewal (proactive security): old
   shares become useless, the public key is unchanged.

Run:  python examples/threshold_wallet.py
"""

from __future__ import annotations

from repro.apps import threshold_schnorr as ts
from repro.crypto import schnorr
from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig, run_dkg
from repro.proactive import ProactiveSystem


def sign(message: bytes, key, nonce, signers, t):
    group = key.config.group
    partials = [
        ts.PartialSignature(
            i,
            ts.partial_sign(
                group, message, key_shares[i], nonce.shares[i],
                key_pk, nonce.public_key,
            ),
        )
        for i in signers
    ]
    return ts.combine(
        group, message, partials, key_commitment, nonce.commitment, t=t
    )


def main() -> None:
    global key_shares, key_pk, key_commitment
    group = toy_group()
    config = DkgConfig(n=7, t=2, f=0, group=group)

    print("== Step 1: wallet key generation (no dealer, no trusted party) ==")
    system = ProactiveSystem(config, seed=7)
    key = system.bootstrap()
    key_shares = dict(key.shares)
    key_pk = key.public_key
    key_commitment = key.commitment
    print(f"wallet public key: {hex(key_pk)}")

    print("\n== Step 2: threshold signing (3-of-7) ==")
    message = b"transfer 10 coins to alice"
    nonce = run_dkg(config, seed=1001)  # fresh nonce per message
    sig = sign(message, key, nonce, signers=(1, 4, 6), t=2)
    print(f"signature: (c={hex(sig.challenge)[:18]}..., z={hex(sig.response)[:18]}...)")
    print(f"verifies under plain Schnorr: "
          f"{schnorr.verify(group, key_pk, message, sig)}")

    print("\n== Step 3: Byzantine signer filtered ==")
    nonce2 = run_dkg(config, seed=1002)
    good = [
        ts.PartialSignature(
            i,
            ts.partial_sign(group, message, key_shares[i], nonce2.shares[i],
                            key_pk, nonce2.public_key),
        )
        for i in (2, 3)
    ]
    evil = ts.PartialSignature(5, 0xDEADBEEF % group.q)
    print(f"bad partial detected: "
          f"{not ts.verify_partial(group, message, evil, key_commitment, nonce2.commitment)}")
    extra = ts.PartialSignature(
        7,
        ts.partial_sign(group, message, key_shares[7], nonce2.shares[7],
                        key_pk, nonce2.public_key),
    )
    sig2 = ts.combine(group, message, good + [evil, extra],
                      key_commitment, nonce2.commitment, t=2)
    print(f"signature still valid: {schnorr.verify(group, key_pk, message, sig2)}")

    print("\n== Step 4: proactive share renewal ==")
    old_shares = dict(key_shares)
    report = system.renew()
    key_shares = dict(report.shares)
    key_commitment = report.commitment
    print(f"public key unchanged: {report.public_key == key_pk}")
    print(f"all shares changed:   "
          f"{all(old_shares[i] != key_shares[i] for i in key_shares)}")
    nonce3 = run_dkg(config, seed=1003)
    sig3 = sign(b"post-renewal payment", key, nonce3, signers=(3, 5, 6), t=2)
    print(f"signing still works:  "
          f"{schnorr.verify(group, key_pk, b'post-renewal payment', sig3)}")


if __name__ == "__main__":
    main()
