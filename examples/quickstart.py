#!/usr/bin/env python3
"""Quickstart: generate a distributed key among 7 simulated nodes.

Runs the paper's asynchronous DKG (n=7, t=2) over the discrete-event
network simulator, prints the group public key, each node's verifiable
share, and demonstrates that any t+1 shares reconstruct the secret
while t shares do not.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.crypto import Share, reconstruct_secret
from repro.crypto.groups import toy_group
from repro.crypto.polynomials import interpolate_at
from repro.dkg import DkgConfig, run_dkg


def main() -> None:
    group = toy_group()
    config = DkgConfig(n=7, t=2, f=0, group=group)
    print(f"Running DKG: n={config.n}, t={config.t}, f={config.f}, {group}")

    result = run_dkg(config, seed=2024)
    assert result.succeeded

    print(f"\nAgreed dealer set Q = {result.q_set}")
    print(f"Group public key    = {hex(result.public_key)}")
    print(f"Completed at t={result.last_completion_time:.2f} "
          f"using {result.metrics.messages_total} messages "
          f"({result.metrics.bytes_total / 1024:.1f} KiB)")

    print("\nPer-node shares (each verifiable against the commitment):")
    commitment = result.commitment
    for i, share in sorted(result.shares.items()):
        ok = commitment.verify_share(i, share)
        print(f"  node {i}: share={hex(share)}  verifies={ok}")

    # Any t+1 = 3 shares reconstruct the secret...
    subset = [Share(i, result.shares[i], commitment) for i in (2, 5, 7)]
    secret = reconstruct_secret(subset, config.t, group.q)
    print(f"\nReconstructed from nodes (2, 5, 7): {hex(secret)}")
    print(f"g^secret == public key: {group.commit(secret) == result.public_key}")

    # ... while t = 2 shares reveal nothing (interpolation misses).
    pts = [(1, result.shares[1]), (2, result.shares[2])]
    wrong = interpolate_at(pts, 0, group.q)
    print(f"Naive guess from only 2 shares is wrong: {wrong != secret}")


if __name__ == "__main__":
    main()
