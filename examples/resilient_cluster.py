#!/usr/bin/env python3
"""A long-lived threshold cluster surviving everything the paper models.

One continuous storyline over the hybrid fault model:

1. bootstrap a 9-node cluster (t=2, f=1) — the initial leader is
   Byzantine-silent, so the DKG goes through its pessimistic phase and
   elects the next leader;
2. a node crashes mid-protocol and recovers via help messages;
3. the operators agree to add a node and remove another (modification
   agreement + §6.2/§6.3), applied across a phase change;
4. shares are renewed each phase, defeating a mobile adversary that
   corrupts different nodes in different phases.

Run:  python examples/resilient_cluster.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.groups import toy_group
from repro.crypto.polynomials import interpolate_at
from repro.dkg import DkgConfig, run_dkg
from repro.groupmod import GroupManager, ModProposal
from repro.sim.adversary import Adversary
from repro.sim.clock import TimeoutPolicy
from repro.sim.node import Context, ProtocolNode


@dataclass
class SilentNode(ProtocolNode):
    """A Byzantine node that simply never participates."""

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        pass

    def on_operator(self, payload: Any, ctx: Context) -> None:
        pass


def main() -> None:
    group = toy_group()
    config = DkgConfig(
        n=9, t=2, f=1, group=group,
        timeout=TimeoutPolicy(initial=25.0, multiplier=2.0),
    )

    print("== 1. Bootstrap with a Byzantine-silent initial leader ==")
    adv = Adversary(
        t=2, f=1,
        byzantine=frozenset({1}),          # node 1 = initial leader, silent
        crash_plan=[(2.0, 5, 30.0)],       # node 5 crashes and recovers
        d_budget=5,
    )
    boot = run_dkg(
        config, seed=77, adversary=adv,
        node_factory=lambda i, c, k, ca: SilentNode(i) if i == 1 else None,
    )
    views = {o.view for o in boot.completions.values()}
    print(f"  completed nodes: {boot.completed_nodes}")
    print(f"  leader changes:  {boot.metrics.leader_changes} "
          f"(completed in view {views})")
    print(f"  crash recoveries: {boot.metrics.recoveries}")
    print(f"  public key: {hex(boot.public_key)}")

    # Hand the running cluster to the group manager.
    gm = GroupManager(config, seed=78)
    gm.bootstrap()  # fresh clean bootstrap for the lifecycle demo
    secret = gm.reconstruct()
    pk = gm.public_key
    print(f"\n== 2. Lifecycle manager bootstrapped (pk {hex(pk)[:18]}...) ==")

    print("\n== 3. Mid-phase node addition (node 10 joins, no renewal) ==")
    gm.add_node(10)
    print(f"  members: {gm.members}")
    print(f"  node 10's share verifies: "
          f"{gm.commitment.verify_share(10, gm.shares[10])}")
    print(f"  secret unchanged: {gm.reconstruct() == secret}")

    print("\n== 4. Agreement: remove node 3, add node 11 ==")
    report = gm.agree({
        2: ModProposal("remove", 3),
        4: ModProposal("add", 11),
    })
    print(f"  agreed proposals: {[p.as_bytes().decode() for p in report.common_queue()]}")
    gm.phase_change()
    print(f"  members after phase change: {gm.members}")
    print(f"  secret preserved: {gm.reconstruct() == secret}")

    print("\n== 5. Mobile adversary across phases ==")
    exposed = []
    old_shares = dict(gm.shares)
    exposed += [(i, old_shares[i]) for i in list(gm.members)[:2]]  # phase k
    gm.phase_change()
    exposed += [(i, gm.shares[i]) for i in list(gm.members)[2:4]]  # phase k+1
    guess = interpolate_at(exposed[:3], 0, group.q)
    print(f"  adversary saw {len(exposed)} shares across two phases")
    print(f"  cross-phase reconstruction fails: {guess != secret}")
    print(f"  cluster still healthy: {gm.reconstruct() == secret}, "
          f"pk stable: {gm.commitment.public_key() == pk}")


if __name__ == "__main__":
    main()
