"""Live cluster demo: the same DKG, simulated and over real TCP.

The paper's title is "Distributed Key Generation for the *Internet*";
this example runs one DKG session twice — once inside the
discrete-event simulator and once across n real asyncio TCP endpoints
on localhost, every message serialized through the binary wire codec —
and shows both produce an agreed group public key, then rides the real
cluster through a crash fault.

Run::

    PYTHONPATH=src python examples/live_cluster.py
"""

from __future__ import annotations

from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig, run_dkg
from repro.net import run_local_cluster

N, T, F, SEED = 6, 1, 1, 7


def main() -> None:
    config = DkgConfig(n=N, t=T, f=F, group=toy_group())

    print(f"== DKG n={N} t={T} f={F}: simulator vs. real sockets ==\n")

    sim = run_dkg(config, seed=SEED)
    assert sim.succeeded
    print("simulated run:")
    print(f"  completed nodes : {sim.completed_nodes}")
    print(f"  agreed Q        : {sim.q_set}")
    print(f"  public key      : {hex(sim.public_key)}")
    print(f"  messages / bytes: {sim.metrics.messages_total} / "
          f"{sim.metrics.bytes_total}")

    real = run_local_cluster(config, seed=SEED, time_scale=0.01)
    assert real.succeeded, real.errors
    print("\nreal asyncio TCP run (localhost):")
    print(f"  completed nodes : {real.completed_nodes}")
    print(f"  agreed Q        : {real.q_set}")
    print(f"  public key      : {hex(real.public_key)}")
    print(f"  messages / bytes: {real.metrics.messages_total} / "
          f"{real.metrics.bytes_total}")
    print(f"  wall clock      : {real.wall_seconds * 1000:.1f} ms")

    # Same deployment, but node N crashes two time units in (f=1
    # budget): the remaining nodes must still reach agreement.
    crashed = run_local_cluster(
        config, seed=SEED, time_scale=0.01, crash_plan=[(N, 2.0, None)]
    )
    assert crashed.succeeded, crashed.errors
    print(f"\nreal run with node {N} crashing at t=2:")
    print(f"  completed nodes : {crashed.completed_nodes}")
    print(f"  agreed Q        : {crashed.q_set}")
    print(f"  public key      : {hex(crashed.public_key)}")
    print("\nBoth transports drive the identical node state machines; "
          "only the wiring differs.")


if __name__ == "__main__":
    main()
