"""Signing service demo: a DKG'd cluster serving clients over TCP.

The paper's §1 motivates DKG as the building block for dealerless
threshold services; this example assembles one end to end:

1. bootstrap a (n=5, t=1) group key with the DKG;
2. start the serving layer — per-node signer workers, a presignature
   pool of precomputed nonce DKGs, and the asyncio TCP gateway;
3. act as a client: threshold-sign a message (verifying the result is
   an ordinary Schnorr signature), advance the randomness beacon,
   evaluate the distributed PRF, and threshold-decrypt a ciphertext;
4. crash one node mid-run and show the service keeps serving — pooled
   presignatures the crashed node contributed to are invalidated and
   the pool refills from the survivors.

Run::

    PYTHONPATH=src python examples/signing_service.py
"""

from __future__ import annotations

import asyncio
import random

from repro.apps import threshold_elgamal
from repro.crypto import schnorr
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceFrontend,
    ThresholdService,
)

N, T, SEED, POOL = 5, 1, 11, 6


async def main() -> None:
    print(f"== threshold service n={N} t={T}, presig pool {POOL} ==\n")

    service = ThresholdService(
        ServiceConfig(n=N, t=T, seed=SEED, pool_target=POOL)
    )
    await service.start()  # prefills the pool: POOL nonce DKGs, off-path
    async with ServiceFrontend(service) as frontend:
        print(f"gateway listening on {frontend.host}:{frontend.port}")
        print(f"group public key   : {hex(service.public_key)}")
        print(f"pool ready         : {service.pool.level}\n")

        client = await ServiceClient.connect(frontend.host, frontend.port)

        # -- threshold Schnorr: verifies like a single-signer signature
        message = b"pay 10 coins to carol"
        signed = await client.sign(message)
        signature = schnorr.Signature(signed.challenge, signed.response)
        assert schnorr.verify(service.group, service.public_key, message, signature)
        print(f"SIGN    : verified, presig_used={signed.presig_used}")

        # -- randomness beacon: chained, publicly verifiable rounds
        for _ in range(2):
            round_ = await client.beacon_next()
            print(
                f"BEACON  : round {round_.round_number} -> "
                f"{round_.output.hex()[:24]}..."
            )

        # -- distributed PRF: deterministic, unbiasable
        tag = b"lottery-2026-07-31"
        first = await client.dprf_eval(tag)
        again = await client.dprf_eval(tag)
        assert first.output == again.output
        print(f"DPRF    : f_s({tag.decode()}) = {first.output.hex()[:24]}...")

        # -- threshold decryption: no node ever sees the key
        ciphertext = threshold_elgamal.encrypt_bytes(
            service.group, service.public_key, b"dealerless!", random.Random(2)
        )
        plain = await client.decrypt(ciphertext.c1, ciphertext.pad)
        print(f"DECRYPT : {plain.plaintext!r}")

        # -- crash one member mid-run; the service keeps signing
        victim = 2
        dropped = service.crash_node(victim)
        print(
            f"\ncrashed node {victim}: {dropped} pooled presignature(s) "
            "invalidated (it contributed to them)"
        )
        signed = await client.sign(b"still signing after the crash")
        assert schnorr.verify(
            service.group,
            service.public_key,
            b"still signing after the crash",
            schnorr.Signature(signed.challenge, signed.response),
        )
        status = await client.status()
        print(
            f"post-crash status  : alive={status.alive}/{status.n}, "
            f"served={status.served}, pool={status.pool_ready}"
        )

        await client.close()
    await service.stop()
    print("\nservice stopped cleanly")


if __name__ == "__main__":
    asyncio.run(main())
