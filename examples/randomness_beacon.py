#!/usr/bin/env python3
"""A distributed randomness beacon from the DDH distributed PRF.

The paper motivates DKG with distributed coin tossing and random
oracles ([4], [7], [8]).  This example builds the classic construction:

* a DKG establishes a shared PRF key ``s``;
* beacon round ``r`` outputs ``H2(H1(r)^s)`` — any t+1 nodes can
  produce it, no t nodes can predict or bias it, and every combiner
  gets the *same* value (uniqueness);
* Byzantine contributions are rejected by their DLEQ proofs;
* encrypting a message "to the future" round works via threshold
  ElGamal under the same machinery.

Run:  python examples/randomness_beacon.py
"""

from __future__ import annotations

import random

from repro.apps import dprf
from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig, run_dkg


def main() -> None:
    group = toy_group()
    config = DkgConfig(n=7, t=2, f=0, group=group)
    rng = random.Random(99)

    print("== Beacon key generation ==")
    dkg = run_dkg(config, seed=4242)
    assert dkg.succeeded
    print(f"beacon public key: {hex(dkg.public_key)}")

    print("\n== Beacon rounds (any 3-of-7 nodes produce each output) ==")
    committees = [(1, 2, 3), (4, 5, 6), (2, 5, 7), (1, 6, 7), (3, 4, 5)]
    for round_no, committee in enumerate(committees):
        tag = f"beacon-round-{round_no}".encode()
        partials = [
            dprf.partial_eval(group, tag, i, dkg.shares[i], rng)
            for i in committee
        ]
        value = dprf.combine(group, tag, dkg.commitment, partials, t=2)
        output = dprf.prf_bytes(group, value, 16)
        print(f"  round {round_no} by nodes {committee}: {output.hex()}")

    print("\n== Uniqueness: two disjoint committees, same output ==")
    tag = b"beacon-round-9"
    outs = []
    for committee in [(1, 2, 3), (5, 6, 7)]:
        partials = [
            dprf.partial_eval(group, tag, i, dkg.shares[i], rng)
            for i in committee
        ]
        value = dprf.combine(group, tag, dkg.commitment, partials, t=2)
        outs.append(dprf.prf_bytes(group, value, 16))
    print(f"  {outs[0].hex()} == {outs[1].hex()}: {outs[0] == outs[1]}")

    print("\n== Robustness: Byzantine partials rejected by DLEQ proofs ==")
    tag = b"beacon-round-10"
    bad = dprf.partial_eval(group, tag, 4, dkg.shares[4] + 1, rng)
    good = [
        dprf.partial_eval(group, tag, i, dkg.shares[i], rng) for i in (1, 2, 3)
    ]
    print(f"  forged partial verifies: "
          f"{dprf.verify_partial(group, tag, dkg.commitment, bad)}")
    value = dprf.combine(group, tag, dkg.commitment, [bad] + good, t=2)
    print(f"  beacon output unaffected: {dprf.prf_bytes(group, value, 8).hex()}")

    print("\n== Coin flips for randomized agreement ==")
    flips = []
    for r in range(16):
        tag = f"coin-{r}".encode()
        partials = [
            dprf.partial_eval(group, tag, i, dkg.shares[i], rng)
            for i in (1, 2, 3)
        ]
        flips.append(dprf.coin_flip(group, tag, dkg.commitment, partials, t=2))
    print(f"  16 common coins: {''.join(map(str, flips))}")


if __name__ == "__main__":
    main()
