"""Asynchronous distributed key generation (§4).

The DKG runs ``n`` extended-HybridVSS sharings plus a leader-based
agreement (optimistic reliable broadcast + pessimistic leader change)
on the set ``Q`` of sharings to combine.

Public API::

    from repro.dkg import DkgConfig, run_dkg
    result = run_dkg(DkgConfig(n=7, t=2, f=0), seed=1)
    result.public_key     # the group public key g^s
    result.shares         # verifiable per-node shares of s
"""

from repro.dkg.config import DkgConfig
from repro.dkg.messages import (
    DkgCompletedOutput,
    DkgEchoMsg,
    DkgHelpMsg,
    DkgReadyMsg,
    DkgReconstructInput,
    DkgReconstructedOutput,
    DkgRecoverInput,
    DkgSendMsg,
    DkgSharePointMsg,
    DkgStartInput,
    LeadChMsg,
    LeadChWitness,
    MTypeProof,
    ReadyCert,
    RTypeProof,
    SetVote,
)
from repro.dkg.node import DkgNode
from repro.dkg.proofs import (
    verify_election,
    verify_m_proof,
    verify_proof,
    verify_r_proof,
    verify_ready_cert,
)
from repro.dkg.runner import DkgResult, build_dkg_deployment, run_dkg

__all__ = [
    "DkgCompletedOutput",
    "DkgConfig",
    "DkgEchoMsg",
    "DkgHelpMsg",
    "DkgNode",
    "DkgReadyMsg",
    "DkgReconstructInput",
    "DkgReconstructedOutput",
    "DkgRecoverInput",
    "DkgResult",
    "DkgSendMsg",
    "DkgSharePointMsg",
    "DkgStartInput",
    "LeadChMsg",
    "LeadChWitness",
    "MTypeProof",
    "ReadyCert",
    "RTypeProof",
    "SetVote",
    "build_dkg_deployment",
    "run_dkg",
    "verify_election",
    "verify_m_proof",
    "verify_proof",
    "verify_r_proof",
    "verify_ready_cert",
]
