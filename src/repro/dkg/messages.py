"""DKG message types and validity proofs (§4, Figs. 2–3).

The DKG's agreement layer reliably broadcasts a *set* ``Q`` of t+1
dealer indices whose HybridVSS sharings completed.  Three kinds of
self-certifying evidence travel with proposals:

* :class:`ReadyCert` (the paper's ``R_d``) — ``n - t - f`` signed VSS
  ready messages proving dealer ``d``'s sharing completed for the
  commitment with the given digest;
* :class:`MTypeProof` (the paper's ``M``) — ``ceil((n+t+1)/2)`` signed
  DKG echo votes or ``t + 1`` signed DKG ready votes for a set ``Q``,
  proving ``Q`` was locked by the Bracha-style broadcast;
* :class:`LeadChWitness` sets — ``n - t - f`` signed lead-ch votes
  proving a new leader's election for a view.

Views: the paper cycles leaders through a public permutation ``pi``.
We use *view numbers* ``v = 0, 1, 2, ...`` with leader
``((L0 - 1 + v) mod n) + 1``; a lead-ch message for view ``v`` is the
paper's lead-ch for leader ``pi^v(L0)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.crypto.schnorr import Signature
from repro.vss.messages import WIRE_FRAME_OVERHEAD, ReadyWitness

VIEW_BYTES = 2
TAU_BYTES = 4
INDEX_BYTES = 2
DIGEST_BYTES = 32


def q_encoding(q_set: tuple[int, ...]) -> bytes:
    """Canonical byte encoding of a dealer set (sorted, comma-joined)."""
    return ",".join(str(i) for i in sorted(q_set)).encode()


def dkg_echo_bytes(tau: int, q_set: tuple[int, ...]) -> bytes:
    """Signed content of a DKG echo vote.

    Deliberately excludes the view/leader so that a proof set ``M``
    collected under one leader remains valid under the next (Fig. 3
    hands Q and M to the new leader)."""
    return b"dkg-echo|" + tau.to_bytes(TAU_BYTES, "big") + q_encoding(q_set)


def dkg_ready_bytes(tau: int, q_set: tuple[int, ...]) -> bytes:
    """Signed content of a DKG ready vote (view-independent, as above)."""
    return b"dkg-ready|" + tau.to_bytes(TAU_BYTES, "big") + q_encoding(q_set)


def lead_ch_bytes(tau: int, view: int) -> bytes:
    """Signed content of a lead-ch vote for ``view``."""
    return (
        b"dkg-leadch|"
        + tau.to_bytes(TAU_BYTES, "big")
        + view.to_bytes(VIEW_BYTES, "big")
    )


@dataclass(frozen=True)
class ReadyCert:
    """R_d: evidence that dealer d's VSS completed for digest(C_d)."""

    dealer: int
    digest: bytes
    witnesses: tuple[ReadyWitness, ...]

    def byte_size(self, sig_bytes: int) -> int:
        return (
            INDEX_BYTES
            + DIGEST_BYTES
            + len(self.witnesses) * (INDEX_BYTES + sig_bytes)
        )


@dataclass(frozen=True)
class RTypeProof:
    """The leader's evidence when proposing its own finished set Q-hat."""

    certs: tuple[ReadyCert, ...]

    proof_type = "R"

    @property
    def q_set(self) -> tuple[int, ...]:
        return tuple(sorted(cert.dealer for cert in self.certs))

    def byte_size(self, sig_bytes: int) -> int:
        return sum(cert.byte_size(sig_bytes) for cert in self.certs)


@dataclass(frozen=True)
class SetVote:
    """One signed DKG echo/ready vote for a set Q."""

    voter: int
    vote_kind: str  # "echo" | "ready"
    signature: Signature


@dataclass(frozen=True)
class MTypeProof:
    """Evidence that Q was locked: a quorum of signed echo or ready votes."""

    q: tuple[int, ...]
    votes: tuple[SetVote, ...]

    proof_type = "M"

    @property
    def q_set(self) -> tuple[int, ...]:
        return tuple(sorted(self.q))

    def byte_size(self, sig_bytes: int) -> int:
        return len(self.q) * INDEX_BYTES + len(self.votes) * (
            INDEX_BYTES + 1 + sig_bytes
        )


Proof = Union[RTypeProof, MTypeProof]


@dataclass(frozen=True)
class LeadChWitness:
    """One signed lead-ch vote: (voter, view, signature)."""

    voter: int
    view: int
    signature: Signature


@dataclass(frozen=True)
class DkgSendMsg:
    """Leader -> all: (L, tau, send, Q, R/M) [+ election proof if view > 0]."""

    tau: int
    view: int
    proof: Proof
    election: tuple[LeadChWitness, ...] = ()
    size: int = field(compare=False, default=0)

    kind = "dkg.send"

    @property
    def q_set(self) -> tuple[int, ...]:
        return self.proof.q_set

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class DkgEchoMsg:
    """(L, tau, echo, Q)_sign."""

    tau: int
    view: int
    q: tuple[int, ...]
    signature: Signature
    size: int = field(compare=False, default=0)

    kind = "dkg.echo"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class DkgReadyMsg:
    """(L, tau, ready, Q)_sign."""

    tau: int
    view: int
    q: tuple[int, ...]
    signature: Signature
    size: int = field(compare=False, default=0)

    kind = "dkg.ready"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class LeadChMsg:
    """(tau, lead-ch, view, Q-or-Qhat, R/M)_sign."""

    tau: int
    view: int
    proof: Proof | None
    signature: Signature
    size: int = field(compare=False, default=0)

    kind = "dkg.lead-ch"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class DkgSharePointMsg:
    """Rec protocol at the DKG layer: P_m -> all: my share s_m of the
    jointly generated secret (paper: "Protocol Rec remains exactly the
    same")."""

    tau: int
    point: int
    size: int = field(compare=False, default=0)

    kind = "dkg.rec-share"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class DkgReconstructInput:
    """Operator: start reconstructing the group secret at this node."""

    tau: int

    kind = "dkg.in.reconstruct"


@dataclass(frozen=True)
class DkgReconstructedOutput:
    """(tau, out, reconstructed, z_i)."""

    tau: int
    value: int

    kind = "dkg.out.reconstructed"


@dataclass(frozen=True)
class DkgHelpMsg:
    """Recovering node -> all: retransmit DKG-level B_l."""

    tau: int

    kind = "dkg.help"

    def byte_size(self) -> int:
        return WIRE_FRAME_OVERHEAD + TAU_BYTES


DkgMessage = Union[DkgSendMsg, DkgEchoMsg, DkgReadyMsg, LeadChMsg, DkgHelpMsg]


# -- operator messages ---------------------------------------------------------


@dataclass(frozen=True)
class DkgStartInput:
    """Operator: begin DKG session tau (every node picks and shares s_d)."""

    tau: int

    kind = "dkg.in.start"


@dataclass(frozen=True)
class DkgRecoverInput:
    """Operator: run the recovery procedure for session tau."""

    tau: int

    kind = "dkg.in.recover"


@dataclass(frozen=True)
class DkgCompletedOutput:
    """(L-bar, tau, DKG-completed, C, s_i).

    ``commitment`` is the combined matrix  C = prod_{d in Q} C_d and
    ``share`` the summed share s_i = sum_{d in Q} s_{i,d}; ``public_key``
    is g^s for the jointly generated secret s = sum_{d in Q} s_d.
    """

    tau: int
    view: int
    q_set: tuple[int, ...]
    commitment: object
    share: int
    public_key: int

    kind = "dkg.out.completed"
