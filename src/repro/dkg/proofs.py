"""Validity checking for DKG proposal and election proofs.

Implements the paper's ``verify-signature(Q, R/M)`` predicate (Fig. 2)
and lead-ch election verification (Fig. 3).  All checks are against the
CA's certificate registry, so a Byzantine node cannot fabricate quorum
evidence without controlling more than t signing keys.
"""

from __future__ import annotations

from repro.sim.pki import CertificateAuthority
from repro.vss.config import VssConfig
from repro.vss.messages import SessionId, ready_signing_bytes
from repro.dkg.messages import (
    LeadChWitness,
    MTypeProof,
    Proof,
    RTypeProof,
    dkg_echo_bytes,
    dkg_ready_bytes,
    lead_ch_bytes,
)


def verify_ready_cert(
    config: VssConfig,
    ca: CertificateAuthority,
    tau: int,
    cert: "RTypeProof | object",
) -> bool:
    """Check one R_d: n-t-f distinct, valid ready signatures."""
    from repro.dkg.messages import ReadyCert

    assert isinstance(cert, ReadyCert)
    signers = {w.signer for w in cert.witnesses}
    if len(signers) < config.output_threshold:
        return False
    members = set(config.indices)
    payload = ready_signing_bytes(SessionId(cert.dealer, tau), cert.digest)
    seen: set[int] = set()
    valid = 0
    for witness in cert.witnesses:
        if witness.signer in seen:
            continue
        if witness.signer not in members:
            return False
        if ca.verify(witness.signer, payload, witness.signature):
            seen.add(witness.signer)
            valid += 1
    return valid >= config.output_threshold


def verify_r_proof(
    config: VssConfig,
    ca: CertificateAuthority,
    tau: int,
    proof: RTypeProof,
    q_size: int | None = None,
) -> bool:
    """An R-type proposal is valid iff it certifies >= |Q| distinct
    dealers (|Q| defaults to t + 1; reconfiguration may require more)."""
    required = q_size if q_size is not None else config.t + 1
    dealers = {c.dealer for c in proof.certs}
    if len(dealers) < required or len(dealers) != len(proof.certs):
        return False
    members = set(config.indices)
    if not dealers <= members:
        return False
    return all(verify_ready_cert(config, ca, tau, c) for c in proof.certs)


def verify_m_proof(
    config: VssConfig,
    ca: CertificateAuthority,
    tau: int,
    proof: MTypeProof,
    q_size: int | None = None,
) -> bool:
    """An M-type proof is valid iff it holds an echo quorum
    (ceil((n+t+1)/2)) or a ready quorum (t+1) of valid votes for Q."""
    required = q_size if q_size is not None else config.t + 1
    if len(proof.q) < required:
        return False
    echo_payload = dkg_echo_bytes(tau, proof.q_set)
    ready_payload = dkg_ready_bytes(tau, proof.q_set)
    members = set(config.indices)
    echo_voters: set[int] = set()
    ready_voters: set[int] = set()
    for vote in proof.votes:
        if vote.voter not in members:
            continue
        if vote.vote_kind == "echo" and vote.voter not in echo_voters:
            if ca.verify(vote.voter, echo_payload, vote.signature):
                echo_voters.add(vote.voter)
        elif vote.vote_kind == "ready" and vote.voter not in ready_voters:
            if ca.verify(vote.voter, ready_payload, vote.signature):
                ready_voters.add(vote.voter)
    return (
        len(echo_voters) >= config.echo_threshold
        or len(ready_voters) >= config.ready_threshold
    )


def verify_proof(
    config: VssConfig,
    ca: CertificateAuthority,
    tau: int,
    proof: Proof,
    q_size: int | None = None,
) -> bool:
    """The paper's verify-signature(Q, R/M)."""
    if isinstance(proof, RTypeProof):
        return verify_r_proof(config, ca, tau, proof, q_size)
    if isinstance(proof, MTypeProof):
        return verify_m_proof(config, ca, tau, proof, q_size)
    return False


def verify_election(
    config: VssConfig,
    ca: CertificateAuthority,
    tau: int,
    view: int,
    witnesses: tuple[LeadChWitness, ...],
) -> bool:
    """A view-v leader's election proof: n-t-f distinct signed lead-ch
    votes for view v.  View 0 (the initial leader) needs no proof."""
    if view == 0:
        return True
    payload = lead_ch_bytes(tau, view)
    members = set(config.indices)
    voters: set[int] = set()
    for witness in witnesses:
        if witness.view != view or witness.voter not in members:
            continue
        if witness.voter in voters:
            continue
        if ca.verify(witness.voter, payload, witness.signature):
            voters.add(witness.voter)
    return len(voters) >= config.output_threshold
