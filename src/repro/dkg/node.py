"""The DKG protocol node: optimistic phase (Fig. 2) + leader change (Fig. 3).

Each node runs ``n`` extended-HybridVSS sessions (one per dealer,
itself included) and the leader-based agreement that reliably
broadcasts a set ``Q`` of ``t + 1`` completed sharings.  On deciding
``Q`` and finishing every sharing in it, the node outputs
``(L-bar, tau, DKG-completed, C, s_i)`` with ``s_i = sum_{d in Q} s_{i,d}``
and ``C = prod_{d in Q} C_d``.

View discipline: views are numbered 0, 1, 2, ... with leader
``config.leader_of_view(view)``.  A node enters view ``v > 0`` either by
collecting ``n - t - f`` signed lead-ch votes for ``v`` (Fig. 3) or by
receiving the view-``v`` leader's proposal carrying those votes as an
election proof — the paper's provision for nodes "who have not received
enough lead-ch messages".
"""

from __future__ import annotations

import random
from typing import Any

from repro.crypto.hashing import commitment_digest
from repro.sim.node import Context, ProtocolNode
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.vss.messages import (
    EchoMsg,
    HelpMsg,
    ReadyMsg,
    SendMsg,
    SessionId,
    SharedOutput,
    SharePointMsg,
)
from repro.vss.session import VssSession
from repro.dkg.config import DkgConfig
from repro.dkg.messages import (
    DkgCompletedOutput,
    DkgEchoMsg,
    DkgHelpMsg,
    DkgReadyMsg,
    DkgReconstructInput,
    DkgReconstructedOutput,
    DkgRecoverInput,
    DkgSendMsg,
    DkgSharePointMsg,
    DkgStartInput,
    LeadChMsg,
    LeadChWitness,
    MTypeProof,
    Proof,
    ReadyCert,
    RTypeProof,
    SetVote,
    dkg_echo_bytes,
    dkg_ready_bytes,
    lead_ch_bytes,
)
from repro.dkg.proofs import verify_election, verify_proof

_VSS_MESSAGE_TYPES = (SendMsg, EchoMsg, ReadyMsg, HelpMsg, SharePointMsg)


def _share_verifier_for(commitment):
    """A FeldmanVector validating shares of the combined secret, from
    either commitment shape (matrix for DKG, vector for renewal)."""
    from repro.crypto.feldman import share_verifier

    return share_verifier(commitment)


class DkgNode(ProtocolNode):
    """One participant of the asynchronous DKG."""

    def __init__(
        self,
        node_id: int,
        config: DkgConfig,
        keystore: KeyStore,
        ca: CertificateAuthority,
        tau: int = 0,
        secret: int | None = None,
    ):
        super().__init__(node_id)
        self.config = config
        self.keystore = keystore
        self.ca = ca
        self.tau = tau
        self.vss_config = config.vss()
        self.rng = random.Random(("dkg", tau, node_id).__repr__())
        self.secret = (
            secret if secret is not None else config.group.random_scalar(self.rng)
        )

        # upon initialization (Fig. 2)
        self.sessions: dict[int, VssSession] = {}
        for dealer in self.vss_config.indices:
            self.sessions[dealer] = VssSession(
                self.vss_config,
                node_id,
                SessionId(dealer, tau),
                on_shared=self._on_vss_shared,
                keystore=keystore,
                ca=ca,
                sign_ready=True,
            )
        self.q_hat: dict[int, ReadyCert] = {}  # b-Q with b-R certificates
        self.locked_q: tuple[int, ...] | None = None  # bold Q
        self.locked_proof: MTypeProof | None = None  # M
        self.echo_votes: dict[tuple[int, ...], dict[int, SetVote]] = {}
        self.ready_votes: dict[tuple[int, ...], dict[int, SetVote]] = {}
        self.sent_echo_for: set[tuple[int, tuple[int, ...]]] = set()
        self.sent_ready_for: set[tuple[int, ...]] = set()
        self.view = 0
        self.lc_votes: dict[int, dict[int, LeadChWitness]] = {}
        self.lcflag = False
        self.proposed_in_view: set[int] = set()
        self.timer_started_for_view: set[int] = set()
        self._timer_id: int | None = None
        self.decided_q: tuple[int, ...] | None = None
        self.completed: DkgCompletedOutput | None = None
        self.started = False
        # Rec protocol state (Definition 4.1 consistency)
        self._rec_started = False
        self._rec = None
        self.reconstructed: DkgReconstructedOutput | None = None
        # DKG-level B log + help budgets (VSS sessions keep their own)
        self._b_log: dict[int, list[Any]] = {i: [] for i in self.vss_config.indices}
        self._help_total = 0
        self._help_from: dict[int, int] = {}
        self._ctx: Context | None = None  # current dispatch context

    # -- sizes --------------------------------------------------------------
    #
    # Stamped sizes are the true wire length of the frame repro.net.wire
    # emits for the message (fixed-width given the deployment group), so
    # the E3/E4 communication measurements meter real serialized bytes.

    def _stamp(self, msg: Any) -> Any:
        from repro.net import wire

        return wire.stamp(msg, self.config.codec, group=self.config.group)

    # -- small helpers --------------------------------------------------------

    def _log_and_send(self, ctx: Context, recipient: int, msg: Any) -> None:
        self._b_log[recipient].append(msg)
        ctx.send(recipient, msg)

    def _log_and_broadcast(self, ctx: Context, msg: Any) -> None:
        for j in self.vss_config.indices:
            self._log_and_send(ctx, j, msg)

    def _leader(self, view: int | None = None) -> int:
        return self.config.leader_of_view(self.view if view is None else view)

    def _is_leader(self) -> bool:
        return self.node_id == self._leader()

    def _current_proof(self) -> Proof | None:
        """The best evidence this node can attach: locked (Q, M) if any,
        else (Q-hat, R-hat) once it holds t + 1 certificates."""
        if self.locked_q is not None and self.locked_proof is not None:
            return self.locked_proof
        if len(self.q_hat) >= self.config.proposal_size:
            certs = tuple(
                self.q_hat[d]
                for d in sorted(self.q_hat)[: self.config.proposal_size]
            )
            return RTypeProof(certs)
        return None

    # -- operator input ----------------------------------------------------------

    def on_operator(self, payload: Any, ctx: Context) -> None:
        if isinstance(payload, DkgStartInput):
            self.start(ctx)
        elif isinstance(payload, DkgReconstructInput):
            self.start_reconstruction(ctx)
        elif isinstance(payload, DkgRecoverInput):
            self._recover(ctx)
        else:
            raise TypeError(f"unexpected operator input {payload!r}")

    def start(self, ctx: Context) -> None:
        """Begin session tau: share our own secret s_d via HybridVSS."""
        if self.started:
            return
        self.started = True
        self.sessions[self.node_id].start_dealing(self.secret, ctx)

    # -- message dispatch -----------------------------------------------------------

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        self._ctx = ctx
        try:
            if isinstance(payload, _VSS_MESSAGE_TYPES):
                session = self.sessions.get(payload.session.dealer)
                if session is not None and payload.session.tau == self.tau:
                    session.handle(sender, payload, ctx)
            elif isinstance(payload, DkgSendMsg):
                self._on_send(sender, payload, ctx)
            elif isinstance(payload, DkgEchoMsg):
                self._on_echo(sender, payload, ctx)
            elif isinstance(payload, DkgReadyMsg):
                self._on_ready(sender, payload, ctx)
            elif isinstance(payload, LeadChMsg):
                self._on_lead_ch(sender, payload, ctx)
            elif isinstance(payload, DkgSharePointMsg):
                self._on_rec_share(sender, payload, ctx)
            elif isinstance(payload, DkgHelpMsg):
                self._on_help(sender, ctx)
            else:
                raise TypeError(f"unexpected DKG message {payload!r}")
        finally:
            self._ctx = None

    # -- VSS completion (Fig. 2: upon (P_d, tau, out, shared, ...)) ----------------

    def _on_vss_shared(self, output: SharedOutput) -> None:
        dealer = output.session.dealer
        ctx = self._ctx  # None only if completions arrive outside messages
        if dealer not in self.q_hat:
            # (q_hat may already hold this dealer's certificate adopted
            # from a lead-ch R-type proof; the local session completing
            # must still drive _try_complete below.)
            digest = commitment_digest(output.commitment)
            self.q_hat[dealer] = ReadyCert(dealer, digest, output.ready_proof)
            # if |b-Q| = t + 1 and Q = empty: propose (leader) or arm timer
            if ctx is not None and (
                len(self.q_hat) >= self.config.proposal_size
                and self.locked_q is None
            ):
                self._maybe_propose_or_arm(ctx)
        if ctx is not None:
            self._try_complete(ctx)

    def _maybe_propose_or_arm(self, ctx: Context) -> None:
        if self.completed is not None:
            return
        if self._is_leader():
            self._propose(ctx)
        else:
            self._arm_timer(ctx)

    def _propose(self, ctx: Context) -> None:
        if self.view in self.proposed_in_view:
            return
        proof = self._current_proof()
        if proof is None:
            return  # will retry when more VSS sessions finish
        self.proposed_in_view.add(self.view)
        election = tuple(self.lc_votes.get(self.view, {}).values())
        msg = self._stamp(DkgSendMsg(self.tau, self.view, proof, election))
        self._log_and_broadcast(ctx, msg)

    def _arm_timer(self, ctx: Context) -> None:
        if self.view in self.timer_started_for_view or self.completed is not None:
            return
        self.timer_started_for_view.add(self.view)
        # delay <- delay(t): the weak-synchrony timeout for this view
        delay = self.config.timeout.timeout(self.view)
        self._timer_id = ctx.set_timer(delay, ("dkg-timeout", self.view))

    def _stop_timer(self, ctx: Context) -> None:
        if self._timer_id is not None:
            ctx.cancel_timer(self._timer_id)
            self._timer_id = None

    # -- Fig. 2: upon (L, tau, send, Q, R/M) from L (first time) --------------------

    def _on_send(self, sender: int, msg: DkgSendMsg, ctx: Context) -> None:
        if self.completed is not None or msg.tau != self.tau:
            return
        if msg.view < self.view:
            return  # stale proposal from a deposed leader
        if sender != self._leader(msg.view):
            return
        if msg.view > self.view:
            # Catch up using the election proof embedded in the send.
            if not verify_election(
                self.vss_config, self.ca, self.tau, msg.view, msg.election
            ):
                return
            self._enter_view(msg.view, ctx)
        q = msg.q_set
        if (self.view, q) in self.sent_echo_for:
            return
        # if verify-signature(Q, R/M) and (Q = empty or Q = Q):
        if not verify_proof(
            self.vss_config, self.ca, self.tau, msg.proof,
            q_size=self.config.proposal_size,
        ):
            return
        if self.locked_q is not None and self.locked_q != q:
            return
        self.sent_echo_for.add((self.view, q))
        signature = self.keystore.sign(dkg_echo_bytes(self.tau, q), self.rng)
        echo = self._stamp(DkgEchoMsg(self.tau, self.view, q, signature))
        self._log_and_broadcast(ctx, echo)

    # -- Fig. 2: upon (L, tau, echo, Q)_sign from P_m (first time) -------------------

    def _on_echo(self, sender: int, msg: DkgEchoMsg, ctx: Context) -> None:
        if self.completed is not None or msg.tau != self.tau:
            return
        q = tuple(sorted(msg.q))
        votes = self.echo_votes.setdefault(q, {})
        if sender in votes:
            return
        if not self.ca.verify(
            sender, dkg_echo_bytes(self.tau, q), msg.signature
        ):
            return
        votes[sender] = SetVote(sender, "echo", msg.signature)
        ready_count = len(self.ready_votes.get(q, {}))
        # if e_Q = ceil((n+t+1)/2) and r_Q < t+1: lock and go ready
        if (
            len(votes) == self.vss_config.echo_threshold
            and ready_count < self.vss_config.ready_threshold
        ):
            self._lock(q, MTypeProof(q, tuple(votes.values())))
            self._send_ready(q, ctx)

    # -- Fig. 2: upon (L, tau, ready, Q)_sign from P_m (first time) ------------------

    def _on_ready(self, sender: int, msg: DkgReadyMsg, ctx: Context) -> None:
        if self.completed is not None or msg.tau != self.tau:
            return
        q = tuple(sorted(msg.q))
        votes = self.ready_votes.setdefault(q, {})
        if sender in votes:
            return
        if not self.ca.verify(
            sender, dkg_ready_bytes(self.tau, q), msg.signature
        ):
            return
        votes[sender] = SetVote(sender, "ready", msg.signature)
        echo_count = len(self.echo_votes.get(q, {}))
        if (
            len(votes) == self.vss_config.ready_threshold
            and echo_count < self.vss_config.echo_threshold
        ):
            # if r_Q = t+1 and e_Q < ceil((n+t+1)/2): lock and amplify
            self._lock(q, MTypeProof(q, tuple(votes.values())))
            self._send_ready(q, ctx)
        elif len(votes) == self.vss_config.output_threshold:
            # else if r_Q = n-t-f: stop timer; decide Q
            self._stop_timer(ctx)
            self.decided_q = q
            self._try_complete(ctx)

    def _lock(self, q: tuple[int, ...], proof: MTypeProof) -> None:
        self.locked_q = q
        self.locked_proof = proof

    def _send_ready(self, q: tuple[int, ...], ctx: Context) -> None:
        if q in self.sent_ready_for:
            return
        self.sent_ready_for.add(q)
        signature = self.keystore.sign(dkg_ready_bytes(self.tau, q), self.rng)
        ready = self._stamp(DkgReadyMsg(self.tau, self.view, q, signature))
        self._log_and_broadcast(ctx, ready)

    # -- completion -------------------------------------------------------------------

    def _try_complete(self, ctx: Context) -> None:
        """wait for shared output-messages for each P_d in Q, then finish."""
        if self.completed is not None or self.decided_q is None:
            return
        outputs = []
        for dealer in self.decided_q:
            session = self.sessions.get(dealer)
            if session is None or session.completed is None:
                return
            outputs.append(session.completed)
        # s_i <- sum s_{i,d};  C_pq <- prod (C_d)_pq
        share = 0
        commitment = None
        for out in outputs:
            share = (share + out.share) % self.config.group.q
            commitment = (
                out.commitment
                if commitment is None
                else commitment.combine(out.commitment)
            )
        assert commitment is not None
        self._stop_timer(ctx)
        self.completed = DkgCompletedOutput(
            tau=self.tau,
            view=self.view,
            q_set=self.decided_q,
            commitment=commitment,
            share=share,
            public_key=commitment.public_key(),
        )
        ctx.output(self.completed)

    # -- Fig. 2/3: timeouts and leader change -------------------------------------------

    def on_timer(self, tag: Any, ctx: Context) -> None:
        if not (isinstance(tag, tuple) and tag and tag[0] == "dkg-timeout"):
            return
        view = tag[1]
        if view != self.view or self.completed is not None or self.lcflag:
            return
        # upon timeout: send signed lead-ch for the next leader with our
        # best evidence (Q, M) or (b-Q, b-R).
        self._send_lead_ch(self.view + 1, ctx)
        self.lcflag = True

    def _send_lead_ch(self, target_view: int, ctx: Context) -> None:
        proof = self._current_proof()
        signature = self.keystore.sign(
            lead_ch_bytes(self.tau, target_view), self.rng
        )
        msg = self._stamp(LeadChMsg(self.tau, target_view, proof, signature))
        self._log_and_broadcast(ctx, msg)
        # Record our own vote so we can count it toward the quorum.
        self.lc_votes.setdefault(target_view, {})[self.node_id] = LeadChWitness(
            self.node_id, target_view, signature
        )
        self._check_lead_ch_quorums(ctx)

    # Fig. 3: upon a msg (tau, lead-ch, L-bar, Q, R/M)_sign from P_j (first time)
    def _on_lead_ch(self, sender: int, msg: LeadChMsg, ctx: Context) -> None:
        if self.completed is not None or msg.tau != self.tau:
            return
        if msg.view <= self.view:
            return  # only lead-ch for leaders beyond the current one count
        votes = self.lc_votes.setdefault(msg.view, {})
        if sender in votes:
            return
        if not self.ca.verify(
            sender, lead_ch_bytes(self.tau, msg.view), msg.signature
        ):
            return
        votes[sender] = LeadChWitness(sender, msg.view, msg.signature)
        # Adopt the carried evidence if it is valid (Fig. 3: if R/M = R
        # then b-Q <- Q, b-R <- R else Q <- Q, M <- M).
        if msg.proof is not None and verify_proof(
            self.vss_config, self.ca, self.tau, msg.proof,
            q_size=self.config.proposal_size,
        ):
            if isinstance(msg.proof, RTypeProof):
                for cert in msg.proof.certs:
                    self.q_hat.setdefault(cert.dealer, cert)
            elif self.locked_q is None:
                self._lock(msg.proof.q_set, msg.proof)
        self._check_lead_ch_quorums(ctx)

    def _check_lead_ch_quorums(self, ctx: Context) -> None:
        pending = {
            v: votes for v, votes in self.lc_votes.items() if v > self.view
        }
        if not pending:
            return
        # if sum lc_L = t+1 and lcflag = false: join the smallest request
        total = len({
            voter for votes in pending.values() for voter in votes
        })
        if total >= self.config.t + 1 and not self.lcflag:
            smallest = min(pending)
            self.lcflag = True
            if self.node_id not in self.lc_votes.get(smallest, {}):
                self._send_lead_ch(smallest, ctx)
        # else if lc_L = n-t-f: accept the new leader
        for view in sorted(pending):
            if len(pending[view]) >= self.vss_config.output_threshold:
                self._enter_view(view, ctx)
                break

    def _enter_view(self, view: int, ctx: Context) -> None:
        if view <= self.view or self.completed is not None:
            return
        self._stop_timer(ctx)
        self.view = view
        self.lcflag = False
        ctx.record_leader_change()
        if self._is_leader():
            # The new leader proposes (Q, M) if locked, else (b-Q, b-R).
            self._propose(ctx)
        else:
            self._arm_timer(ctx)

    # -- Rec protocol (unchanged from HybridVSS, run on the combined share) ----

    def start_reconstruction(self, ctx: Context) -> None:
        """Broadcast our combined share; collect t+1 verified points and
        interpolate the group secret at 0."""
        if self.completed is None:
            raise RuntimeError("cannot reconstruct before DKG completes")
        if self._rec_started:
            return
        self._rec_started = True
        from repro.crypto.shares import PointCollector

        self._rec = PointCollector(
            _share_verifier_for(self.completed.commitment), self.config.t + 1
        )
        msg = self._stamp(DkgSharePointMsg(self.tau, self.completed.share))
        self._log_and_broadcast(ctx, msg)

    def _on_rec_share(
        self, sender: int, msg: DkgSharePointMsg, ctx: Context
    ) -> None:
        if (
            self.reconstructed is not None
            or not self._rec_started
            or msg.tau != self.tau
        ):
            return
        assert self._rec is not None
        # Buffer unverified; one batched check when t+1 points are in.
        if self._rec.seen(sender):
            return
        if self._rec.add(sender, msg.point, rng=self.rng):
            from repro.crypto.shares import reconstruct_raw

            value = reconstruct_raw(
                self._rec.first_points(), self.config.group.q
            )
            self.reconstructed = DkgReconstructedOutput(self.tau, value)
            ctx.output(self.reconstructed)

    # -- recovery --------------------------------------------------------------------------

    def on_recover(self, ctx: Context) -> None:
        self._recover(ctx)

    def _recover(self, ctx: Context) -> None:
        """upon (L, tau, in, recover): help me, then replay my B log."""
        for session in self.sessions.values():
            session.start_recovery(ctx)
        for j in self.vss_config.indices:
            ctx.send(j, DkgHelpMsg(self.tau))
        for recipient, messages in self._b_log.items():
            for msg in messages:
                ctx.send(recipient, msg)

    def _on_help(self, sender: int, ctx: Context) -> None:
        count = self._help_from.get(sender, 0)
        if count >= self.vss_config.help_per_node_budget:
            return
        if self._help_total >= self.vss_config.help_total_budget:
            return
        self._help_from[sender] = count + 1
        self._help_total += 1
        for msg in self._b_log[sender]:
            ctx.send(sender, msg)
