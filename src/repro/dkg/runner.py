"""One-call DKG simulation: build PKI, nodes, adversary — run — collect.

:func:`run_dkg` is the package's flagship entry point (and the
``quickstart`` example's workhorse): it simulates a complete DKG
session in the hybrid model and returns a :class:`DkgResult` exposing
the group public key, per-node shares, the agreed dealer set ``Q``,
and the run's metrics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.shares import Share, reconstruct_secret
from repro.sim.adversary import Adversary
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel, UniformDelay
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.sim.runner import Simulation
from repro.dkg.config import DkgConfig
from repro.dkg.messages import (
    DkgCompletedOutput,
    DkgReconstructInput,
    DkgStartInput,
)
from repro.dkg.node import DkgNode


@dataclass
class DkgResult:
    """Outcome of one simulated DKG session."""

    config: DkgConfig
    nodes: dict[int, DkgNode]
    metrics: Metrics
    simulation: Simulation
    ca: CertificateAuthority

    @property
    def completions(self) -> dict[int, DkgCompletedOutput]:
        return {
            i: node.completed
            for i, node in self.nodes.items()
            if node.completed is not None
        }

    @property
    def completed_nodes(self) -> list[int]:
        return sorted(self.completions)

    @property
    def succeeded(self) -> bool:
        """True iff every honest, finally-up node completed."""
        finally_up = [
            i
            for i in self.nodes
            if i not in self.simulation.crashed
            and not self.simulation.adversary.is_byzantine(i)
        ]
        return all(self.nodes[i].completed is not None for i in finally_up)

    @property
    def public_key(self) -> int:
        keys = {out.public_key for out in self.completions.values()}
        if len(keys) != 1:
            raise AssertionError(f"public key disagreement: {len(keys)} keys")
        return keys.pop()

    @property
    def q_set(self) -> tuple[int, ...]:
        sets = {out.q_set for out in self.completions.values()}
        if len(sets) != 1:
            raise AssertionError("agreement violation: divergent Q sets")
        return sets.pop()

    @property
    def commitment(self) -> FeldmanCommitment:
        commitments = {out.commitment for out in self.completions.values()}
        if len(commitments) != 1:
            raise AssertionError("agreement violation: divergent commitments")
        return commitments.pop()

    @property
    def shares(self) -> dict[int, int]:
        return {i: out.share for i, out in self.completions.items()}

    @property
    def last_completion_time(self) -> float | None:
        """Time when the slowest node output DKG-completed (not to be
        confused with Metrics.last_completion, which tracks the first
        output of any kind — e.g. a VSS shared output)."""
        times = [
            o.time
            for o in self.simulation.outputs
            if getattr(o.payload, "kind", "") == "dkg.out.completed"
        ]
        return max(times) if times else None

    @property
    def protocol_reconstructions(self) -> dict[int, int]:
        """Values output by nodes that ran protocol Rec (if requested)."""
        return {
            i: node.reconstructed.value
            for i, node in self.nodes.items()
            if node.reconstructed is not None
        }

    def reconstruct(self) -> int:
        """Client-side reconstruction of the group secret from shares."""
        commitment = self.commitment
        shares = [
            Share(i, value, commitment) for i, value in self.shares.items()
        ]
        return reconstruct_secret(shares, self.config.t, self.config.group.q)

    def expected_secret(self) -> int:
        """sum of the dealt secrets over the agreed set Q (oracle view)."""
        q = self.config.group.q
        return sum(self.nodes[d].secret for d in self.q_set) % q


def build_dkg_deployment(
    config: DkgConfig,
    seed: int = 0,
    tau: int = 0,
    secrets: dict[int, int] | None = None,
    node_factory: Callable[[int, DkgConfig, KeyStore, CertificateAuthority], Any]
    | None = None,
) -> tuple[CertificateAuthority, dict[int, Any]]:
    """Enroll a PKI and construct one node per member index.

    Shared by the simulator entry point below and the real-socket
    :class:`~repro.net.cluster.LocalCluster` — both execution layers
    drive byte-identical node state machines.  ``node_factory`` may
    return a replacement (Byzantine) node for an index or None for the
    default honest :class:`DkgNode`.
    """
    enroll_rng = random.Random(("dkg-pki", seed).__repr__())
    ca = CertificateAuthority(config.group)
    nodes: dict[int, Any] = {}
    for i in config.vss().indices:
        keystore = KeyStore.enroll(i, ca, enroll_rng)
        node = None
        if node_factory is not None:
            node = node_factory(i, config, keystore, ca)
        if node is None:
            node = DkgNode(
                i,
                config,
                keystore,
                ca,
                tau=tau,
                secret=(secrets or {}).get(i),
            )
        nodes[i] = node
    return ca, nodes


def run_dkg(
    config: DkgConfig,
    seed: int = 0,
    tau: int = 0,
    delay_model: DelayModel | None = None,
    adversary: Adversary | None = None,
    secrets: dict[int, int] | None = None,
    node_factory: Callable[[int, DkgConfig, KeyStore, CertificateAuthority], Any]
    | None = None,
    until: float | None = None,
    max_events: int | None = 2_000_000,
    reconstruct: bool = False,
) -> DkgResult:
    """Simulate one DKG session.

    ``node_factory(i, config, keystore, ca)`` may return a replacement
    (Byzantine) node for index ``i`` or None for the default honest node.
    """
    adversary = adversary or Adversary.passive(config.t, config.f)
    sim = Simulation(
        delay_model=delay_model or UniformDelay(),
        adversary=adversary,
        seed=seed,
    )
    ca, all_nodes = build_dkg_deployment(
        config, seed=seed, tau=tau, secrets=secrets, node_factory=node_factory
    )
    nodes: dict[int, DkgNode] = {}
    for i, node in all_nodes.items():
        sim.add_node(node)
        if isinstance(node, DkgNode):
            nodes[i] = node
    for i in all_nodes:
        sim.inject(i, DkgStartInput(tau), at=0.0)
    sim.run(until=until, max_events=max_events)
    if reconstruct:
        # Run protocol Rec on the combined shares (Definition 4.1's
        # consistency clause) as a second stage of the same simulation.
        for i, node in nodes.items():
            if node.completed is not None and i not in sim.crashed:
                sim.inject(i, DkgReconstructInput(tau), at=sim.queue.now)
        sim.run(until=until, max_events=max_events)
    return DkgResult(config, nodes, sim.metrics, sim, ca)
