"""DKG deployment configuration (§4)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.backend import AbstractGroup
from repro.crypto.groups import toy_group
from repro.crypto.hashing import FullMatrixCodec, HashedMatrixCodec
from repro.sim.clock import TimeoutPolicy
from repro.vss.config import VssConfig


@dataclass(frozen=True)
class DkgConfig:
    """Parameters for one DKG deployment.

    Extends the VSS parameters with the leader schedule: the initial
    leader and the weak-synchrony timeout policy driving the
    pessimistic phase (Fig. 3).  Leaders rotate cyclically —
    ``leader(view) = ((initial_leader - 1 + view) mod n) + 1`` — which
    is the paper's public permutation ``pi``.
    """

    n: int
    t: int
    f: int = 0
    group: AbstractGroup = field(default_factory=toy_group)
    codec: FullMatrixCodec | HashedMatrixCodec = field(
        default_factory=FullMatrixCodec
    )
    d_budget: int = 10
    initial_leader: int = 1
    timeout: TimeoutPolicy = field(
        default_factory=lambda: TimeoutPolicy(initial=30.0, multiplier=2.0)
    )
    enforce_resilience: bool = True
    members: tuple[int, ...] | None = None
    # Number of completed sharings the leader must collect into Q.
    # Defaults to t + 1; reconfiguration protocols (§6) override it to
    # the *previous* threshold + 1, because interpolating the old
    # sharing needs old_t + 1 dealer subsharings.
    q_size: int | None = None

    def __post_init__(self) -> None:
        # Delegate the resilience/membership arithmetic to the validator.
        vss = self.vss()
        if self.initial_leader not in vss.indices:
            raise ValueError("initial leader is not a member")
        if self.q_size is not None and not 1 <= self.q_size <= self.n:
            raise ValueError("q_size out of range")

    def vss(self) -> VssConfig:
        """The VSS-layer view of these parameters."""
        return VssConfig(
            n=self.n,
            t=self.t,
            f=self.f,
            group=self.group,
            codec=self.codec,
            d_budget=self.d_budget,
            enforce_resilience=self.enforce_resilience,
            members=self.members,
        )

    @property
    def proposal_size(self) -> int:
        """|Q|: how many completed sharings a proposal must certify."""
        return self.q_size if self.q_size is not None else self.t + 1

    def leader_of_view(self, view: int) -> int:
        """pi^view applied to the initial leader (cyclic rotation over
        the member list)."""
        members = self.vss().indices
        start = members.index(self.initial_leader)
        return members[(start + view) % len(members)]
