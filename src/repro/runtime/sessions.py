"""Concurrent DKG sessions multiplexed over per-node runtimes.

The paper's serving workloads need *many* DKGs — one per pooled
presignature nonce — and before the session runtime each of those got
its own simulated world (or its own socket set).  Here each member
index hosts exactly one :class:`~repro.runtime.runtime.ProtocolRuntime`
inside one :class:`~repro.sim.runner.Simulation`, and every requested
DKG runs as a session multiplexed over those n endpoints: the layout
the service layer uses for batch presignature refills and the layout
``benchmarks/bench_e16_runtime.py`` measures against the old
one-world-per-protocol arrangement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.envelope import SessionEnvelope
from repro.runtime.runtime import ProtocolRuntime
from repro.sim.network import DelayModel, UniformDelay
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.sim.runner import Simulation
from repro.dkg.config import DkgConfig
from repro.dkg.messages import DkgCompletedOutput, DkgStartInput
from repro.dkg.node import DkgNode

COMPLETED_KIND = "dkg.out.completed"


@dataclass(frozen=True)
class DkgSessionSpec:
    """One DKG instance to multiplex: a session id, its deployment
    parameters (whose ``members`` may be any subset of the cluster) and
    the instance tag ``tau`` (distinct taus keep sharing randomness
    independent across concurrent sessions)."""

    session: str
    config: DkgConfig
    tau: int = 0
    secrets: dict[int, int] | None = None


@dataclass
class DkgSessionResult:
    """Per-session outcome of one multiplexed run."""

    spec: DkgSessionSpec
    completions: dict[int, DkgCompletedOutput] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        members = set(self.spec.config.vss().indices)
        return members <= set(self.completions) and self._agreed()

    def _agreed(self) -> bool:
        return (
            len({out.public_key for out in self.completions.values()}) == 1
            and len({out.q_set for out in self.completions.values()}) == 1
        )

    @property
    def public_key(self) -> Any:
        keys = {out.public_key for out in self.completions.values()}
        if len(keys) != 1:
            raise AssertionError("public key disagreement")
        return keys.pop()

    @property
    def q_set(self) -> tuple[int, ...]:
        sets = {out.q_set for out in self.completions.values()}
        if len(sets) != 1:
            raise AssertionError("divergent Q sets")
        return sets.pop()

    @property
    def commitment(self) -> Any:
        commitments = {out.commitment for out in self.completions.values()}
        if len(commitments) != 1:
            raise AssertionError("divergent commitments")
        return commitments.pop()

    @property
    def shares(self) -> dict[int, int]:
        return {i: out.share for i, out in self.completions.items()}


def run_dkg_sessions(
    specs: list[DkgSessionSpec],
    *,
    seed: int = 0,
    delay_model: DelayModel | None = None,
    until: float | None = None,
    max_events: int | None = 2_000_000,
) -> dict[str, DkgSessionResult]:
    """Run every spec'd DKG concurrently, one runtime per member.

    All sessions interleave over the same simulated endpoints — one
    event queue, one set of node identities — and complete
    independently.  Returns results keyed by session id.
    """
    if len({spec.session for spec in specs}) != len(specs):
        raise ValueError("duplicate session ids")
    if len({spec.config.group for spec in specs}) != 1:
        # The shared PKI is enrolled against one group; mixed backends
        # would fail signature checks far from the cause.
        raise ValueError("all session specs must share one group")
    universe = sorted(
        {i for spec in specs for i in spec.config.vss().indices}
    )
    sim = Simulation(
        delay_model=delay_model or UniformDelay(),
        seed=seed,
    )
    enroll_rng = random.Random(("sessions-pki", seed).__repr__())
    ca = CertificateAuthority(specs[0].config.group)
    keystores = {i: KeyStore.enroll(i, ca, enroll_rng) for i in universe}
    runtimes: dict[int, ProtocolRuntime] = {}
    for i in universe:
        # Completed DKG sessions are evicted as they finish (their
        # outputs survive for the result sweep below) so a large batch
        # holds live machines only for its stragglers.
        runtimes[i] = ProtocolRuntime(i, evict_completed=True)
        sim.add_node(runtimes[i])
    for spec in specs:
        for i in spec.config.vss().indices:
            runtimes[i].open_session(
                spec.session,
                DkgNode(
                    i,
                    spec.config,
                    keystores[i],
                    ca,
                    tau=spec.tau,
                    secret=(spec.secrets or {}).get(i),
                ),
            )
    for spec in specs:
        for i in spec.config.vss().indices:
            sim.inject(
                i,
                SessionEnvelope(spec.session, DkgStartInput(spec.tau)),
                at=0.0,
            )
    sim.run(until=until, max_events=max_events)
    results: dict[str, DkgSessionResult] = {}
    for spec in specs:
        result = DkgSessionResult(spec)
        for i in spec.config.vss().indices:
            for payload in runtimes[i].outputs_of(spec.session):
                if getattr(payload, "kind", None) == COMPLETED_KIND:
                    result.completions[i] = payload
                    break
        results[spec.session] = result
    return results
