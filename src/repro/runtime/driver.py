"""MachineDriver: the one effect interpreter every backend shares.

A driver binds one machine (a protocol state machine or a whole
:class:`~repro.runtime.runtime.ProtocolRuntime`) to one object
satisfying the :class:`repro.net.transport.Transport` protocol, turns
backend happenings into events, steps the machine, and interprets the
returned effects against the backend.  The discrete-event simulator,
the asyncio :class:`~repro.net.host.NodeHost` and the service layer's
embedded forge are all thin shells around this class — protocol
execution semantics live here exactly once.
"""

from __future__ import annotations

import time as _time
from contextlib import nullcontext
from typing import Any

from repro.crypto import parallel
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.core import Env, Machine
from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    Effect,
    LeaderChange,
    Output,
    Send,
    SetTimer,
    SpawnSession,
)
from repro.runtime.events import (
    Crashed,
    Event,
    MessageReceived,
    OperatorInput,
    Recovered,
    TimerFired,
)


class MachineDriver:
    """Drives one machine against one transport endpoint."""

    def __init__(
        self,
        machine: Machine,
        transport: Any,
        node_id: int,
        *,
        trace_sink: Any = None,
        crypto_executor: parallel.CryptoExecutor | None = None,
    ):
        self.machine = machine
        self.transport = transport
        self.node_id = node_id
        # Per-driver sink override; falls back to the process-wide one
        # installed with repro.obs.trace.set_trace_sink.
        self.trace_sink = trace_sink
        # Per-driver crypto executor: installed as the ambient executor
        # for the duration of each step, so the machine's verification
        # work fans out across the pool while the machine itself stays
        # single-threaded and deterministic.  None = the process-wide
        # ambient executor (usually none: serial).
        self.crypto_executor = crypto_executor
        # machine-chosen timer id <-> backend timer id
        self._backend_by_machine: dict[int, int] = {}
        self._machine_by_backend: dict[int, int] = {}

    # -- event entry points ----------------------------------------------------

    def handle_message(self, sender: int, payload: Any) -> list[Effect]:
        return self.dispatch(MessageReceived(sender, payload))

    def handle_timer(self, backend_id: int, tag: Any) -> list[Effect]:
        """A backend timer fired; translate to the machine's own id.

        Every live timer was armed through :meth:`apply`, so the
        translation maps are authoritative: an unknown backend id is a
        stale timer (armed by a driver instance that a crash/recovery
        replaced) and is dropped.  The passthrough that used to forward
        unknown ids to plain machines served the legacy live-``Context``
        adapter, retired along with it.
        """
        machine_id = self._machine_by_backend.pop(backend_id, None)
        if machine_id is None:
            return []
        self._backend_by_machine.pop(machine_id, None)
        return self.dispatch(TimerFired(tag, machine_id))

    def handle_operator(self, payload: Any) -> list[Effect]:
        return self.dispatch(OperatorInput(payload))

    def handle_crash(self) -> list[Effect]:
        return self.dispatch(Crashed())

    def handle_recover(self) -> list[Effect]:
        return self.dispatch(Recovered())

    # -- the step/interpret cycle ----------------------------------------------

    def env(self) -> Env:
        t = self.transport
        return Env(
            now=t.current_time(),
            rng=t.node_rng(self.node_id),
            node_id=self.node_id,
            members=tuple(t.member_ids()),
        )

    def dispatch(self, event: Event) -> list[Effect]:
        # Snapshot the backend clock *before* stepping: replay restores
        # this exact value as env.now, so it must be the time the event
        # was consumed, not whatever applying the effects advanced to.
        clock = self.transport.current_time()
        started = _time.perf_counter()
        scope = (
            parallel.executor_scope(self.crypto_executor)
            if self.crypto_executor is not None
            else nullcontext()
        )
        with scope:
            effects = self.machine.step(event, self.env())
            self.apply(effects)
        duration = _time.perf_counter() - started
        self._observe(event, effects, clock, duration)
        return effects

    def _observe(
        self,
        event: Event,
        effects: list[Effect],
        clock: float,
        duration: float,
    ) -> None:
        """Per-transition metering and tracing (the one cross-driver
        observability seam); both paths no-op when disabled."""
        reg = obs_metrics.registry()
        if reg is not None:
            reg.counter(
                "repro_runtime_events_total",
                "events stepped through MachineDriver by kind",
                event=type(event).__name__,
            ).inc()
            for effect in effects:
                reg.counter(
                    "repro_runtime_effects_total",
                    "effects emitted by machine transitions by kind",
                    effect=type(effect).__name__,
                ).inc()
            reg.histogram(
                "repro_runtime_step_seconds",
                "step + effect-apply duration of one machine transition",
            ).observe(duration)
        sink = self.trace_sink
        if sink is None:
            sink = obs_trace.trace_sink()
        if sink is not None:
            sink.record(
                obs_trace.span_for(
                    self.node_id,
                    event,
                    effects,
                    clock,
                    duration=duration,
                    codec=getattr(sink, "payload_codec", None),
                )
            )

    def apply(self, effects: list[Effect]) -> None:
        t = self.transport
        for effect in effects:
            if isinstance(effect, Send):
                t.enqueue_message(self.node_id, effect.recipient, effect.payload)
            elif isinstance(effect, Broadcast):
                for recipient in t.member_ids():
                    if recipient == self.node_id and not effect.include_self:
                        continue
                    t.enqueue_message(self.node_id, recipient, effect.payload)
            elif isinstance(effect, SetTimer):
                backend_id = t.set_timer(self.node_id, effect.delay, effect.tag)
                self._backend_by_machine[effect.timer_id] = backend_id
                self._machine_by_backend[backend_id] = effect.timer_id
            elif isinstance(effect, CancelTimer):
                backend_id = self._backend_by_machine.pop(effect.timer_id, None)
                if backend_id is not None:
                    self._machine_by_backend.pop(backend_id, None)
                    t.cancel_timer(self.node_id, backend_id)
            elif isinstance(effect, Output):
                t.record_output(self.node_id, effect.payload)
            elif isinstance(effect, LeaderChange):
                t.record_leader_change()
            elif isinstance(effect, SpawnSession):
                raise RuntimeError(
                    "SpawnSession reached a bare driver: only a "
                    "ProtocolRuntime can host sessions"
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown effect {effect!r}")
