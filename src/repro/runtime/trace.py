"""Execution transcripts: canonical digests of a run's outputs.

Because protocols are sans-I/O machines, a run's observable result is
exactly its ``Output`` effects.  :func:`transcript_hash` folds a set of
``(node, output payload)`` records into one hex digest over their
canonical wire encoding — the cross-driver equivalence tests assert
that the discrete-event simulator and the asyncio TCP cluster produce
the *same* digest for the same seeded protocol, on every backend.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable


def transcript_hash(records: Iterable[tuple[int, Any]], group: Any = None) -> str:
    """Order-independent digest of ``(node, output payload)`` records.

    Payloads are serialized through :mod:`repro.net.wire` (canonical,
    value-stable bytes); records are sorted by node then ciphertext so
    arrival order — the one thing real networks do not reproduce — has
    no influence.
    """
    from repro.net import wire

    return transcript_hash_frames(
        (node, wire.encode(payload, group=group)) for node, payload in records
    )


def transcript_hash_frames(records: Iterable[tuple[int, bytes]]) -> str:
    """:func:`transcript_hash` over pre-encoded ``(node, frame)`` pairs.

    The flight recorder captures outputs as canonical wire frames, so
    the recorded digest folds the same bytes in the same order as a
    live run hashing the payload objects — recorded and replayed
    hashes are directly comparable.
    """
    digest = hashlib.sha256()
    for node, frame in sorted(records):
        digest.update(node.to_bytes(4, "big"))
        digest.update(len(frame).to_bytes(4, "big"))
        digest.update(frame)
    return digest.hexdigest()
