"""Execution transcripts: canonical digests of a run's outputs.

Because protocols are sans-I/O machines, a run's observable result is
exactly its ``Output`` effects.  :func:`transcript_hash` folds a set of
``(node, output payload)`` records into one hex digest over their
canonical wire encoding — the cross-driver equivalence tests assert
that the discrete-event simulator and the asyncio TCP cluster produce
the *same* digest for the same seeded protocol, on every backend.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable


def transcript_hash(records: Iterable[tuple[int, Any]], group: Any = None) -> str:
    """Order-independent digest of ``(node, output payload)`` records.

    Payloads are serialized through :mod:`repro.net.wire` (canonical,
    value-stable bytes); records are sorted by node then ciphertext so
    arrival order — the one thing real networks do not reproduce — has
    no influence.
    """
    from repro.net import wire

    encoded = sorted(
        (node, wire.encode(payload, group=group)) for node, payload in records
    )
    digest = hashlib.sha256()
    for node, frame in encoded:
        digest.update(node.to_bytes(4, "big"))
        digest.update(len(frame).to_bytes(4, "big"))
        digest.update(frame)
    return digest.hexdigest()
