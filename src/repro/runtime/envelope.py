"""The session envelope: how multiplexed traffic travels on the wire.

Every message of a runtime-hosted session crosses the network wrapped
in a :class:`SessionEnvelope` carrying the session id, so one
transport endpoint can interleave any number of concurrent protocol
instances (the v4 wire frame; see :mod:`repro.net.wire`).  Frames
without an envelope route to the runtime's *default* session, which is
what keeps single-protocol peers from older deployments interoperable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# Must match repro.net.wire.HEADER_BYTES (kept in sync by an assert in
# that module); duplicated literally to keep this module import-light.
_FRAME_OVERHEAD = 8


class SessionTimerTag(tuple):
    """A runtime-namespaced timer tag: ``(session, inner tag)``.

    :class:`~repro.runtime.runtime.ProtocolRuntime` lifts every
    session timer into its own namespace by wrapping the machine's tag
    in this marker type.  It *is* a plain 2-tuple (so machine code and
    existing tests comparing against ``(session, tag)`` keep working),
    but it is distinguishable from a machine's own tuple-shaped tag —
    e.g. the DKG's ``("dkg-timeout", view)`` — which observability and
    replay must not mistake for session namespacing.
    """

    __slots__ = ()

    def __new__(cls, session: str, tag: Any) -> "SessionTimerTag":
        return super().__new__(cls, (session, tag))

    @property
    def session(self) -> str:
        return self[0]

    @property
    def tag(self) -> Any:
        return self[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"SessionTimerTag({self[0]!r}, {self[1]!r})"


@dataclass(frozen=True)
class SessionEnvelope:
    """``payload`` addressed to protocol session ``session``."""

    session: str
    payload: Any

    kind = "runtime.envelope"

    def byte_size(self) -> int:
        """Envelope frame length: outer header + length-prefixed
        session id + the complete inner frame."""
        sid = len(self.session.encode())
        prefix = 1 if sid < 0x80 else 2
        return _FRAME_OVERHEAD + prefix + sid + self.payload.byte_size()
