"""Events: the inputs a protocol machine is stepped with.

The paper drives nodes with three message categories — operator
messages, network messages and timer messages — plus the hybrid
model's crash/recover transitions (§2.2).  One event type per
category; every event is an immutable value, so an execution is fully
described by the sequence of events each machine consumed (and can be
replayed from it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class MessageReceived:
    """A network message from ``sender`` arrived."""

    sender: int
    payload: Any


@dataclass(frozen=True)
class TimerFired:
    """A timer this machine armed (``SetTimer``) expired.

    ``timer_id`` is the machine-chosen id from the ``SetTimer`` effect;
    drivers echo it back so the machine can correlate without keeping
    driver state.
    """

    tag: Any
    timer_id: int


@dataclass(frozen=True)
class OperatorInput:
    """An operator ``in`` message (§7): external input to the machine."""

    payload: Any


@dataclass(frozen=True)
class Crashed:
    """The adversary crashed this node (state freezes, links drop)."""


@dataclass(frozen=True)
class Recovered:
    """The node came back up with its stable-storage state (§2.2)."""


Event = Union[MessageReceived, TimerFired, OperatorInput, Crashed, Recovered]
