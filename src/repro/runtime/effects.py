"""Effects: the outputs of one protocol-machine transition.

A machine never sends, schedules or records anything itself — it
*returns* effect values and the driver interprets them against a real
backend (discrete-event queue, asyncio sockets, the service loop).
Effects are plain values so a transition's complete observable
behaviour is its return value: replayable, diffable, assertable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class Send:
    """Send ``payload`` to ``recipient`` over the network."""

    recipient: int
    payload: Any


@dataclass(frozen=True)
class Broadcast:
    """Send ``payload`` to every member (n point-to-point messages —
    the paper has no broadcast channel; drivers expand the loop)."""

    payload: Any
    include_self: bool = True


@dataclass(frozen=True)
class SetTimer:
    """Arm a timer for ``delay`` protocol-time units.

    ``timer_id`` is chosen by the machine (unique within it) and echoed
    back in the eventual :class:`~repro.runtime.events.TimerFired`;
    :class:`CancelTimer` refers to it.
    """

    delay: float
    tag: Any
    timer_id: int


@dataclass(frozen=True)
class CancelTimer:
    """Disarm a previously set timer (by machine-chosen id)."""

    timer_id: int


@dataclass(frozen=True)
class Output:
    """Emit an operator ``out`` message (a protocol result)."""

    payload: Any


@dataclass(frozen=True)
class LeaderChange:
    """Meter one DKG leader change (Fig. 3 instrumentation)."""


@dataclass(frozen=True)
class SpawnSession:
    """Ask the enclosing :class:`~repro.runtime.runtime.ProtocolRuntime`
    to open a new session ``session`` running ``machine``.  Only
    meaningful under a runtime; bare drivers reject it."""

    session: str
    machine: Any


Effect = Union[
    Send, Broadcast, SetTimer, CancelTimer, Output, LeaderChange, SpawnSession
]
