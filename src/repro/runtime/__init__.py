"""The sans-I/O protocol core and the session-multiplexing runtime.

The paper's system model is a long-lived node that runs *many*
protocol instances over one asynchronous network identity: VSS
sessions, DKGs, proactive share renewals at phase boundaries, and
group-modification agreements.  This package is the execution core
that makes that literal:

* **Events and effects** (:mod:`repro.runtime.events`,
  :mod:`repro.runtime.effects`) — protocols are pure state machines
  with the uniform interface ``step(event, env) -> list[Effect]``.
  Events are values (``MessageReceived``/``TimerFired``/
  ``OperatorInput``/``Crashed``/``Recovered``); effects are values
  (``Send``/``Broadcast``/``SetTimer``/``CancelTimer``/``Output``/
  ``SpawnSession``...).  Nothing inside a transition touches a socket,
  a clock or a queue, which is what makes executions deterministically
  replayable and machines testable event-by-event.

* **ProtocolRuntime** (:mod:`repro.runtime.runtime`) — a composite
  machine multiplexing any number of concurrent protocol sessions
  (keyed by the session id carried in the
  :class:`~repro.runtime.envelope.SessionEnvelope` wire frame) over a
  single transport endpoint.  Concurrent DKGs share one endpoint
  instead of one socket set each.

* **MachineDriver** (:mod:`repro.runtime.driver`) — the one effect
  interpreter all execution backends share.  The discrete-event
  simulator (:class:`repro.sim.runner.Simulation`), the asyncio host
  (:class:`repro.net.host.NodeHost`) and the service layer's embedded
  forge are thin drivers built on it.
"""

from repro.runtime.core import Env, Machine
from repro.runtime.driver import MachineDriver
from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    Effect,
    LeaderChange,
    Output,
    Send,
    SetTimer,
    SpawnSession,
)
from repro.runtime.envelope import SessionEnvelope
from repro.runtime.events import (
    Crashed,
    Event,
    MessageReceived,
    OperatorInput,
    Recovered,
    TimerFired,
)
from repro.runtime.runtime import ProtocolRuntime

__all__ = [
    "Broadcast",
    "CancelTimer",
    "Crashed",
    "Effect",
    "Env",
    "Event",
    "LeaderChange",
    "Machine",
    "MachineDriver",
    "MessageReceived",
    "OperatorInput",
    "Output",
    "ProtocolRuntime",
    "Recovered",
    "Send",
    "SessionEnvelope",
    "SetTimer",
    "SpawnSession",
    "TimerFired",
]
