"""ProtocolRuntime: many concurrent protocol sessions, one endpoint.

A runtime is itself a :class:`~repro.runtime.core.Machine` — a
composite one.  It owns a set of named sessions, each a protocol
machine (a VSS sharing, a DKG, a renewal phase, a group-modification
agreement...), and

* routes inbound :class:`~repro.runtime.envelope.SessionEnvelope`
  traffic to the addressed session (enveloped operator inputs too);
* wraps each session's outbound ``Send``/``Broadcast`` in an envelope
  carrying its session id;
* namespaces session timers into its own timer-id space so any number
  of sessions can arm timers against the one underlying endpoint;
* fans ``Crashed``/``Recovered`` out to every session (one node
  identity crashes as a whole);
* honours ``SpawnSession`` effects, letting a running machine open a
  sibling session without driver involvement.

Because the runtime is just a machine, the same instance runs
unchanged under the discrete-event simulator, the asyncio TCP host, or
any future driver — that is the whole point.
"""

from __future__ import annotations

from typing import Any

from repro.obs import metrics as obs_metrics
from repro.runtime.core import Env, Machine
from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    Effect,
    Output,
    Send,
    SetTimer,
    SpawnSession,
)
from repro.runtime.envelope import SessionEnvelope, SessionTimerTag
from repro.runtime.events import (
    Crashed,
    Event,
    MessageReceived,
    OperatorInput,
    Recovered,
    TimerFired,
)


class UnknownSession(KeyError):
    """An operation referenced a session id this runtime has not opened."""


class ProtocolRuntime:
    """Multiplexes protocol sessions over one transport endpoint."""

    def __init__(
        self,
        node_id: int,
        *,
        strict: bool = False,
        evict_completed: bool = False,
    ):
        self.node_id = node_id
        self.strict = strict  # raise on unroutable traffic (tests)
        # Evict a session's machine (and timers) once it reports a
        # non-None ``completed`` attribute, keeping only its recorded
        # outputs — bounds live state on long-lived endpoints that open
        # sessions forever (proactive phases, presignature forging).
        self.evict_completed = evict_completed
        self.sessions: dict[str, Machine] = {}
        self.default_session: str | None = None
        self.session_outputs: dict[str, list[Any]] = {}
        self.dropped = 0  # unroutable frames (unknown/closed session)
        self.sessions_completed = 0  # evicted-after-completion count
        self._next_timer_id = 1
        # runtime timer id -> (session, machine timer id, machine tag)
        self._timers: dict[int, tuple[str, int, Any]] = {}
        self._by_inner: dict[tuple[str, int], int] = {}

    # -- session management ----------------------------------------------------

    def open_session(
        self, session: str, machine: Machine, *, default: bool = False
    ) -> Machine:
        """Register ``machine`` under id ``session``.

        The first session opened becomes the default route for
        un-enveloped traffic (legacy single-protocol peers); pass
        ``default=True`` to move that role explicitly.
        """
        if session in self.sessions:
            raise ValueError(f"session {session!r} already open")
        self.sessions[session] = machine
        self.session_outputs.setdefault(session, [])
        if default or self.default_session is None:
            self.default_session = session
        self._publish_active()
        return machine

    def close_session(self, session: str) -> None:
        """Forget a finished session.

        Its pending timer mappings and recorded outputs are purged too
        — otherwise a later session reopened under the same id could
        receive the dead instance's timer fires, have its own cancels
        resolve to stale runtime timer ids, or hand waiters the dead
        instance's outputs."""
        self.sessions.pop(session, None)
        self.session_outputs.pop(session, None)
        stale = [
            timer_id
            for timer_id, (sid, _inner, _tag) in self._timers.items()
            if sid == session
        ]
        for timer_id in stale:
            _sid, inner_id, _tag = self._timers.pop(timer_id)
            self._by_inner.pop((session, inner_id), None)
        if self.default_session == session:
            self.default_session = next(iter(self.sessions), None)
        self._publish_active()

    def _evict_session(self, session: str) -> None:
        """Drop a *completed* session's machine and timer state.

        Unlike :meth:`close_session` the recorded outputs are kept —
        completion is detected mid-run, and waiters (``outputs_of``,
        ``NodeHost.wait_for_output``) read results after the fact.
        """
        self.sessions.pop(session, None)
        stale = [
            timer_id
            for timer_id, (sid, _inner, _tag) in self._timers.items()
            if sid == session
        ]
        for timer_id in stale:
            _sid, inner_id, _tag = self._timers.pop(timer_id)
            self._by_inner.pop((session, inner_id), None)
        if self.default_session == session:
            self.default_session = next(iter(self.sessions), None)
        self.sessions_completed += 1
        obs_metrics.counter_inc(
            "repro_runtime_sessions_completed_total",
            help="sessions evicted after reporting completion",
        )
        self._publish_active()

    def _publish_active(self) -> None:
        obs_metrics.gauge_set(
            "repro_runtime_sessions_active",
            len(self.sessions),
            help="live protocol sessions multiplexed on this endpoint",
            node=self.node_id,
        )

    def outputs_of(self, session: str) -> list[Any]:
        return list(self.session_outputs.get(session, []))

    # -- the machine interface -------------------------------------------------

    def step(self, event: Event, env: Env) -> list[Effect]:
        if isinstance(event, MessageReceived):
            session, inner = self._route(event.payload)
            if session is None:
                return []
            return self._step_session(
                session, MessageReceived(event.sender, inner), env
            )
        if isinstance(event, OperatorInput):
            session, inner = self._route(event.payload)
            if session is None:
                return []
            return self._step_session(session, OperatorInput(inner), env)
        if isinstance(event, TimerFired):
            entry = self._timers.pop(event.timer_id, None)
            if entry is None:
                return []  # cancelled or stale
            session, inner_id, inner_tag = entry
            self._by_inner.pop((session, inner_id), None)
            if session not in self.sessions:
                return []
            return self._step_session(
                session, TimerFired(inner_tag, inner_id), env
            )
        if isinstance(event, (Crashed, Recovered)):
            effects: list[Effect] = []
            for session in sorted(self.sessions):
                effects.extend(self._step_session(session, event, env))
            return effects
        raise TypeError(f"unknown event {event!r}")

    # -- internals -------------------------------------------------------------

    def _route(self, payload: Any) -> tuple[str | None, Any]:
        """Resolve (session id, inner payload) for an inbound payload."""
        if isinstance(payload, SessionEnvelope):
            if payload.session in self.sessions:
                return payload.session, payload.payload
            if self.strict:
                raise UnknownSession(payload.session)
            self.dropped += 1
            return None, None
        if self.default_session is not None:
            return self.default_session, payload
        if self.strict:
            raise UnknownSession("<default>")
        self.dropped += 1
        return None, None

    def _step_session(
        self, session: str, event: Event, env: Env
    ) -> list[Effect]:
        machine = self.sessions[session]
        effects = self._translate(session, machine.step(event, env))
        if (
            self.evict_completed
            and session in self.sessions
            and getattr(machine, "completed", None) is not None
        ):
            self._evict_session(session)
        return effects

    def _translate(
        self, session: str, effects: list[Effect]
    ) -> list[Effect]:
        """Lift a session's effects into the runtime's namespace."""
        out: list[Effect] = []
        for effect in effects:
            if isinstance(effect, Send):
                out.append(
                    Send(
                        effect.recipient,
                        SessionEnvelope(session, effect.payload),
                    )
                )
            elif isinstance(effect, Broadcast):
                out.append(
                    Broadcast(
                        SessionEnvelope(session, effect.payload),
                        effect.include_self,
                    )
                )
            elif isinstance(effect, SetTimer):
                timer_id = self._next_timer_id
                self._next_timer_id += 1
                self._timers[timer_id] = (session, effect.timer_id, effect.tag)
                self._by_inner[(session, effect.timer_id)] = timer_id
                out.append(
                    SetTimer(
                        effect.delay,
                        SessionTimerTag(session, effect.tag),
                        timer_id,
                    )
                )
            elif isinstance(effect, CancelTimer):
                timer_id = self._by_inner.pop((session, effect.timer_id), None)
                if timer_id is not None:
                    self._timers.pop(timer_id, None)
                    out.append(CancelTimer(timer_id))
            elif isinstance(effect, Output):
                self.session_outputs.setdefault(session, []).append(
                    effect.payload
                )
                out.append(effect)
            elif isinstance(effect, SpawnSession):
                self.open_session(effect.session, effect.machine)
            else:  # LeaderChange and future pass-throughs
                out.append(effect)
        return out
