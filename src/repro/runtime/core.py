"""The machine interface and the effect-recording transition context.

``step(event, env) -> list[Effect]`` is the whole execution contract:
``env`` carries the only ambient inputs a transition may read (clock
reading, seeded randomness, identity, membership), the return value
carries everything it did.  :class:`EffectRecorder` presents the
protocol clause code's context surface
(``send``/``set_timer``/``output``...) but *records* effect values
instead of performing anything — it is how the ``upon``-clause methods
become pure transition functions.  Protocol modules refer to it by the
historical alias ``repro.sim.node.Context``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Protocol, runtime_checkable

from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    Effect,
    LeaderChange,
    Output,
    Send,
    SetTimer,
    SpawnSession,
)
from repro.runtime.events import Event


@dataclass(frozen=True)
class Env:
    """The pure environment one transition may read.

    ``now`` is the driver's clock in protocol time units; ``rng`` the
    deterministic per-node randomness source (identical seeding across
    drivers is what makes cross-driver executions reproducible);
    ``members`` the sorted deployment membership.
    """

    now: float
    rng: random.Random
    node_id: int
    members: tuple[int, ...]


@runtime_checkable
class Machine(Protocol):
    """A pure protocol state machine: the uniform execution interface."""

    def step(self, event: Event, env: Env) -> List[Effect]:
        """Consume one event, mutate internal state, return effects."""
        ...


class EffectRecorder:
    """The recording transition context: clause surface, no I/O.

    Timer ids are allocated from the machine's own counter (passed in
    as ``next_timer_id`` and read back after the transition), so ids
    are stable across drivers and replays.
    """

    __slots__ = ("_env", "effects", "next_timer_id")

    def __init__(self, env: Env, next_timer_id: int = 1):
        self._env = env
        self.effects: list[Effect] = []
        self.next_timer_id = next_timer_id

    # -- environment -----------------------------------------------------------

    @property
    def node_id(self) -> int:
        return self._env.node_id

    @property
    def now(self) -> float:
        return self._env.now

    @property
    def rng(self) -> random.Random:
        return self._env.rng

    @property
    def n(self) -> int:
        return len(self._env.members)

    @property
    def all_nodes(self) -> list[int]:
        return list(self._env.members)

    # -- effects ---------------------------------------------------------------

    def send(self, recipient: int, payload: Any) -> None:
        self.effects.append(Send(recipient, payload))

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        self.effects.append(Broadcast(payload, include_self))

    def set_timer(self, delay: float, tag: Any) -> int:
        timer_id = self.next_timer_id
        self.next_timer_id += 1
        self.effects.append(SetTimer(delay, tag, timer_id))
        return timer_id

    def cancel_timer(self, timer_id: int) -> None:
        self.effects.append(CancelTimer(timer_id))

    def output(self, payload: Any) -> None:
        self.effects.append(Output(payload))

    def record_leader_change(self) -> None:
        self.effects.append(LeaderChange())

    def spawn_session(self, session: str, machine: Any) -> None:
        self.effects.append(SpawnSession(session, machine))
