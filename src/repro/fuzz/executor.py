"""Re-execution of mutated schedules, with failure downgraded to data.

:class:`FuzzWorld` is :class:`~repro.obs.replay.ReplayWorld` with the
error model a fuzzer needs: a frame that no longer decodes after
payload mutation is an *observation* (the network dropped a garbled
frame), and a machine that raises on adversarial input is an
*invariant violation* (sans-I/O machines must never blow up on any
event stream), not a replay crash.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.fuzz.mutators import ApplyReport
from repro.fuzz.schedule import Schedule
from repro.obs.replay import FrameDecodeError, ReplayError, ReplayWorld


@dataclass
class ExecutionResult:
    """Everything the invariant checker needs from one mutated run."""

    # (node, session) -> output payloads, in emission order
    outputs: dict[tuple[int, str], list[Any]] = field(default_factory=dict)
    spans: int = 0
    undecodable: int = 0
    step_errors: list[str] = field(default_factory=list)
    chain_errors: list[str] = field(default_factory=list)

    def sessions(self) -> set[str]:
        return {session for _node, session in self.outputs}

    def by_kind(self, session: str, kind: str) -> dict[int, list[Any]]:
        found: dict[int, list[Any]] = {}
        for (node, sess), payloads in self.outputs.items():
            if sess != session:
                continue
            matching = [
                p for p in payloads if getattr(p, "kind", None) == kind
            ]
            if matching:
                found[node] = matching
        return found


class FuzzWorld(ReplayWorld):
    """A replay world that survives adversarial schedules."""

    def __init__(self, capture: Any):
        super().__init__(capture)
        self.undecodable = 0
        self.step_errors: list[str] = []
        self.chain_errors: list[str] = []

    def safe_open(self, record: dict[str, Any]) -> None:
        try:
            self.open_session(record)
        except ReplayError as exc:
            # Session chaining failed — mutations starved the
            # predecessor session of every output.  Frames for the
            # unopened session fall to the runtime's non-strict drop
            # path; liveness accounting decides whether that matters.
            self.chain_errors.append(str(exc))

    def safe_dispatch(self, record: dict[str, Any]) -> bool:
        try:
            self.dispatch_span(record)
            return True
        except FrameDecodeError:
            self.undecodable += 1
            return False
        except ReplayError:
            raise  # structural: bad capture, not an adversarial effect
        except Exception as exc:
            self.step_errors.append(
                f"node {record.get('node')} {record.get('event')}: "
                f"{type(exc).__name__}: {exc}"
            )
            return False


def execute_schedule(schedule: Schedule) -> ExecutionResult:
    """Replay a (mutated) schedule; never raises on adversarial input."""
    world = FuzzWorld(schedule.to_capture())
    spans = 0
    for record in schedule.records:
        if record.get("record") == "open":
            world.safe_open(record)
        elif "event" in record:
            world.safe_dispatch(record)
            spans += 1
    outputs: dict[tuple[int, str], list[Any]] = {}
    if world.runtimes:
        for node, runtime in world.runtimes.items():
            for session, payloads in runtime.session_outputs.items():
                outputs[(node, session)] = list(payloads)
    else:
        # Sim worlds have no session multiplexing; everything is the
        # one recorded session.
        for node, payload in world.outputs:
            outputs.setdefault((node, "dkg"), []).append(payload)
    return ExecutionResult(
        outputs=outputs,
        spans=spans,
        undecodable=world.undecodable,
        step_errors=world.step_errors,
        chain_errors=world.chain_errors,
    )


def apply_post_ops(
    execution: ExecutionResult, report: ApplyReport, group: Any
) -> None:
    """Apply post-execution ops (the planted-bug seam) to the outputs.

    ``corrupt-output`` bumps one completer's share by 1 mod q — the
    canonical "a node holds a share that does not match the agreed
    commitment" fault the share-consistency invariant exists to catch.
    """
    terminal = ("dkg.out.completed", "proactive.out.renewed", "groupmod.out.joined")
    for op in report.post_ops:
        if op["op"] != "corrupt-output":
            raise ValueError(f"unknown post-execution op {op['op']!r}")
        node = op["node"]
        # Prefer the session-terminal share (the one downstream
        # protocols would actually use); fall back to any share.
        candidates: list[tuple[list[Any], int]] = []
        for (out_node, _session), payloads in sorted(execution.outputs.items()):
            if out_node != node:
                continue
            for index, payload in enumerate(payloads):
                if isinstance(getattr(payload, "share", None), int):
                    candidates.append((payloads, index))
        terminal_first = sorted(
            candidates,
            key=lambda c: getattr(c[0][c[1]], "kind", None) not in terminal,
        )
        if terminal_first:
            payloads, index = terminal_first[0]
            payload = payloads[index]
            payloads[index] = dataclasses.replace(
                payload, share=(payload.share + 1) % group.q
            )
