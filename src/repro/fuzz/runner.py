"""The fuzzing loop: plan, execute, check, shrink, reproduce.

Determinism contract: one run is identified by ``(base capture,
seed)``.  The per-seed RNG is ``random.Random(("repro-fuzz",
base_digest, seed).__repr__())`` where ``base_digest`` is the SHA-256
of the base schedule's canonical serialization — so a CI failure line
``seed=1723`` reproduces exactly on any machine that can regenerate
the base capture (same protocol, params, seed, group backend).

Shrinking is greedy op-removal to a fixpoint: drop one op, re-execute,
keep the smaller plan whenever the violation *kinds* still intersect
the original ones.  Each candidate is a full deterministic re-run, so
the minimized plan provably still fails — the property tests assert
exactly that, and every reproducer records the shrunk plan next to the
base schedule it applies to.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.fuzz.executor import apply_post_ops, execute_schedule
from repro.fuzz.invariants import Violation, check_invariants
from repro.fuzz.mutators import MutationBudget, ScheduleMutator, apply_plan
from repro.fuzz.schedule import Schedule
from repro.obs import metrics as obs_metrics
from repro.obs.replay import resolve_group_name

_SHRINK_EXECUTION_CAP = 200


@dataclass
class SeedResult:
    seed: int
    planned: int
    applied: int
    violations: list[Violation]
    shrunk_plan: list[dict[str, Any]] | None = None
    reproducer: str | None = None

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "planned": self.planned,
            "applied": self.applied,
            "violations": [v.as_dict() for v in self.violations],
            "shrunk_ops": (
                len(self.shrunk_plan) if self.shrunk_plan is not None else None
            ),
            "reproducer": self.reproducer,
        }


@dataclass
class FuzzReport:
    protocol: str
    group: str
    config: dict[str, Any]
    base_digest: str
    seeds: int = 0
    mutations: int = 0
    executions: int = 0
    failures: list[SeedResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    self_check: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        passed_self_check = (
            self.self_check is None or self.self_check.get("ok", False)
        )
        return not self.failures and passed_self_check

    def as_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "group": self.group,
            "config": self.config,
            "base_digest": self.base_digest,
            "seeds": self.seeds,
            "mutations": self.mutations,
            "executions": self.executions,
            "violations": sum(len(r.violations) for r in self.failures),
            "failures": [r.as_dict() for r in self.failures],
            "schedules_per_second": (
                round(self.executions / self.wall_seconds, 2)
                if self.wall_seconds > 0
                else None
            ),
            "wall_seconds": round(self.wall_seconds, 3),
            "self_check": self.self_check,
            "ok": self.ok,
        }


class FuzzRunner:
    """Drives seeded mutation campaigns against one base schedule."""

    def __init__(
        self,
        schedule: Schedule,
        *,
        protocol: str | None = None,
        max_ops: int = 8,
        budget: MutationBudget | None = None,
        reproducer_dir: Any = None,
    ):
        self.base = schedule
        self.meta = schedule.meta
        self.protocol = protocol or self.meta.get("cmd", "dkg")
        self.group = resolve_group_name(self.meta["group"])
        self.max_ops = max_ops
        self.budget = budget
        self.reproducer_dir = reproducer_dir
        self.base_digest = schedule.digest()
        self.mutator = ScheduleMutator(schedule, budget)
        self.executions = 0

    # -- single deterministic execution ----------------------------------------

    def seed_rng(self, seed: int) -> random.Random:
        return random.Random(("repro-fuzz", self.base_digest, seed).__repr__())

    def plan_for_seed(self, seed: int) -> list[dict[str, Any]]:
        return self.mutator.plan(self.seed_rng(seed), self.max_ops)

    def execute_plan(
        self, plan: list[dict[str, Any]]
    ) -> tuple[list[Violation], Any]:
        mutated, report = apply_plan(self.base, plan, self.budget)
        execution = execute_schedule(mutated)
        apply_post_ops(execution, report, self.group)
        self.executions += 1
        violations = check_invariants(self.meta, self.group, execution, report)
        return violations, report

    def run_seed(self, seed: int) -> SeedResult:
        plan = self.plan_for_seed(seed)
        violations, report = self.execute_plan(plan)
        for op in report.applied:
            obs_metrics.counter_inc(
                "repro_fuzz_mutations_total",
                help="Mutation operators applied to fuzzed schedules",
                op=op["op"],
            )
        result = SeedResult(
            seed=seed,
            planned=len(plan),
            applied=len(report.applied),
            violations=violations,
        )
        if violations:
            for violation in violations:
                obs_metrics.counter_inc(
                    "repro_fuzz_violations_total",
                    help="Invariant violations found by the schedule fuzzer",
                    kind=violation.kind,
                )
            result.shrunk_plan = self.shrink(plan, violations)
            result.reproducer = self.emit_reproducer(
                seed, result.shrunk_plan, violations
            )
        return result

    # -- shrinking --------------------------------------------------------------

    def shrink(
        self,
        plan: list[dict[str, Any]],
        violations: list[Violation],
        max_executions: int = _SHRINK_EXECUTION_CAP,
    ) -> list[dict[str, Any]]:
        """Greedy one-op removal to a fixpoint; the result still fails."""
        target_kinds = {v.kind for v in violations}
        current = list(plan)
        spent = 0
        shrinking = True
        while shrinking and spent < max_executions:
            shrinking = False
            for index in range(len(current)):
                candidate = current[:index] + current[index + 1 :]
                candidate_violations, _report = self.execute_plan(candidate)
                spent += 1
                obs_metrics.counter_inc(
                    "repro_fuzz_shrink_executions_total",
                    help="Schedule re-executions spent shrinking failures",
                )
                if target_kinds & {v.kind for v in candidate_violations}:
                    current = candidate
                    shrinking = True
                    break
                if spent >= max_executions:
                    break
        return current

    # -- reproducers -------------------------------------------------------------

    def emit_reproducer(
        self,
        seed: int,
        plan: list[dict[str, Any]],
        violations: list[Violation],
    ) -> str | None:
        """Write base schedule + shrunk plan as one replayable capture.

        The records are the *unmutated* base (so ``repro replay`` on
        the file verifies the pristine transcript), and the meta's
        ``fuzz`` block carries the plan — ``repro fuzz --reproduce``
        re-applies it deterministically and compares verdicts.
        """
        if self.reproducer_dir is None:
            return None
        import pathlib

        directory = pathlib.Path(self.reproducer_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"repro-{self.protocol}-seed{seed}.jsonl"
        meta = {
            "record": "meta",
            **{k: v for k, v in self.meta.items() if k != "record"},
            "fuzz": {
                "seed": seed,
                "base_digest": self.base_digest,
                "plan": plan,
                "violations": [v.as_dict() for v in violations],
            },
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(meta, sort_keys=True) + "\n")
            for record in self.base.records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.write(
                json.dumps(
                    {
                        "record": "end",
                        "transcript_hash": self.base.recorded_hash,
                        "spans": len(self.base.spans),
                    }
                )
                + "\n"
            )
        return str(path)

    def reproduce(self, schedule: Schedule) -> dict[str, Any]:
        """Re-run a reproducer's plan; verdicts must match its record."""
        fuzz = schedule.meta.get("fuzz")
        if not fuzz:
            raise ValueError("capture has no fuzz block — not a reproducer")
        violations, _report = self.execute_plan(fuzz["plan"])
        expected = {v["kind"] for v in fuzz.get("violations", [])}
        found = {v.kind for v in violations}
        return {
            "seed": fuzz.get("seed"),
            "expected_kinds": sorted(expected),
            "found_kinds": sorted(found),
            "matched": bool(expected & found) if expected else not found,
            "violations": [v.as_dict() for v in violations],
        }

    # -- the campaign ------------------------------------------------------------

    def run(
        self, seeds: int, *, first_seed: int = 0, self_check: bool = True
    ) -> FuzzReport:
        report = FuzzReport(
            protocol=self.protocol,
            group=self.meta.get("group", "?"),
            config=dict(self.meta.get("config") or {}),
            base_digest=self.base_digest,
        )
        started = time.monotonic()
        for seed in range(first_seed, first_seed + seeds):
            result = self.run_seed(seed)
            obs_metrics.counter_inc(
                "repro_fuzz_seeds_total",
                help="Fuzz seeds executed",
                protocol=self.protocol,
            )
            report.seeds += 1
            report.mutations += result.applied
            if result.failed:
                report.failures.append(result)
        if self_check:
            report.self_check = self.run_self_check()
        report.executions = self.executions
        report.wall_seconds = time.monotonic() - started
        return report

    # -- planted-bug self-check ---------------------------------------------------

    def run_self_check(self) -> dict[str, Any]:
        """Verify the verifier: plant a fault, demand it is caught,
        shrunk to the single faulty op, and reproducible.

        The plant is a post-execution ``corrupt-output`` (tamper one
        completer's share), padded with benign reorder noise; a healthy
        pipeline (a) reports a share-consistency violation, (b) shrinks
        the plan back to just the corruption, and (c) emits a
        reproducer whose re-run reaches the same verdict.
        """
        node = min(
            (r["node"] for r in self.base.spans), default=None
        )
        if node is None:
            return {"ok": False, "reason": "base schedule has no spans"}
        noise = self.mutator.plan(
            random.Random(("repro-fuzz-selfcheck", self.base_digest).__repr__()),
            2,
        )
        benign = [op for op in noise if op["op"] in ("move", "dup")]
        plan = benign + [{"op": "corrupt-output", "node": node}]
        violations, _report = self.execute_plan(plan)
        kinds = {v.kind for v in violations}
        if "share-consistency" not in kinds:
            return {
                "ok": False,
                "reason": "planted share corruption was not detected",
                "found_kinds": sorted(kinds),
            }
        shrunk = self.shrink(plan, violations)
        minimal = shrunk == [{"op": "corrupt-output", "node": node}]
        reproducer = self.emit_reproducer(-1, shrunk, violations)
        verdict: dict[str, Any] = {
            "ok": minimal,
            "planted": "corrupt-output",
            "detected_kinds": sorted(kinds),
            "plan_ops": len(plan),
            "shrunk_ops": len(shrunk),
            "minimal": minimal,
            "reproducer": reproducer,
        }
        if not minimal:
            verdict["reason"] = "shrinking did not reach the minimal plan"
            return verdict
        if reproducer is not None:
            from repro.fuzz.schedule import load_schedule

            replayed = self.reproduce(load_schedule(reproducer))
            verdict["reproduced"] = replayed["matched"]
            verdict["ok"] = minimal and replayed["matched"]
            if not replayed["matched"]:
                verdict["reason"] = "reproducer did not replay to the verdict"
        return verdict
