"""repro.fuzz — deterministic adversarial schedule fuzzing.

The flight recorder (PR 7) made every execution a first-class value: a
payload capture is the complete input stream of a run, and
:mod:`repro.obs.replay` re-executes it bit-identically.  This package
turns that replay seam into an adversary.  A :class:`ScheduleMutator`
applies seeded mutation operators to a captured schedule — reordering
within causal-delivery constraints, duplication, drops, targeted delay
of ECHO/READY at the Fig. 1 quorum thresholds (:mod:`repro.quorum`),
crash/recover injection, and Byzantine payload mutation through the
wire codec — and a :class:`FuzzRunner` replays each mutant, asserting
the paper's safety invariants (agreement on the DKG public key, share
consistency, resilience boundary, liveness under the ``t``/``f``
budgets).  Failures shrink to a minimal reproducer emitted as a
replayable capture.

Everything is deterministic per ``(capture, seed)``: a CI failure
reproduces locally from the printed seed alone.
"""

from repro.fuzz.invariants import Violation, check_invariants
from repro.fuzz.mutators import MutationBudget, ScheduleMutator, apply_plan
from repro.fuzz.runner import FuzzReport, FuzzRunner, SeedResult
from repro.fuzz.schedule import Schedule, generate_capture, load_schedule

__all__ = [
    "FuzzReport",
    "FuzzRunner",
    "MutationBudget",
    "Schedule",
    "ScheduleMutator",
    "SeedResult",
    "Violation",
    "apply_plan",
    "check_invariants",
    "generate_capture",
    "load_schedule",
]
