"""The mutable view of a flight-recorder capture.

A :class:`Schedule` is a capture whose records carry stable ids
(``_fid``) so mutation operators can reference events symbolically —
"drop f17", "move f42 three slots later" — and a plan (a list of such
ops) can be re-applied, shrunk to a subset, and serialized next to a
reproducer.  The id of an event never changes once assigned; copies
made by duplication get derived ids (``d<orig>-<k>``) and injected
crash/recover markers get fresh ones (``c<node>-<k>``), so a shrunk
plan still names the same events the full plan did.

The causal-delivery constraint lives here too (:func:`can_swap`): a
receive must never move before the send it answers.  Captures do not
record explicit send events — sends appear as ``send:<kind>`` /
``broadcast:<kind>`` entries in the *effects* of the step that emitted
them — so the check is conservative: span ``b`` (a receive of kind
``k`` from node ``s``) may not move before span ``a`` when ``a`` is a
step of node ``s`` in the same session whose effects emit ``k``.
Same-node timer/operator/crash/recover spans are barriers (an event
must not overtake its own node's lifecycle), and control records
(session opens) never move.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass
from typing import Any

from repro.obs.replay import Capture, ReplayError, capture_meta, load_capture

# Event types a span's ``data.type`` may carry (see PayloadCodec).
_LIFECYCLE = ("timer", "operator", "crash", "recover")


def record_id(record: dict[str, Any]) -> str | None:
    return record.get("_fid")


def is_span(record: dict[str, Any]) -> bool:
    return "event" in record


def is_message(record: dict[str, Any]) -> bool:
    data = record.get("data") or {}
    return data.get("type") == "message"


def event_type(record: dict[str, Any]) -> str | None:
    data = record.get("data") or {}
    return data.get("type")


def message_kind(record: dict[str, Any]) -> str | None:
    """The wire kind of a message/operator receive, from the span label.

    Span labels are ``message:<kind>`` / ``operator:<kind>`` (the
    driver labels dispatches by payload kind), which survives payload
    mutation — the label describes the *slot*, not the mutated bytes.
    """
    event = record.get("event", "")
    if ":" in event:
        return event.split(":", 1)[1]
    return None


def emits(record: dict[str, Any], kind: str) -> bool:
    """Whether this span's effects sent or broadcast wire kind ``kind``."""
    for effect in record.get("effects", ()):
        if effect == f"send:{kind}" or effect == f"broadcast:{kind}":
            return True
    return False


@dataclass
class Schedule:
    """A capture with addressable records, ready for mutation."""

    meta: dict[str, Any]
    records: list[dict[str, Any]]
    has_end: bool = True
    recorded_hash: str | None = None

    @classmethod
    def from_capture(cls, capture: Capture) -> "Schedule":
        records = []
        for index, record in enumerate(capture.records):
            copy = dict(record)
            copy["_fid"] = f"f{index}"
            records.append(copy)
        return cls(
            meta=dict(capture.meta),
            records=records,
            has_end=capture.has_end,
            recorded_hash=capture.recorded_hash,
        )

    def to_capture(self) -> Capture:
        return Capture(
            meta=self.meta,
            records=[dict(r) for r in self.records],
            recorded_hash=self.recorded_hash,
            has_end=self.has_end,
        )

    def copy(self) -> "Schedule":
        return Schedule(
            meta=dict(self.meta),
            records=[dict(r) for r in self.records],
            has_end=self.has_end,
            recorded_hash=self.recorded_hash,
        )

    def index_of(self, fid: str) -> int:
        for index, record in enumerate(self.records):
            if record.get("_fid") == fid:
                return index
        raise KeyError(f"no record with id {fid!r}")

    @property
    def spans(self) -> list[dict[str, Any]]:
        return [r for r in self.records if is_span(r)]

    def canonical_lines(self) -> list[str]:
        """Byte-stable serialization: meta, records, sorted keys.

        Wall-clock instrumentation (``wall``, ``dur``) is excluded: it
        differs between two otherwise-identical runs, and the digest
        must identify the *logical* schedule so a regenerated base
        capture yields the same per-seed mutation plans everywhere.
        """
        lines = [json.dumps(self.meta, sort_keys=True)]
        lines.extend(
            json.dumps(
                {k: v for k, v in r.items() if k not in ("wall", "dur")},
                sort_keys=True,
            )
            for r in self.records
        )
        return lines

    def canonical_bytes(self) -> bytes:
        return ("\n".join(self.canonical_lines()) + "\n").encode()

    def digest(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()


def load_schedule(source: Any) -> Schedule:
    """Parse a capture file (or file-like) into a Schedule."""
    capture = load_capture(source)
    schedule = Schedule.from_capture(capture)
    # Reproducers persist their ids; honor them over positional ones so
    # a re-loaded reproducer's plan still resolves.
    for index, (mutated, original) in enumerate(
        zip(schedule.records, capture.records)
    ):
        if "_fid" in original:
            mutated["_fid"] = original["_fid"]
    return schedule


def can_swap(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """May adjacent records ``a`` (earlier) and ``b`` swap places?

    Conservative causal-delivery + lifecycle rules; ``False`` on any
    doubt.  Used by the reorder operator, and asserted wholesale by the
    property tests.
    """
    if not (is_span(a) and is_span(b)):
        return False  # control records (session opens) are barriers
    if a.get("node") == b.get("node"):
        # Same-node order is program order: a node's own lifecycle
        # events (timers, operator inputs, crash/recover) and its
        # receive sequence stay put relative to each other.
        return False
    if event_type(a) in _LIFECYCLE or event_type(b) in _LIFECYCLE:
        # Cross-node moves past lifecycle events are legal for
        # messages, but moving the lifecycle events themselves risks
        # spurious timer firings before their cause; keep them pinned.
        return False
    # Causal delivery: b (a receive on node r of kind k claimed from
    # node s) must not move before the step of s that emitted k.
    if is_message(b):
        kind = message_kind(b)
        sender = (b.get("data") or {}).get("sender")
        if (
            kind is not None
            and sender == a.get("node")
            and a.get("session") == b.get("session")
            and emits(a, kind)
        ):
            return False
    # Symmetric: a must not move after a step it caused... which is the
    # same rule seen from the other side; moving a later is moving b
    # earlier.  Nothing else constrains two cross-node receives.
    if is_message(a):
        kind = message_kind(a)
        sender = (a.get("data") or {}).get("sender")
        if (
            kind is not None
            and sender == b.get("node")
            and a.get("session") == b.get("session")
            and emits(b, kind)
        ):
            # b emitted what a receives: a is already *after* its cause
            # in file order only if the cause is earlier; b here is
            # later, so swapping would move a's cause before it — that
            # direction is fine.  Kept explicit for symmetry; allowed.
            pass
    return True


# -- in-process base-capture generation ---------------------------------------


def generate_capture(
    protocol: str,
    *,
    n: int,
    t: int,
    f: int = 0,
    seed: int = 0,
    group: Any = None,
    phases: int = 1,
    time_scale: float = 0.01,
) -> Capture:
    """Run a protocol under a payload-mode recorder, in memory.

    ``dkg`` runs in the deterministic simulator; ``renew`` and
    ``groupmod`` run their asyncio-TCP clusters on localhost (the sim
    orchestrators' captures are analysis-only — they cannot replay, so
    they cannot fuzz either).
    """
    from repro.crypto.groups import toy_group
    from repro.dkg.config import DkgConfig
    from repro.obs import trace as obs_trace

    if group is None:
        group = toy_group()
    config = DkgConfig(n=n, t=t, f=f, group=group)
    if protocol in ("dkg", "cluster"):
        meta = capture_meta("dkg", config, seed, "sim", tau=0)

        def run() -> None:
            from repro.dkg.runner import run_dkg

            run_dkg(config, seed=seed)

    elif protocol == "renew":
        meta = capture_meta("renew", config, seed, "tcp", phases=phases)

        def run() -> None:
            from repro.net.proactive import run_renewal_cluster

            result = run_renewal_cluster(
                config, seed=seed, phases=phases, time_scale=time_scale
            )
            if not result.succeeded:
                raise ReplayError("base renewal run did not complete")

    elif protocol == "groupmod":
        meta = capture_meta("groupmod", config, seed, "tcp", new_node=n + 1)

        def run() -> None:
            from repro.net.groupmod import run_groupmod_cluster

            result = run_groupmod_cluster(
                config, seed=seed, new_node=n + 1, time_scale=time_scale
            )
            if not result.succeeded:
                raise ReplayError("base groupmod run did not complete")

    else:
        raise ValueError(f"unknown fuzz protocol {protocol!r}")

    buffer = io.StringIO()
    sink = obs_trace.JsonlTraceSink(
        buffer, payloads=True, group=group, meta=meta, mode="w"
    )
    previous = obs_trace.set_trace_sink(sink)
    try:
        run()
    finally:
        obs_trace.set_trace_sink(previous)
        sink.close()
    buffer.seek(0)
    return load_capture(buffer)
