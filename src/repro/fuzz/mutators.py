"""Seeded mutation operators over a :class:`~repro.fuzz.schedule.Schedule`.

A *plan* is a JSON list of operator dicts, fully parameterized — no
randomness survives into application, so re-applying a plan (or any
subset of it, which is what shrinking does) is deterministic.  The
operators:

``move``
    Shift one record ``delta`` slots via adjacent swaps, each gated by
    :func:`~repro.fuzz.schedule.can_swap`; stops early at the first
    illegal swap, so causal delivery is preserved by construction.
``dup``
    Re-deliver a copy of a message span ``delta`` slots later (network
    duplication).  The copy's id is ``d<orig>-<k>``.
``drop``
    Remove a message span (crash-faulty sender / lossy link).  The
    planner budgets drops at ``f``, the crash limit.
``delay-quorum``
    Find the *threshold-th* ECHO or READY arriving at a node in a
    session — the exact Fig. 1 quorum-completing message, thresholds
    from :mod:`repro.quorum` — and push it later.  This is the
    scheduling adversary the paper's termination argument reasons
    about: the quorum must still complete, merely later.
``crash``
    Insert a ``Crashed`` marker before an anchor record and a
    ``Recovered`` marker ``gap`` records later, dropping the node's
    own events in the window (a down node receives nothing).
``mutate``
    Byzantine payload mutation through the wire codec: ``bitflip``
    flips one bit of the captured frame, ``stale`` substitutes an
    earlier captured frame (replay attack), ``sender`` re-labels the
    envelope sender (spoofing).  The *claimed* sender of a mutated
    frame is tainted; the planner keeps distinct tainted senders
    within ``t``.
``corrupt-output``
    Post-execution: tamper a completer's share by +1.  Never planned —
    it exists so the self-check can plant a violation the invariant
    verifier provably catches (and shrinking provably keeps).

Liveness accounting (:class:`ApplyReport`) is where the paper meets the
open-loop replay model.  Replay feeds each node its *captured* incoming
stream, so a mutation at node r never propagates to the others — safety
invariants therefore stay checkable unconditionally, but a node whose
own inputs were damaged may legitimately not complete.  Three sets are
maintained:

* ``crashed`` — crash-injected nodes;
* ``tainted`` — claimed senders of mutated frames (the Byzantine set);
* ``degraded`` — nodes whose incoming stream lost more than the Fig. 1
  quorum slack.  Disabling up to ``n - echo_threshold`` echoes or
  ``t + f`` readies per (node, session, kind) is provably harmless —
  the remaining honest quorum still clears the threshold — so only
  counts beyond that slack, or any damage to a unique-role message
  (``vss.send`` subshares, leader proposals: things no quorum can
  route around in an open loop), degrade the recipient.

The liveness invariant then asserts completion for every node *not* in
``crashed | degraded`` — mutations within budget must not stop anyone
else, which is precisely the paper's weak-termination claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import quorum
from repro.fuzz.schedule import (
    Schedule,
    can_swap,
    is_message,
    is_span,
    message_kind,
)

PLANNED_OPS = ("move", "dup", "drop", "delay-quorum", "crash", "mutate")


@dataclass(frozen=True)
class MutationBudget:
    """Adversary budgets, in the paper's (t, f) terms."""

    t: int  # max distinct tainted (Byzantine) senders
    f: int  # max dropped messages / crash-prone nodes

    @property
    def crash_nodes(self) -> int:
        # Injected crashes always pair with a recovery, so the node is
        # only *transiently* down — the hybrid model's f bounds nodes
        # that stay down, so one transient crash is admitted even at
        # f=0 (open-loop replay still exempts the node from liveness:
        # its lost inbox cannot be re-delivered).
        return max(self.f, 1)


@dataclass
class ApplyReport:
    """What a plan did to the schedule, in invariant-relevant terms."""

    applied: list[dict[str, Any]] = field(default_factory=list)
    skipped: list[dict[str, Any]] = field(default_factory=list)
    crashed: set[int] = field(default_factory=set)
    degraded: set[int] = field(default_factory=set)
    tainted: set[int] = field(default_factory=set)
    post_ops: list[dict[str, Any]] = field(default_factory=list)
    # (node, session, kind) -> count of disabled incoming messages
    disabled: dict[tuple[int, str, str], int] = field(default_factory=dict)

    def exempt(self) -> set[int]:
        return self.crashed | self.degraded


def _quorum_slack(kind: str, n: int, t: int, f: int) -> int:
    """How many incoming frames of ``kind`` a node can lose and still
    clear the Fig. 1 threshold, given an all-honest capture of n."""
    if kind.endswith(".echo"):
        return n - quorum.echo_threshold(n, t)
    if kind.endswith(".ready"):
        # Output needs n - t - f readies; the capture delivered n.
        return n - quorum.output_threshold(n, t, f)
    return 0  # unique-role messages (sends, proposals): no slack


class _Applier:
    """Sequential, deterministic application of one plan."""

    def __init__(self, schedule: Schedule, budget: MutationBudget):
        self.schedule = schedule
        self.budget = budget
        self.report = ApplyReport()
        params = schedule.meta.get("config") or {}
        self.n = params.get("n", 0)
        self.t = params.get("t", 0)
        self.f = params.get("f", 0)
        self._dup_counts: dict[str, int] = {}
        self._crash_counts: dict[int, int] = {}

    def _find(self, fid: str) -> int | None:
        for index, record in enumerate(self.schedule.records):
            if record.get("_fid") == fid:
                return index
        return None

    def _disable(self, record: dict[str, Any]) -> None:
        """Account one incoming message of this slot as unusable."""
        node = record.get("node")
        session = record.get("session") or "dkg"
        kind = message_kind(record) or "?"
        key = (node, session, kind)
        count = self.report.disabled.get(key, 0) + 1
        self.report.disabled[key] = count
        if count > _quorum_slack(kind, self.n, self.t, self.f):
            self.report.degraded.add(node)

    def apply(self, op: dict[str, Any]) -> bool:
        kind = op["op"]
        handler = getattr(self, "_op_" + kind.replace("-", "_"), None)
        if handler is None:
            raise ValueError(f"unknown mutation op {kind!r}")
        done = handler(op)
        (self.report.applied if done else self.report.skipped).append(op)
        return done

    # -- operators ------------------------------------------------------------

    def _move_by_swaps(self, index: int, delta: int) -> int:
        records = self.schedule.records
        moved = 0
        step = 1 if delta > 0 else -1
        for _ in range(abs(delta)):
            other = index + step
            if not 0 <= other < len(records):
                break
            earlier, later = (
                (records[index], records[other])
                if step > 0
                else (records[other], records[index])
            )
            if not can_swap(earlier, later):
                break
            records[index], records[other] = records[other], records[index]
            index = other
            moved += 1
        return moved

    def _op_move(self, op: dict[str, Any]) -> bool:
        index = self._find(op["id"])
        if index is None:
            return False
        return self._move_by_swaps(index, op["delta"]) > 0

    def _op_dup(self, op: dict[str, Any]) -> bool:
        index = self._find(op["id"])
        if index is None:
            return False
        record = self.schedule.records[index]
        if not is_message(record):
            return False
        copy = dict(record)
        count = self._dup_counts.get(op["id"], 0) + 1
        self._dup_counts[op["id"]] = count
        copy["_fid"] = f"d{op['id']}-{count}"
        at = min(index + 1 + max(op["delta"], 0), len(self.schedule.records))
        self.schedule.records.insert(at, copy)
        return True

    def _op_drop(self, op: dict[str, Any]) -> bool:
        index = self._find(op["id"])
        if index is None:
            return False
        record = self.schedule.records[index]
        if not is_message(record):
            return False
        del self.schedule.records[index]
        self._disable(record)
        return True

    def _op_delay_quorum(self, op: dict[str, Any]) -> bool:
        node, session = op["node"], op["session"]
        suffix = "." + op["suffix"]
        if op["suffix"] == "echo":
            threshold = quorum.echo_threshold(self.n, self.t)
        else:
            threshold = quorum.output_threshold(self.n, self.t, self.f)
        seen = 0
        for index, record in enumerate(self.schedule.records):
            if (
                is_message(record)
                and record.get("node") == node
                and (record.get("session") or "dkg") == session
                and (message_kind(record) or "").endswith(suffix)
            ):
                seen += 1
                if seen == threshold:
                    return self._move_by_swaps(index, op["delta"]) > 0
        return False

    def _op_crash(self, op: dict[str, Any]) -> bool:
        node = op["node"]
        anchor = self._find(op["at"])
        if anchor is None:
            return False
        if (
            node not in self.report.crashed
            and len(self.report.crashed) >= self.budget.crash_nodes
        ):
            return False
        count = self._crash_counts.get(node, 0) + 1
        self._crash_counts[node] = count
        t_at = self.schedule.records[anchor].get("t", 0.0)
        session = self.schedule.records[anchor].get("session") or "dkg"

        def marker(event: str, tag: str) -> dict[str, Any]:
            return {
                "_fid": f"c{node}-{count}{tag}",
                "node": node,
                "event": event,
                "session": session,
                "effects": [],
                "t": t_at,
                "data": {"type": event},
            }

        # Drop the node's own deliveries inside the outage window (a
        # down node receives nothing), then bracket what remains.
        window = self.schedule.records[anchor : anchor + max(op["gap"], 0)]
        kept: list[dict[str, Any]] = []
        for record in window:
            if is_span(record) and record.get("node") == node:
                if is_message(record):
                    self._disable(record)
                continue  # timers of a down node vanish too
            kept.append(record)
        self.schedule.records[anchor : anchor + max(op["gap"], 0)] = (
            [marker("crash", "")] + kept + [marker("recover", "r")]
        )
        self.report.crashed.add(node)
        return True

    def _op_mutate(self, op: dict[str, Any]) -> bool:
        index = self._find(op["id"])
        if index is None:
            return False
        record = self.schedule.records[index]
        if not is_message(record):
            return False
        data = dict(record.get("data") or {})
        mode = op["mode"]
        if mode == "bitflip":
            raw = bytearray(bytes.fromhex(data["frame"]))
            if not raw:
                return False
            bit = op["bit"] % (len(raw) * 8)
            raw[bit // 8] ^= 1 << (bit % 8)
            data["frame"] = raw.hex()
            claimed = data.get("sender")
        elif mode == "stale":
            source = self._find(op["from"])
            if source is None or source >= index:
                return False
            source_data = self.schedule.records[source].get("data") or {}
            if source_data.get("type") != "message":
                return False
            data["frame"] = source_data["frame"]
            data["sender"] = source_data.get("sender")
            claimed = data.get("sender")
        elif mode == "sender":
            claimed = op["sender"]
            data["sender"] = claimed
        else:
            raise ValueError(f"unknown mutate mode {mode!r}")
        if (
            claimed is not None
            and claimed not in self.report.tainted
            and len(self.report.tainted) >= self.budget.t
        ):
            return False  # Byzantine budget exhausted
        record = dict(record)
        record["data"] = data
        self.schedule.records[index] = record
        if claimed is not None:
            self.report.tainted.add(claimed)
        # Whatever the machine does with the mutated frame (reject,
        # miscount, drop on decode failure), the slot's honest content
        # is gone for this recipient.
        self._disable(record)
        if mode in ("stale", "sender"):
            # A forged envelope sender poisons *two* votes at the
            # recipient: the slot it replaced, and the claimed sender's
            # genuine message — whose content now lands under the wrong
            # index and whose real delivery is absorbed as a duplicate.
            self._disable(record)
        return True

    def _op_corrupt_output(self, op: dict[str, Any]) -> bool:
        # Post-execution tampering: recorded for the executor, which
        # applies it to the replayed outputs (the planted-bug seam the
        # self-check drives).
        self.report.post_ops.append(op)
        return True


def apply_plan(
    schedule: Schedule,
    plan: list[dict[str, Any]],
    budget: MutationBudget | None = None,
) -> tuple[Schedule, ApplyReport]:
    """Apply ``plan`` to a copy of ``schedule``; fully deterministic."""
    params = schedule.meta.get("config") or {}
    if budget is None:
        budget = MutationBudget(t=params.get("t", 0), f=params.get("f", 0))
    applier = _Applier(schedule.copy(), budget)
    for op in plan:
        applier.apply(op)
    return applier.schedule, applier.report


class ScheduleMutator:
    """Plans seeded mutations against one base schedule.

    ``plan(rng, max_ops)`` draws operators from the given RNG only —
    the same RNG state always yields the same plan, and the plan alone
    (via :func:`apply_plan`) always yields the same mutated schedule.
    """

    def __init__(self, schedule: Schedule, budget: MutationBudget | None = None):
        self.schedule = schedule
        params = schedule.meta.get("config") or {}
        self.n = params.get("n", 0)
        self.t = params.get("t", 0)
        self.f = params.get("f", 0)
        self.budget = budget or MutationBudget(t=self.t, f=self.f)
        self._messages = [
            r for r in schedule.records if is_span(r) and is_message(r)
        ]
        self._members = sorted(
            {r["node"] for r in schedule.records if is_span(r)}
        )
        self._sessions = sorted(
            {
                (r.get("session") or "dkg")
                for r in self._messages
            }
        )

    def _weighted_ops(self) -> list[str]:
        ops = ["move"] * 30 + ["dup"] * 15 + ["delay-quorum"] * 15
        ops += ["crash"] * 10
        if self.budget.f > 0:
            ops += ["drop"] * 10
        if self.budget.t > 0:
            ops += ["mutate"] * 20
        return ops

    def plan(self, rng: Any, max_ops: int) -> list[dict[str, Any]]:
        if not self._messages:
            return []
        choices = self._weighted_ops()
        plan: list[dict[str, Any]] = []
        drops = 0
        for _ in range(max_ops):
            kind = rng.choice(choices)
            target = rng.choice(self._messages)
            if kind == "move":
                delta = rng.choice([-3, -2, -1, 1, 2, 3, 5, 8])
                plan.append({"op": "move", "id": target["_fid"], "delta": delta})
            elif kind == "dup":
                plan.append(
                    {
                        "op": "dup",
                        "id": target["_fid"],
                        "delta": rng.randrange(0, 12),
                    }
                )
            elif kind == "drop":
                if drops >= self.budget.f:
                    continue
                drops += 1
                plan.append({"op": "drop", "id": target["_fid"]})
            elif kind == "delay-quorum":
                plan.append(
                    {
                        "op": "delay-quorum",
                        "node": rng.choice(self._members),
                        "session": rng.choice(self._sessions),
                        "suffix": rng.choice(["echo", "ready"]),
                        "delta": rng.randrange(1, 10),
                    }
                )
            elif kind == "crash":
                plan.append(
                    {
                        "op": "crash",
                        "node": rng.choice(self._members),
                        "at": target["_fid"],
                        "gap": rng.randrange(2, 16),
                    }
                )
            elif kind == "mutate":
                mode = rng.choice(["bitflip", "bitflip", "stale", "sender"])
                op: dict[str, Any] = {
                    "op": "mutate",
                    "id": target["_fid"],
                    "mode": mode,
                }
                if mode == "bitflip":
                    op["bit"] = rng.randrange(0, 4096)
                elif mode == "stale":
                    op["from"] = rng.choice(self._messages)["_fid"]
                else:
                    op["sender"] = rng.choice(self._members)
                plan.append(op)
        return plan
