"""The paper's guarantees, as checkable properties of a replayed run.

Every check is stated over the *outputs* of a (possibly mutated)
execution plus the mutation bookkeeping of
:class:`~repro.fuzz.mutators.ApplyReport`:

``step-error``
    Sans-I/O machines must never raise on any event stream — an
    exception on adversarial input is a bug regardless of what the
    paper says.
``resilience``
    No honest output below the ``n >= 3t + 2f + 1`` boundary
    (:func:`repro.quorum.satisfies_resilience`).
``agreement``
    All completers of a DKG session agree on the public key *and* on
    the qualified set Q — the crux of the protocol.
``quorum-certificate``
    A completer's Q carries at least ``t + 1`` VSS instances, so at
    least one honest dealer's randomness is in the key.
``share-consistency``
    Every output share matches the agreed commitment in the exponent:
    ``g^share == commitment(node)``.  Shares that pass this
    interpolate to the same secret by Lagrange on the commitment
    polynomial — checked per node, no reconstruction needed.
``public-key``
    Proactive renewal and group modification must never change the
    group key: renewed/joined commitments evaluate to the bootstrap
    DKG's public key at 0.
``double-output``
    A session completes at most once per node.
``liveness``
    Weak termination under budget: every node the mutation report
    does *not* exempt (crash-injected, or degraded beyond the Fig. 1
    quorum slack — see :mod:`repro.fuzz.mutators`) must produce the
    session's terminal output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import quorum
from repro.fuzz.executor import ExecutionResult
from repro.fuzz.mutators import ApplyReport


@dataclass(frozen=True)
class Violation:
    kind: str
    session: str
    node: int | None
    detail: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "session": self.session,
            "node": self.node,
            "detail": self.detail,
        }


_TERMINAL_KINDS = (
    "dkg.out.completed",
    "proactive.out.renewed",
    "groupmod.out.joined",
    "groupmod.out.delivered",
)


def expected_sessions(meta: dict[str, Any]) -> dict[str, tuple[str, list[int]]]:
    """session -> (terminal output kind, nodes expected to emit it)."""
    params = meta.get("config") or {}
    members = list(range(1, params.get("n", 0) + 1))
    cmd = meta.get("cmd")
    if cmd in ("dkg", "cluster"):
        return {"dkg": ("dkg.out.completed", members)}
    if cmd == "renew":
        expected = {"dkg": ("dkg.out.completed", members)}
        for phase in range(1, int(meta.get("phases", 1)) + 1):
            expected[f"renew-{phase}"] = ("proactive.out.renewed", members)
        return expected
    if cmd == "groupmod":
        joiner = meta.get("new_node")
        return {
            "dkg": ("dkg.out.completed", members),
            "agree-1": ("groupmod.out.delivered", members),
            "add-1": ("groupmod.out.joined", [joiner] if joiner else []),
        }
    return {}


def _element_hex(group: Any, element: Any) -> str:
    from repro.crypto.backend import element_hex

    return element_hex(group, element)


def _share_commitment(commitment: Any, node: int) -> Any:
    from repro.proactive.renewal import share_commitment_at

    return share_commitment_at(commitment, node)


def check_invariants(
    meta: dict[str, Any],
    group: Any,
    execution: ExecutionResult,
    report: ApplyReport,
) -> list[Violation]:
    violations: list[Violation] = []
    params = meta.get("config") or {}
    n, t, f = params.get("n", 0), params.get("t", 0), params.get("f", 0)
    exempt = report.exempt()

    # -- step-error: machines never raise -------------------------------------
    for detail in execution.step_errors:
        violations.append(Violation("step-error", "-", None, detail))

    # -- resilience: no honest output below the boundary ----------------------
    if execution.outputs and not quorum.satisfies_resilience(n, t, f):
        violations.append(
            Violation(
                "resilience",
                "-",
                None,
                f"outputs produced at n={n}, t={t}, f={f} below "
                f"3t+2f+1={quorum.resilience_bound(t, f)}",
            )
        )

    # -- share consistency, over every output that carries a share -------------
    # g^share must equal the agreed commitment evaluated at the node's
    # index — for intermediate VSS shares and terminal DKG / renewal /
    # join shares alike.  Shares that pass interpolate to the same
    # secret by Lagrange on the commitment polynomial, so this per-node
    # check is the paper's share-consistency property without needing a
    # reconstruction round.
    for (node, session), payloads in sorted(execution.outputs.items()):
        for payload in payloads:
            share = getattr(payload, "share", None)
            commitment = getattr(payload, "commitment", None)
            if commitment is None:
                commitment = getattr(payload, "vector", None)
            if not isinstance(share, int) or commitment is None:
                continue
            try:
                if getattr(payload, "kind", None) == "groupmod.out.joined":
                    # The joiner's vector commits to *its* share
                    # polynomial: the share sits at 0, not at the
                    # joiner's index.
                    expected_pk = commitment.public_key()
                else:
                    expected_pk = _share_commitment(commitment, node)
            except Exception as exc:
                violations.append(
                    Violation(
                        "share-consistency",
                        session,
                        node,
                        f"commitment unevaluable: {exc}",
                    )
                )
                continue
            if group.commit(share) != expected_pk:
                violations.append(
                    Violation(
                        "share-consistency",
                        session,
                        node,
                        f"g^share != commitment(node) for "
                        f"{getattr(payload, 'kind', type(payload).__name__)}",
                    )
                )

    # -- per-session terminal-output checks ------------------------------------
    dkg_pk_hex: str | None = None
    dkg_commitment: Any = None
    for session, (kind, nodes) in expected_sessions(meta).items():
        completions = execution.by_kind(session, kind)

        # double-output: at most one terminal output per node
        for node, payloads in completions.items():
            if len(payloads) > 1:
                violations.append(
                    Violation(
                        "double-output",
                        session,
                        node,
                        f"{len(payloads)} {kind} outputs",
                    )
                )

        # agreement + quorum certificates (DKG sessions)
        if kind == "dkg.out.completed" and completions:
            keys = {
                _element_hex(group, p[0].public_key)
                for p in completions.values()
            }
            q_sets = {tuple(sorted(p[0].q_set)) for p in completions.values()}
            if len(keys) > 1:
                violations.append(
                    Violation(
                        "agreement",
                        session,
                        None,
                        f"{len(keys)} distinct public keys among "
                        f"completers {sorted(completions)}",
                    )
                )
            if len(q_sets) > 1:
                violations.append(
                    Violation(
                        "agreement",
                        session,
                        None,
                        f"{len(q_sets)} distinct qualified sets among "
                        f"completers {sorted(completions)}",
                    )
                )
            if len(keys) == 1:
                dkg_pk_hex = keys.pop()
                first = min(completions)
                dkg_commitment = completions[first][0].commitment
            for node, payloads in completions.items():
                if len(payloads[0].q_set) < quorum.ready_threshold(t):
                    violations.append(
                        Violation(
                            "quorum-certificate",
                            session,
                            node,
                            f"|Q|={len(payloads[0].q_set)} < t+1="
                            f"{quorum.ready_threshold(t)}",
                        )
                    )

        # public-key stability across renewal / join: renewal must not
        # move the group key; a joiner must receive a share of the
        # *bootstrap* secret (its vector evaluates, at 0, to the DKG
        # commitment's value at the joiner's index).
        if kind == "proactive.out.renewed" and dkg_pk_hex is not None:
            for node, payloads in completions.items():
                commitment = payloads[0].commitment
                if _element_hex(group, commitment.public_key()) != dkg_pk_hex:
                    violations.append(
                        Violation(
                            "public-key",
                            session,
                            node,
                            "renewed public key drifted from the "
                            "bootstrap DKG key",
                        )
                    )
        if kind == "groupmod.out.joined" and dkg_commitment is not None:
            for node, payloads in completions.items():
                vector = payloads[0].vector
                expected_hex = _element_hex(
                    group, _share_commitment(dkg_commitment, node)
                )
                if _element_hex(group, vector.public_key()) != expected_hex:
                    violations.append(
                        Violation(
                            "public-key",
                            session,
                            node,
                            "joiner's share does not open the bootstrap "
                            "DKG commitment at its index",
                        )
                    )

        # liveness under budget
        for node in nodes:
            if node in exempt:
                continue
            if node not in completions:
                violations.append(
                    Violation(
                        "liveness",
                        session,
                        node,
                        f"no {kind} despite mutations within budget "
                        f"(exempt={sorted(exempt)})",
                    )
                )

    return violations
