"""Bracha's reliable broadcast [20] — the agreement backbone.

Both HybridVSS's echo/ready structure and the DKG's proposal broadcast
descend from this protocol; we provide the classic standalone version
(n >= 3t + 1, deliver at 2t + 1 readies) both as a baseline for
message-count comparison and as a tested reference implementation of
the quorum-intersection argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import quorum
from repro.sim.node import Context, ProtocolNode


@dataclass(frozen=True)
class BrachaInitial:
    tag: str
    value: Any
    size: int = 32

    kind = "bracha.initial"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class BrachaEcho:
    tag: str
    value: Any
    size: int = 32

    kind = "bracha.echo"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class BrachaReady:
    tag: str
    value: Any
    size: int = 32

    kind = "bracha.ready"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class BroadcastInput:
    tag: str
    value: Any

    kind = "bracha.in.broadcast"


@dataclass(frozen=True)
class DeliveredOutput:
    tag: str
    value: Any

    kind = "bracha.out.delivered"


@dataclass
class BrachaNode(ProtocolNode):
    """Classic Bracha reliable broadcast for n >= 3t + 1."""

    n: int = 0
    t: int = 0
    delivered: dict[str, Any] = field(default_factory=dict)
    _echoes: dict[tuple[str, Any], set[int]] = field(default_factory=dict)
    _readies: dict[tuple[str, Any], set[int]] = field(default_factory=dict)
    _sent_echo: set[str] = field(default_factory=set)
    _sent_ready: set[str] = field(default_factory=set)

    @property
    def echo_quorum(self) -> int:
        # Same Fig. 1 echo-intersection count as HybridVSS (f = 0 here).
        return quorum.echo_threshold(self.n, self.t)

    def _broadcast(self, ctx: Context, msg: Any) -> None:
        for j in range(1, self.n + 1):
            ctx.send(j, msg)

    def on_operator(self, payload: Any, ctx: Context) -> None:
        if isinstance(payload, BroadcastInput):
            self._broadcast(ctx, BrachaInitial(payload.tag, payload.value))

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        if isinstance(payload, BrachaInitial):
            if payload.tag not in self._sent_echo:
                self._sent_echo.add(payload.tag)
                self._broadcast(ctx, BrachaEcho(payload.tag, payload.value))
        elif isinstance(payload, BrachaEcho):
            key = (payload.tag, payload.value)
            voters = self._echoes.setdefault(key, set())
            voters.add(sender)
            if (
                len(voters) >= self.echo_quorum
                and payload.tag not in self._sent_ready
            ):
                self._sent_ready.add(payload.tag)
                self._broadcast(ctx, BrachaReady(payload.tag, payload.value))
        elif isinstance(payload, BrachaReady):
            key = (payload.tag, payload.value)
            voters = self._readies.setdefault(key, set())
            voters.add(sender)
            if (
                len(voters) >= self.t + 1
                and payload.tag not in self._sent_ready
            ):
                # ready amplification
                self._sent_ready.add(payload.tag)
                self._broadcast(ctx, BrachaReady(payload.tag, payload.value))
            if (
                len(voters) >= 2 * self.t + 1
                and payload.tag not in self.delivered
            ):
                self.delivered[payload.tag] = payload.value
                ctx.output(DeliveredOutput(payload.tag, payload.value))
