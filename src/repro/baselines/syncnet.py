"""A synchronous round-based execution model for baseline protocols.

§2.1's core argument: protocols built on (partially) synchronous
assumptions bake a conservative bound ``Delta`` into their round
structure — every round costs ``Delta`` wall-clock time whether or not
messages arrived earlier, and an adversary aware of the bound can delay
its messages to the verge of ``Delta`` for free.  Asynchronous
protocols instead complete as fast as the honest messages actually
travel.  The E6 benchmark quantifies this by running the synchronous
Joint-Feldman baseline in this model against our DKG in the
discrete-event simulator.

The model: in each round every node reads its inbox (messages sent to
it in the previous round) and emits messages for the next round.
Latency is ``rounds * delta``; message/byte counts are tallied like the
asynchronous metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

from repro.sim.metrics import Metrics


@dataclass(frozen=True)
class SyncMessage:
    """One synchronous-model message (sized for metering)."""

    sender: int
    recipient: int
    kind: str
    body: Any
    size: int


class SyncNode(Protocol):
    """What the synchronous runner requires of a participant."""

    node_id: int

    def begin(self) -> list[SyncMessage]:
        """Round 0 output."""
        ...

    def step(self, round_no: int, inbox: list[SyncMessage]) -> list[SyncMessage]:
        """Consume the previous round's messages, emit the next round's."""
        ...

    def finished(self) -> bool:
        ...


@dataclass
class SyncResult:
    rounds: int
    metrics: Metrics
    delta: float

    @property
    def latency(self) -> float:
        """Wall-clock cost: every round is charged the full bound Delta."""
        return self.rounds * self.delta


def run_synchronous(
    nodes: dict[int, Any],
    delta: float,
    max_rounds: int = 50,
) -> SyncResult:
    """Drive the nodes through lock-step rounds until all finish."""
    metrics = Metrics()
    in_flight: list[SyncMessage] = []
    for node in nodes.values():
        for msg in node.begin():
            metrics.record_send(msg.sender, msg.kind, msg.size)
            in_flight.append(msg)
    rounds = 1
    while rounds <= max_rounds:
        if all(node.finished() for node in nodes.values()):
            break
        inboxes: dict[int, list[SyncMessage]] = {i: [] for i in nodes}
        for msg in in_flight:
            if msg.recipient in inboxes:
                inboxes[msg.recipient].append(msg)
        in_flight = []
        progressed = False
        for i, node in nodes.items():
            out = node.step(rounds, inboxes[i])
            if out or inboxes[i]:
                progressed = True
            for msg in out:
                metrics.record_send(msg.sender, msg.kind, msg.size)
                in_flight.append(msg)
        rounds += 1
        if not progressed and not in_flight:
            break
    for i, node in nodes.items():
        if node.finished():
            metrics.record_completion(i, rounds * delta)
    return SyncResult(rounds=rounds, metrics=metrics, delta=delta)
