"""Cost model for general-bivariate AVSS (the E9 ablation).

The paper claims a *constant-factor* complexity reduction from using
symmetric bivariate polynomials (§3: "We achieve a constant-factor
reduction in the protocol complexities using symmetric bivariate
polynomials").  In Cachin et al.'s original AVSS the dealer's
polynomial is a general bivariate ``f``: node ``i`` receives BOTH its
row ``f(x, i)`` and column ``f(i, y)`` polynomials, and every echo and
ready message carries TWO points (one for each direction), because
``f(i, m) != f(m, i)`` in general.

We model that cost by *pricing* messages as the general scheme would —
double polynomials in ``send``, double points in ``echo``/``ready``,
plus the verification work — while keeping the symmetric math
underneath.  The measured quantity (bytes on the wire, the paper's
communication complexity) is exactly what the constant-factor claim
concerns; protocol structure, counts and thresholds are identical in
the two schemes, so counts match by construction.
"""

from __future__ import annotations

from repro.crypto.feldman import FeldmanCommitment
from repro.vss.session import VssSession


def run_general_avss(config, secret=None, dealer=1, seed=0, **kwargs):
    """run_vss under the general-bivariate AVSS cost model."""
    from dataclasses import dataclass

    from repro.vss.messages import SessionId
    from repro.vss.node import VssNode, run_vss

    @dataclass
    class GeneralAvssNode(VssNode):
        session_cls: type[VssSession] = None  # type: ignore[assignment]

        def __post_init__(self) -> None:
            self.session_cls = GeneralAvssSession
            super().__post_init__()

    factory = {
        i: GeneralAvssNode(i, config, SessionId(dealer, 0))
        for i in config.indices
    }
    return run_vss(
        config, secret=secret, dealer=dealer, seed=seed,
        node_factory=factory, **kwargs,
    )


class GeneralAvssSession(VssSession):
    """HybridVSS priced under general-bivariate AVSS message sizes.

    Sizes build on the symmetric scheme's true wire lengths
    (:mod:`repro.net.wire`) plus the general scheme's extra payload: a
    second univariate polynomial in ``send`` and a second evaluation
    point in every ``echo``/``ready``.
    """

    def _send_size(self, commitment: FeldmanCommitment, with_poly: bool) -> int:
        # Second univariate polynomial (column next to row).
        extra = (self.config.t + 1) * self._scalar_bytes() if with_poly else 0
        return super()._send_size(commitment, with_poly) + extra

    def _echo_size(self, commitment: FeldmanCommitment) -> int:
        # Second point: f(i, m) next to f(m, i).
        return super()._echo_size(commitment) + self._scalar_bytes()

    def _ready_size(self, commitment: FeldmanCommitment) -> int:
        return super()._ready_size(commitment) + self._scalar_bytes()
