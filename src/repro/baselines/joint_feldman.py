"""Joint-Feldman DKG (Pedersen's DKG) in the synchronous round model.

This is the classic synchronous baseline the paper improves on: every
node Feldman-shares a random secret in round 0, complaints are
broadcast in round 1, dealers with more than ``t`` complaints are
disqualified in round 2, and the final share is the sum over the
qualified set QUAL.

Two simplifications relative to Gennaro et al.'s hardened variant are
deliberate and documented: (a) complaint *justification* is collapsed
into complaint counting (a dealer with > t complaints is out); (b) we
do not implement the Pedersen-commitment first phase that fixes the
public-key bias attack — this baseline exists for complexity and
latency comparison (E6/E8), not as a security reference.

Every round costs the full synchrony bound ``Delta`` — the §2.1
argument the E6 benchmark quantifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.feldman import FeldmanVector
from repro.crypto.groups import SchnorrGroup
from repro.crypto.polynomials import Polynomial
from repro.baselines.syncnet import SyncMessage, SyncResult, run_synchronous

DEAL_KIND = "jf.deal"
COMPLAINT_KIND = "jf.complaint"


@dataclass
class JfDeal:
    commitment: FeldmanVector
    share: int


@dataclass
class JointFeldmanNode:
    """One synchronous JF-DKG participant."""

    node_id: int
    n: int
    t: int
    group: SchnorrGroup
    rng: random.Random
    secret: int | None = None
    misbehave_against: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.secret is None:
            self.secret = self.group.random_scalar(self.rng)
        self._poly = Polynomial.random(
            self.t, self.group.q, self.rng, constant_term=self.secret
        )
        self._commitment = FeldmanVector.commit(self._poly, self.group)
        self._deals: dict[int, JfDeal] = {}
        self._complaints: dict[int, set[int]] = {}
        self._done = False
        self.qual: tuple[int, ...] = ()
        self.share: int | None = None
        self.public_key: int | None = None

    # round 0: deal to everyone
    def begin(self) -> list[SyncMessage]:
        out = []
        size = self._commitment.byte_size() + self.group.scalar_bytes
        for j in range(1, self.n + 1):
            share = self._poly(j)
            if j in self.misbehave_against:
                share = (share + 1) % self.group.q  # a corrupt dealing
            out.append(
                SyncMessage(
                    self.node_id, j, DEAL_KIND,
                    JfDeal(self._commitment, share), size,
                )
            )
        return out

    def step(self, round_no: int, inbox: list[SyncMessage]) -> list[SyncMessage]:
        if round_no == 1:
            return self._complain(inbox)
        if round_no == 2:
            # Complaints broadcast in round 1 have all arrived: tally
            # them and finalize (deal, complain, finalize = 3 rounds).
            self._collect_complaints(inbox)
            self._finalize()
        return []

    # round 1: verify deals, broadcast complaints
    def _complain(self, inbox: list[SyncMessage]) -> list[SyncMessage]:
        out = []
        for msg in inbox:
            if msg.kind != DEAL_KIND:
                continue
            deal: JfDeal = msg.body
            self._deals[msg.sender] = deal
            if not deal.commitment.verify_share(self.node_id, deal.share):
                for j in range(1, self.n + 1):
                    out.append(
                        SyncMessage(
                            self.node_id, j, COMPLAINT_KIND, msg.sender, 4
                        )
                    )
        return out

    # round 2: tally complaints
    def _collect_complaints(self, inbox: list[SyncMessage]) -> None:
        for msg in inbox:
            if msg.kind == COMPLAINT_KIND:
                self._complaints.setdefault(msg.body, set()).add(msg.sender)

    # round 3: build QUAL and the final share
    def _finalize(self) -> None:
        qual = [
            d
            for d in sorted(self._deals)
            if len(self._complaints.get(d, ())) <= self.t
            and self._deals[d].commitment.verify_share(
                self.node_id, self._deals[d].share
            )
        ]
        self.qual = tuple(qual)
        q = self.group.q
        self.share = sum(self._deals[d].share for d in qual) % q
        pk = self.group.identity
        for d in qual:
            pk = self.group.mul(pk, self._deals[d].commitment.public_key())
        self.public_key = pk
        self._done = True

    def finished(self) -> bool:
        return self._done


@dataclass
class JfResult:
    nodes: dict[int, JointFeldmanNode]
    sync: SyncResult

    @property
    def public_key(self) -> int:
        keys = {n.public_key for n in self.nodes.values() if n.public_key}
        if len(keys) != 1:
            raise AssertionError("JF-DKG public key disagreement")
        return keys.pop()

    @property
    def shares(self) -> dict[int, int]:
        return {i: n.share for i, n in self.nodes.items() if n.share is not None}


def run_joint_feldman(
    n: int,
    t: int,
    group: SchnorrGroup,
    seed: int = 0,
    delta: float = 10.0,
    misbehaving: dict[int, set[int]] | None = None,
) -> JfResult:
    """Run the synchronous JF-DKG; ``delta`` is the per-round bound.

    ``misbehaving`` maps a dealer to the set of recipients it cheats.
    """
    rng = random.Random(("jf", seed).__repr__())
    nodes = {
        i: JointFeldmanNode(
            i, n, t, group,
            random.Random(("jf-node", seed, i).__repr__()),
            misbehave_against=(misbehaving or {}).get(i, set()),
        )
        for i in range(1, n + 1)
    }
    sync = run_synchronous(nodes, delta=delta)
    return JfResult(nodes=nodes, sync=sync)
