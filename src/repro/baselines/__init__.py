"""Baselines and classic comparators: Bracha reliable broadcast,
synchronous Joint-Feldman (Pedersen) DKG, and the general-bivariate
AVSS cost model for the symmetric-polynomial ablation."""

from repro.baselines.avss_general import GeneralAvssSession, run_general_avss
from repro.baselines.bracha import (
    BrachaNode,
    BroadcastInput,
    DeliveredOutput,
)
from repro.baselines.joint_feldman import (
    JfResult,
    JointFeldmanNode,
    run_joint_feldman,
)
from repro.baselines.syncnet import SyncMessage, SyncResult, run_synchronous

__all__ = [
    "BrachaNode",
    "BroadcastInput",
    "DeliveredOutput",
    "GeneralAvssSession",
    "JfResult",
    "JointFeldmanNode",
    "SyncMessage",
    "SyncResult",
    "run_general_avss",
    "run_joint_feldman",
    "run_synchronous",
]
