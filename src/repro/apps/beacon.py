"""A chained randomness beacon service on top of the DPRF.

This is the application-layer object a deployment would actually run
(drand-style): beacon round ``r`` evaluates the distributed PRF on
``round_number || previous_output``, chaining rounds so that an
adversary cannot grind future outputs even if it learns the key share
material late.  Each round needs ``t + 1`` live contributors; outputs
are unique and publicly verifiable against the DKG commitment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps import dprf
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.groups import SchnorrGroup


GENESIS = b"\x00" * 32


@dataclass(frozen=True)
class BeaconRound:
    """One published beacon output."""

    round_number: int
    output: bytes
    value: int  # the group element H1(tag)^s, for verification


@dataclass
class Beacon:
    """A stateful beacon chain bound to one DKG output."""

    group: SchnorrGroup
    commitment: FeldmanCommitment | FeldmanVector
    t: int
    output_bytes: int = 32
    rounds: list[BeaconRound] = field(default_factory=list)

    @property
    def height(self) -> int:
        return len(self.rounds)

    def next_tag(self) -> bytes:
        """The PRF input for the next round: height || previous output."""
        previous = self.rounds[-1].output if self.rounds else GENESIS
        return b"beacon|" + self.height.to_bytes(8, "big") + b"|" + previous

    def contribute(
        self, index: int, share: int, rng: random.Random
    ) -> dprf.PartialEval:
        """A node's contribution to the *next* round."""
        return dprf.partial_eval(self.group, self.next_tag(), index, share, rng)

    def verify_contribution(self, partial: dprf.PartialEval) -> bool:
        return dprf.verify_partial(
            self.group, self.next_tag(), self.commitment, partial
        )

    def advance(self, partials: list[dprf.PartialEval]) -> BeaconRound:
        """Combine >= t+1 contributions into the next beacon output."""
        tag = self.next_tag()
        value = dprf.combine(self.group, tag, self.commitment, partials, self.t)
        output = dprf.prf_bytes(self.group, value, self.output_bytes)
        round_ = BeaconRound(self.height, output, value)
        self.rounds.append(round_)
        return round_

    def verify_chain(self) -> bool:
        """Re-derive every output from its chained value: any tampering
        with a historical output breaks all later tags."""
        previous = GENESIS
        for expected_height, round_ in enumerate(self.rounds):
            if round_.round_number != expected_height:
                return False
            if not self.group.is_element(round_.value):
                return False
            derived = dprf.prf_bytes(self.group, round_.value, self.output_bytes)
            if derived != round_.output:
                return False
            previous = round_.output
        return True

    def randint(self, low: int, high: int) -> int:
        """Derive an integer in [low, high] from the latest output —
        the 'lottery draw' convenience the motivation sections promise."""
        if not self.rounds:
            raise RuntimeError("no beacon output yet")
        if low > high:
            raise ValueError("empty range")
        span = high - low + 1
        raw = int.from_bytes(self.rounds[-1].output, "big")
        return low + raw % span
