"""DDH-based distributed pseudo-random function and coin tossing.

The paper motivates DKG with distributed PRFs [4], coin tossing [7]
and distributed random oracles [8].  The classic DDH construction
(Naor--Pinkas--Reingold) fits our discrete-log setting directly:

    f_s(x) = H1(x)^s

where ``s`` is the DKG secret.  Each node publishes the partial
evaluation ``H1(x)^{s_i}`` with a DLEQ proof against its share
commitment ``g^{s_i}``; ``t + 1`` verified partials interpolate in the
exponent to ``H1(x)^s``, which hashes to a pseudo-random string (or a
single coin bit).  The output is *unique* for a given input — no
Byzantine minority can bias it — which is exactly what makes it usable
as the common coin for randomized agreement, closing the circle the
paper describes (coin tossing needs a DKG; with our DKG deployed, the
system can then run randomized protocols).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.crypto import dleq
from repro.crypto.backend import AbstractGroup
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.polynomials import lagrange_coefficients


@dataclass(frozen=True)
class PartialEval:
    """One node's PRF evaluation share H1(x)^{s_i} with DLEQ proof."""

    index: int
    value: object  # a group element
    proof: dleq.DleqProof


class EvaluationError(Exception):
    """Too few valid partial evaluations."""


def input_point(group: AbstractGroup, tag: bytes):
    """H1: hash the PRF input into the group (backend hash-to-element)."""
    return group.hash_to_element(b"dprf-input", tag)


def partial_eval(
    group: AbstractGroup,
    tag: bytes,
    index: int,
    share: int,
    rng: random.Random,
) -> PartialEval:
    """Produce H1(tag)^{s_i} plus the proof that the exponent is s_i."""
    x = input_point(group, tag)
    _, value, proof = dleq.prove(group, share, group.g, x, rng)
    return PartialEval(index, value, proof)


def verify_partial(
    group: AbstractGroup,
    tag: bytes,
    commitment: FeldmanCommitment | FeldmanVector,
    partial: PartialEval,
) -> bool:
    if isinstance(commitment, FeldmanCommitment):
        share_pk = commitment.share_commitment(partial.index)
    else:
        share_pk = commitment.evaluate_in_exponent(partial.index)
    x = input_point(group, tag)
    return dleq.verify(group, group.g, share_pk, x, partial.value, partial.proof)


def combine(
    group: AbstractGroup,
    tag: bytes,
    commitment: FeldmanCommitment | FeldmanVector,
    partials: list[PartialEval],
    t: int,
):
    """Interpolate >= t+1 verified partials to the PRF value H1(tag)^s."""
    valid: dict[int, int] = {}
    for partial in partials:
        if partial.index in valid:
            continue
        if verify_partial(group, tag, commitment, partial):
            valid[partial.index] = partial.value
    if len(valid) < t + 1:
        raise EvaluationError(
            f"need {t + 1} valid partial evaluations, have {len(valid)}"
        )
    chosen = sorted(valid.items())[: t + 1]
    lambdas = lagrange_coefficients([i for i, _ in chosen], 0, group.q)
    return group.multiexp(
        (v, lam) for lam, (_, v) in zip(lambdas, chosen)
    )


def prf_bytes(group: AbstractGroup, value, length: int = 32) -> bytes:
    """H2: hash the group element to the PRF output string."""
    out = b""
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(
            b"dprf-out|" + group.element_to_bytes(value) + counter.to_bytes(4, "big")
        ).digest()
        counter += 1
    return out[:length]


def coin_flip(
    group: AbstractGroup,
    tag: bytes,
    commitment: FeldmanCommitment | FeldmanVector,
    partials: list[PartialEval],
    t: int,
) -> int:
    """A common coin: the low bit of the PRF output for ``tag``."""
    value = combine(group, tag, commitment, partials, t)
    return prf_bytes(group, value, 1)[0] & 1
