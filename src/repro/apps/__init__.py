"""Threshold applications built on DKG output (§1 motivation):
threshold ElGamal encryption, threshold Schnorr signatures, and a
DDH-based distributed PRF / common coin.

This namespace is the one stable surface the serving layer
(:mod:`repro.service`) imports: the application *modules* for their
functional APIs (several share function names like ``verify_partial``
and ``combine``, so they are not flattened) plus the unambiguous
classes, exceptions and uniquely-named helpers.
"""

from repro.apps import beacon, dprf, kdc, threshold_elgamal, threshold_schnorr
from repro.apps.beacon import Beacon, BeaconRound
from repro.apps.dprf import EvaluationError, PartialEval, coin_flip
from repro.apps.kdc import AccessDenied, KdcClient, KdcServer, build_kdc
from repro.apps.threshold_elgamal import (
    Ciphertext,
    DecryptionError,
    HybridCiphertext,
    PartialDecryption,
)
from repro.apps.threshold_schnorr import (
    PartialSignature,
    SigningError,
    batch_verify,
)

__all__ = [
    "AccessDenied",
    "Beacon",
    "BeaconRound",
    "Ciphertext",
    "DecryptionError",
    "EvaluationError",
    "HybridCiphertext",
    "KdcClient",
    "KdcServer",
    "PartialDecryption",
    "PartialEval",
    "PartialSignature",
    "SigningError",
    "batch_verify",
    "beacon",
    "build_kdc",
    "coin_flip",
    "dprf",
    "kdc",
    "threshold_elgamal",
    "threshold_schnorr",
]
