"""Threshold applications built on DKG output (§1 motivation):
threshold ElGamal encryption, threshold Schnorr signatures, and a
DDH-based distributed PRF / common coin."""

from repro.apps import beacon, dprf, kdc, threshold_elgamal, threshold_schnorr
from repro.apps.beacon import Beacon, BeaconRound
from repro.apps.dprf import EvaluationError, PartialEval, coin_flip
from repro.apps.kdc import AccessDenied, KdcClient, KdcServer, build_kdc
from repro.apps.threshold_elgamal import (
    Ciphertext,
    DecryptionError,
    HybridCiphertext,
    PartialDecryption,
)
from repro.apps.threshold_schnorr import PartialSignature, SigningError

__all__ = [
    "AccessDenied",
    "Beacon",
    "BeaconRound",
    "Ciphertext",
    "DecryptionError",
    "EvaluationError",
    "HybridCiphertext",
    "PartialDecryption",
    "PartialEval",
    "PartialSignature",
    "SigningError",
    "KdcClient",
    "KdcServer",
    "build_kdc",
    "coin_flip",
    "dprf",
    "kdc",
    "threshold_elgamal",
    "threshold_schnorr",
]
