"""Threshold ElGamal encryption on top of DKG output (§1 motivation:
"dealerless threshold public-key encryption").

Encryption is standard ElGamal to the group public key ``g^s``.
Decryption is distributed: each node publishes a *partial decryption*
``c1^{s_i}`` with a Chaum--Pedersen DLEQ proof that the exponent
matches its public share commitment ``g^{s_i}``; any ``t + 1`` verified
partials combine by Lagrange interpolation in the exponent to recover
``c1^s`` and hence the plaintext — no node ever reconstructs ``s``.

Messages are group elements; hashed-ElGamal (:func:`encrypt_bytes` /
:func:`decrypt_bytes_combine`) wraps arbitrary byte strings.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.crypto import dleq
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.groups import SchnorrGroup
from repro.crypto.polynomials import lagrange_coefficients


@dataclass(frozen=True)
class Ciphertext:
    """An ElGamal ciphertext (c1, c2) = (g^k, m * pk^k)."""

    c1: int
    c2: int


@dataclass(frozen=True)
class PartialDecryption:
    """One node's decryption share with its correctness proof."""

    index: int
    value: int  # c1^{s_i}
    proof: dleq.DleqProof


class DecryptionError(Exception):
    """Too few valid partial decryptions."""


def encrypt(
    group: SchnorrGroup, public_key: int, message: int, rng: random.Random
) -> Ciphertext:
    """Encrypt a group element to the DKG public key."""
    if not group.is_element(message):
        raise ValueError("message must be a group element (use encrypt_bytes)")
    k = group.random_nonzero_scalar(rng)
    return Ciphertext(group.commit(k), group.mul(message, group.power(public_key, k)))


def partial_decrypt(
    group: SchnorrGroup,
    ciphertext: Ciphertext,
    index: int,
    share: int,
    rng: random.Random,
) -> PartialDecryption:
    """Produce this node's decryption share c1^{s_i} with a DLEQ proof
    that log_g(g^{s_i}) == log_{c1}(c1^{s_i})."""
    _, value, proof = dleq.prove(group, share, group.g, ciphertext.c1, rng)
    return PartialDecryption(index, value, proof)


def verify_partial(
    group: SchnorrGroup,
    ciphertext: Ciphertext,
    commitment: FeldmanCommitment | FeldmanVector,
    partial: PartialDecryption,
) -> bool:
    """Check a decryption share against the node's public share commitment."""
    if isinstance(commitment, FeldmanCommitment):
        share_pk = commitment.share_commitment(partial.index)
    else:
        share_pk = commitment.evaluate_in_exponent(partial.index)
    return dleq.verify(
        group, group.g, share_pk, ciphertext.c1, partial.value, partial.proof
    )


def combine(
    group: SchnorrGroup,
    ciphertext: Ciphertext,
    commitment: FeldmanCommitment | FeldmanVector,
    partials: list[PartialDecryption],
    t: int,
) -> int:
    """Combine >= t+1 verified partials into the plaintext group element.

    Invalid partials (bad proofs — Byzantine contributions) are
    discarded; raises :class:`DecryptionError` if fewer than ``t + 1``
    valid ones remain.
    """
    valid: dict[int, int] = {}
    for partial in partials:
        if partial.index in valid:
            continue
        if verify_partial(group, ciphertext, commitment, partial):
            valid[partial.index] = partial.value
    if len(valid) < t + 1:
        raise DecryptionError(
            f"need {t + 1} valid partial decryptions, have {len(valid)}"
        )
    chosen = sorted(valid.items())[: t + 1]
    lambdas = lagrange_coefficients([i for i, _ in chosen], 0, group.q)
    # c1^s = prod c1^{s_i * lambda_i}  (interpolation in the exponent)
    c1_s = 1
    for lam, (_, value) in zip(lambdas, chosen):
        c1_s = group.mul(c1_s, group.power(value, lam))
    return group.mul(ciphertext.c2, group.inv(c1_s))


# -- hashed ElGamal for byte strings ------------------------------------------------


@dataclass(frozen=True)
class HybridCiphertext:
    """Hashed-ElGamal: ephemeral point + XOR-padded payload."""

    c1: int
    pad: bytes


def _kdf(group: SchnorrGroup, shared_point: int, length: int) -> bytes:
    out = b""
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(
            b"eg-kdf|" + group.element_to_bytes(shared_point) + counter.to_bytes(4, "big")
        ).digest()
        counter += 1
    return out[:length]


def encrypt_bytes(
    group: SchnorrGroup, public_key: int, plaintext: bytes, rng: random.Random
) -> HybridCiphertext:
    k = group.random_nonzero_scalar(rng)
    shared = group.power(public_key, k)
    pad = bytes(
        a ^ b for a, b in zip(plaintext, _kdf(group, shared, len(plaintext)))
    )
    return HybridCiphertext(group.commit(k), pad)


def partial_decrypt_hybrid(
    group: SchnorrGroup,
    ciphertext: HybridCiphertext,
    index: int,
    share: int,
    rng: random.Random,
) -> PartialDecryption:
    _, value, proof = dleq.prove(group, share, group.g, ciphertext.c1, rng)
    return PartialDecryption(index, value, proof)


def decrypt_bytes_combine(
    group: SchnorrGroup,
    ciphertext: HybridCiphertext,
    commitment: FeldmanCommitment | FeldmanVector,
    partials: list[PartialDecryption],
    t: int,
) -> bytes:
    """Combine partials and strip the KDF pad."""
    as_elgamal = Ciphertext(ciphertext.c1, 1)
    valid: dict[int, int] = {}
    for partial in partials:
        if partial.index in valid:
            continue
        if verify_partial(group, as_elgamal, commitment, partial):
            valid[partial.index] = partial.value
    if len(valid) < t + 1:
        raise DecryptionError(
            f"need {t + 1} valid partial decryptions, have {len(valid)}"
        )
    chosen = sorted(valid.items())[: t + 1]
    lambdas = lagrange_coefficients([i for i, _ in chosen], 0, group.q)
    shared = 1
    for lam, (_, value) in zip(lambdas, chosen):
        shared = group.mul(shared, group.power(value, lam))
    return bytes(
        a ^ b
        for a, b in zip(ciphertext.pad, _kdf(group, shared, len(ciphertext.pad)))
    )
