"""Threshold ElGamal encryption on top of DKG output (§1 motivation:
"dealerless threshold public-key encryption").

Encryption is standard ElGamal to the group public key ``g^s``.
Decryption is distributed: each node publishes a *partial decryption*
``c1^{s_i}`` with a Chaum--Pedersen DLEQ proof that the exponent
matches its public share commitment ``g^{s_i}``; any ``t + 1`` verified
partials combine by Lagrange interpolation in the exponent to recover
``c1^s`` and hence the plaintext — no node ever reconstructs ``s``.

Messages are group elements; hashed-ElGamal (:func:`encrypt_bytes` /
:func:`decrypt_bytes_combine`) wraps arbitrary byte strings.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.crypto import dleq
from repro.crypto.backend import AbstractGroup
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.polynomials import lagrange_coefficients


@dataclass(frozen=True)
class Ciphertext:
    """An ElGamal ciphertext (c1, c2) = (g^k, m * pk^k)."""

    c1: object  # g^k
    c2: object  # m * pk^k


@dataclass(frozen=True)
class PartialDecryption:
    """One node's decryption share with its correctness proof."""

    index: int
    value: object  # c1^{s_i}
    proof: dleq.DleqProof


class DecryptionError(Exception):
    """Too few valid partial decryptions."""


def encrypt(
    group: AbstractGroup, public_key, message, rng: random.Random
) -> Ciphertext:
    """Encrypt a group element to the DKG public key."""
    if not group.is_element(message):
        raise ValueError("message must be a group element (use encrypt_bytes)")
    k = group.random_nonzero_scalar(rng)
    return Ciphertext(group.commit(k), group.mul(message, group.power(public_key, k)))


def partial_decrypt(
    group: AbstractGroup,
    ciphertext: Ciphertext,
    index: int,
    share: int,
    rng: random.Random,
) -> PartialDecryption:
    """Produce this node's decryption share c1^{s_i} with a DLEQ proof
    that log_g(g^{s_i}) == log_{c1}(c1^{s_i})."""
    _, value, proof = dleq.prove(group, share, group.g, ciphertext.c1, rng)
    return PartialDecryption(index, value, proof)


def verify_partial(
    group: AbstractGroup,
    ciphertext: Ciphertext,
    commitment: FeldmanCommitment | FeldmanVector,
    partial: PartialDecryption,
) -> bool:
    """Check a decryption share against the node's public share commitment."""
    if isinstance(commitment, FeldmanCommitment):
        share_pk = commitment.share_commitment(partial.index)
    else:
        share_pk = commitment.evaluate_in_exponent(partial.index)
    return dleq.verify(
        group, group.g, share_pk, ciphertext.c1, partial.value, partial.proof
    )


def combine(
    group: AbstractGroup,
    ciphertext: Ciphertext,
    commitment: FeldmanCommitment | FeldmanVector,
    partials: list[PartialDecryption],
    t: int,
) -> int:
    """Combine >= t+1 verified partials into the plaintext group element.

    Invalid partials (bad proofs — Byzantine contributions) are
    discarded; raises :class:`DecryptionError` if fewer than ``t + 1``
    valid ones remain.
    """
    valid: dict[int, int] = {}
    for partial in partials:
        if partial.index in valid:
            continue
        if verify_partial(group, ciphertext, commitment, partial):
            valid[partial.index] = partial.value
    if len(valid) < t + 1:
        raise DecryptionError(
            f"need {t + 1} valid partial decryptions, have {len(valid)}"
        )
    chosen = sorted(valid.items())[: t + 1]
    lambdas = lagrange_coefficients([i for i, _ in chosen], 0, group.q)
    # c1^s = prod c1^{s_i * lambda_i}  (interpolation in the exponent)
    c1_s = group.multiexp(
        (value, lam) for lam, (_, value) in zip(lambdas, chosen)
    )
    return group.mul(ciphertext.c2, group.inv(c1_s))


# -- hashed ElGamal for byte strings ------------------------------------------------


@dataclass(frozen=True)
class HybridCiphertext:
    """Hashed-ElGamal: ephemeral point + XOR-padded payload."""

    c1: object  # the ephemeral point g^k
    pad: bytes


def _kdf(group: AbstractGroup, shared_point, length: int) -> bytes:
    out = b""
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(
            b"eg-kdf|" + group.element_to_bytes(shared_point) + counter.to_bytes(4, "big")
        ).digest()
        counter += 1
    return out[:length]


def encrypt_bytes(
    group: AbstractGroup, public_key, plaintext: bytes, rng: random.Random
) -> HybridCiphertext:
    k = group.random_nonzero_scalar(rng)
    shared = group.power(public_key, k)
    pad = bytes(
        a ^ b for a, b in zip(plaintext, _kdf(group, shared, len(plaintext)))
    )
    return HybridCiphertext(group.commit(k), pad)


def partial_decrypt_hybrid(
    group: AbstractGroup,
    ciphertext: HybridCiphertext,
    index: int,
    share: int,
    rng: random.Random,
) -> PartialDecryption:
    _, value, proof = dleq.prove(group, share, group.g, ciphertext.c1, rng)
    return PartialDecryption(index, value, proof)


def decrypt_bytes_combine(
    group: AbstractGroup,
    ciphertext: HybridCiphertext,
    commitment: FeldmanCommitment | FeldmanVector,
    partials: list[PartialDecryption],
    t: int,
) -> bytes:
    """Combine partials and strip the KDF pad."""
    as_elgamal = Ciphertext(ciphertext.c1, group.identity)
    valid: dict[int, int] = {}
    for partial in partials:
        if partial.index in valid:
            continue
        if verify_partial(group, as_elgamal, commitment, partial):
            valid[partial.index] = partial.value
    if len(valid) < t + 1:
        raise DecryptionError(
            f"need {t + 1} valid partial decryptions, have {len(valid)}"
        )
    chosen = sorted(valid.items())[: t + 1]
    lambdas = lagrange_coefficients([i for i, _ in chosen], 0, group.q)
    shared = group.multiexp(
        (value, lam) for lam, (_, value) in zip(lambdas, chosen)
    )
    return bytes(
        a ^ b
        for a, b in zip(ciphertext.pad, _kdf(group, shared, len(ciphertext.pad)))
    )
