"""Distributed key distribution centre (DKDC) — the paper's §1
symmetric-key motivation ("In symmetric-key cryptography, DKGs are used
to design distributed key distribution centres [4]").

The Naor--Pinkas--Reingold construction: the servers share a DPRF key
``s`` via the DKG; a client authorized for conversation/group ``cid``
asks any ``t + 1`` servers for partial evaluations of ``f_s(cid)`` and
combines them into the symmetric *conversation key*.  No single server
(nor any ``t``) can compute or predict any group key; every authorized
client derives the *same* key for the same ``cid``.

This module wraps :mod:`repro.apps.dprf` in the KDC workflow: server
objects with access policies, client key requests, and an auditable
grant log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps import dprf
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.groups import SchnorrGroup


class AccessDenied(Exception):
    """The server's policy refused the client's request."""


@dataclass
class KdcServer:
    """One KDC server holding a DKG share.

    ``acl`` maps conversation ids to the set of authorized client names
    (None means an open conversation)."""

    index: int
    share: int
    group: SchnorrGroup
    acl: dict[bytes, set[str] | None] = field(default_factory=dict)
    grant_log: list[tuple[str, bytes]] = field(default_factory=list)

    def authorize(self, cid: bytes, clients: set[str] | None) -> None:
        """Register a conversation with an optional member list."""
        self.acl[cid] = set(clients) if clients is not None else None

    def request_key_share(
        self, client: str, cid: bytes, rng: random.Random
    ) -> dprf.PartialEval:
        """Serve a partial conversation-key evaluation, policy permitting."""
        if cid not in self.acl:
            raise AccessDenied(f"unknown conversation {cid!r}")
        members = self.acl[cid]
        if members is not None and client not in members:
            raise AccessDenied(f"{client} not authorized for {cid!r}")
        self.grant_log.append((client, cid))
        return dprf.partial_eval(self.group, cid, self.index, self.share, rng)


@dataclass
class KdcClient:
    """A client combining server responses into the conversation key."""

    name: str
    group: SchnorrGroup
    commitment: FeldmanCommitment | FeldmanVector
    t: int
    key_bytes: int = 32

    def derive_key(
        self,
        cid: bytes,
        servers: list[KdcServer],
        rng: random.Random,
    ) -> bytes:
        """Collect t+1 verified partials from the given servers and
        combine them into the symmetric key for ``cid``."""
        partials = []
        for server in servers:
            partial = server.request_key_share(self.name, cid, rng)
            if dprf.verify_partial(self.group, cid, self.commitment, partial):
                partials.append(partial)
            if len(partials) == self.t + 1:
                break
        value = dprf.combine(self.group, cid, self.commitment, partials, self.t)
        return dprf.prf_bytes(self.group, value, self.key_bytes)


def build_kdc(
    dkg_result,
    acl: dict[bytes, set[str] | None],
) -> list[KdcServer]:
    """Stand up KDC servers from a completed DKG, pre-loading the ACL."""
    servers = []
    for index, share in sorted(dkg_result.shares.items()):
        server = KdcServer(index, share, dkg_result.config.group)
        for cid, members in acl.items():
            server.authorize(cid, members)
        servers.append(server)
    return servers
