"""Threshold Schnorr signatures from DKG output (§1: "dealerless
threshold ... signature schemes").

Signing a message requires a *fresh shared nonce* — exactly another
DKG instance (this is why the paper calls DKG the fundamental building
block): the group runs an ephemeral DKG for ``k`` with public nonce
point ``R = g^k``, each signer publishes the partial response
``z_i = k_i + c * s_i mod q`` where ``c = H(X || R || m)`` and ``k_i``,
``s_i`` are its nonce and key shares, and any ``t + 1`` verified
partials Lagrange-interpolate to the full response ``z`` with
``(c, z)`` an ordinary Schnorr signature under the group key ``X``.

Partial responses are publicly verifiable against the Feldman
commitments of both sharings: ``g^{z_i} == R_i * X_i^c`` where
``R_i = g^{k_i}`` and ``X_i = g^{s_i}`` are the per-node commitment
evaluations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.backend import AbstractGroup
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.polynomials import lagrange_coefficients
from repro.crypto.schnorr import Signature, _challenge


@dataclass(frozen=True)
class PartialSignature:
    """One signer's response share z_i = k_i + c * s_i."""

    index: int
    response: int


class SigningError(Exception):
    """Too few valid partial signatures."""


def _share_pk(commitment: FeldmanCommitment | FeldmanVector, index: int):
    if isinstance(commitment, FeldmanCommitment):
        return commitment.share_commitment(index)
    return commitment.evaluate_in_exponent(index)


def challenge(
    group: AbstractGroup, public_key, nonce_point, message: bytes
) -> int:
    """The Fiat-Shamir challenge c = H(X || R || m) — identical to the
    single-signer scheme, so threshold signatures verify with the plain
    :func:`repro.crypto.schnorr.verify`."""
    return _challenge(group, public_key, nonce_point, message)


def partial_sign(
    group: AbstractGroup,
    message: bytes,
    key_share: int,
    nonce_share: int,
    public_key,
    nonce_point,
) -> int:
    """z_i = k_i + c * s_i mod q."""
    c = challenge(group, public_key, nonce_point, message)
    return group.scalar_add(nonce_share, group.scalar_mul(c, key_share))


def verify_partial(
    group: AbstractGroup,
    message: bytes,
    partial: PartialSignature,
    key_commitment: FeldmanCommitment | FeldmanVector,
    nonce_commitment: FeldmanCommitment | FeldmanVector,
) -> bool:
    """g^{z_i} == R_i * X_i^c, with R_i, X_i from the commitments."""
    public_key = key_commitment.public_key()
    nonce_point = nonce_commitment.public_key()
    c = challenge(group, public_key, nonce_point, message)
    lhs = group.commit(partial.response)
    rhs = group.mul(
        _share_pk(nonce_commitment, partial.index),
        group.power(_share_pk(key_commitment, partial.index), c),
    )
    return lhs == rhs


def _coeff_entries(
    commitment: FeldmanCommitment | FeldmanVector,
) -> tuple:
    """The univariate coefficient commitments g^{a_j} for f(., 0)."""
    if isinstance(commitment, FeldmanCommitment):
        return tuple(row[0] for row in commitment.matrix)
    return commitment.entries


def batch_verify(
    group: AbstractGroup,
    message: bytes,
    partials: list[PartialSignature],
    key_commitment: FeldmanCommitment | FeldmanVector,
    nonce_commitment: FeldmanCommitment | FeldmanVector,
    rng: random.Random,
) -> tuple[list[PartialSignature], list[int]]:
    """Verify many partials at once; returns ``(valid, bad_indices)``.

    The batch check is a random linear combination of the per-partial
    equations ``g^{z_i} == R_i * X_i^c``: with fresh random weights
    gamma_i,

        g^{sum gamma_i z_i} == prod_i (R_i * X_i^c)^{gamma_i}

    which a cheating partial survives with probability 1/q.  Because
    ``R_i`` and ``X_i`` are themselves commitment-polynomial
    evaluations ``prod_j C_j^{i^j}``, the right side collapses through
    the coefficient commitments:

        prod_i (R_i * X_i^c)^{gamma_i}
            = prod_j N_j^{a_j} * (prod_j K_j^{a_j})^c,
        a_j = sum_i gamma_i * i^j  (scalar arithmetic only),

    so the whole batch costs O(t) exponentiations instead of the
    O(n*t) of one-by-one verification — the serving layer's combine
    hot path.  On mismatch it falls back to per-partial
    :func:`verify_partial` to *identify* the bad signers rather than
    just reject the batch.  Duplicate indices keep only the first
    occurrence (a duplicate with a different response would otherwise
    let one signer spoil the combination).
    """
    unique: dict[int, PartialSignature] = {}
    for partial in partials:
        unique.setdefault(partial.index, partial)
    batch = list(unique.values())
    if not batch:
        return [], []
    c = challenge(
        group, key_commitment.public_key(), nonce_commitment.public_key(), message
    )
    weights = [group.random_nonzero_scalar(rng) for _ in batch]
    nonce_entries = _coeff_entries(nonce_commitment)
    key_entries = _coeff_entries(key_commitment)
    degree = max(len(nonce_entries), len(key_entries))
    lhs_exponent = 0
    aggregated = [0] * degree  # a_j = sum_i gamma_i * i^j
    for gamma, partial in zip(weights, batch):
        lhs_exponent = group.scalar_add(
            lhs_exponent, group.scalar_mul(gamma, partial.response)
        )
        i_pow = 1
        for j in range(degree):
            aggregated[j] = group.scalar_add(
                aggregated[j], group.scalar_mul(gamma, i_pow)
            )
            i_pow = group.scalar_mul(i_pow, partial.index)
    # prod_j N_j^{a_j} * (prod_j K_j^{a_j})^c folded into ONE interleaved
    # multiexp by scaling the key-side exponents by c in the scalar field.
    pairs = [
        (entry, a_j) for entry, a_j in zip(nonce_entries, aggregated)
    ] + [
        (entry, group.scalar_mul(c, a_j))
        for entry, a_j in zip(key_entries, aggregated)
    ]
    rhs = group.multiexp(pairs)
    if group.commit(lhs_exponent) == rhs:
        return batch, []
    valid: list[PartialSignature] = []
    bad: list[int] = []
    for partial in batch:
        if verify_partial(group, message, partial, key_commitment, nonce_commitment):
            valid.append(partial)
        else:
            bad.append(partial.index)
    return valid, bad


def combine(
    group: AbstractGroup,
    message: bytes,
    partials: list[PartialSignature],
    key_commitment: FeldmanCommitment | FeldmanVector,
    nonce_commitment: FeldmanCommitment | FeldmanVector,
    t: int,
    rng: random.Random | None = None,
) -> Signature:
    """Interpolate >= t+1 verified partials into a standard signature.

    Byzantine partials are filtered by :func:`verify_partial` — or, when
    ``rng`` is supplied, by one :func:`batch_verify` pass (the serving
    hot path); raises :class:`SigningError` when fewer than ``t + 1``
    valid ones remain.
    """
    valid: dict[int, int] = {}
    if rng is not None:
        for partial in batch_verify(
            group, message, partials, key_commitment, nonce_commitment, rng
        )[0]:
            valid[partial.index] = partial.response
    else:
        for partial in partials:
            if partial.index in valid:
                continue
            if verify_partial(
                group, message, partial, key_commitment, nonce_commitment
            ):
                valid[partial.index] = partial.response
    if len(valid) < t + 1:
        raise SigningError(
            f"need {t + 1} valid partial signatures, have {len(valid)}"
        )
    chosen = sorted(valid.items())[: t + 1]
    lambdas = lagrange_coefficients([i for i, _ in chosen], 0, group.q)
    z = sum(lam * resp for lam, (_, resp) in zip(lambdas, chosen)) % group.q
    c = challenge(
        group, key_commitment.public_key(), nonce_commitment.public_key(), message
    )
    return Signature(c, z)
