"""Threshold Schnorr signatures from DKG output (§1: "dealerless
threshold ... signature schemes").

Signing a message requires a *fresh shared nonce* — exactly another
DKG instance (this is why the paper calls DKG the fundamental building
block): the group runs an ephemeral DKG for ``k`` with public nonce
point ``R = g^k``, each signer publishes the partial response
``z_i = k_i + c * s_i mod q`` where ``c = H(X || R || m)`` and ``k_i``,
``s_i`` are its nonce and key shares, and any ``t + 1`` verified
partials Lagrange-interpolate to the full response ``z`` with
``(c, z)`` an ordinary Schnorr signature under the group key ``X``.

Partial responses are publicly verifiable against the Feldman
commitments of both sharings: ``g^{z_i} == R_i * X_i^c`` where
``R_i = g^{k_i}`` and ``X_i = g^{s_i}`` are the per-node commitment
evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.groups import SchnorrGroup
from repro.crypto.polynomials import lagrange_coefficients
from repro.crypto.schnorr import Signature, _challenge


@dataclass(frozen=True)
class PartialSignature:
    """One signer's response share z_i = k_i + c * s_i."""

    index: int
    response: int


class SigningError(Exception):
    """Too few valid partial signatures."""


def _share_pk(commitment: FeldmanCommitment | FeldmanVector, index: int) -> int:
    if isinstance(commitment, FeldmanCommitment):
        return commitment.share_commitment(index)
    return commitment.evaluate_in_exponent(index)


def challenge(
    group: SchnorrGroup, public_key: int, nonce_point: int, message: bytes
) -> int:
    """The Fiat-Shamir challenge c = H(X || R || m) — identical to the
    single-signer scheme, so threshold signatures verify with the plain
    :func:`repro.crypto.schnorr.verify`."""
    return _challenge(group, public_key, nonce_point, message)


def partial_sign(
    group: SchnorrGroup,
    message: bytes,
    key_share: int,
    nonce_share: int,
    public_key: int,
    nonce_point: int,
) -> int:
    """z_i = k_i + c * s_i mod q."""
    c = challenge(group, public_key, nonce_point, message)
    return group.scalar_add(nonce_share, group.scalar_mul(c, key_share))


def verify_partial(
    group: SchnorrGroup,
    message: bytes,
    partial: PartialSignature,
    key_commitment: FeldmanCommitment | FeldmanVector,
    nonce_commitment: FeldmanCommitment | FeldmanVector,
) -> bool:
    """g^{z_i} == R_i * X_i^c, with R_i, X_i from the commitments."""
    public_key = key_commitment.public_key()
    nonce_point = nonce_commitment.public_key()
    c = challenge(group, public_key, nonce_point, message)
    lhs = group.commit(partial.response)
    rhs = group.mul(
        _share_pk(nonce_commitment, partial.index),
        group.power(_share_pk(key_commitment, partial.index), c),
    )
    return lhs == rhs


def combine(
    group: SchnorrGroup,
    message: bytes,
    partials: list[PartialSignature],
    key_commitment: FeldmanCommitment | FeldmanVector,
    nonce_commitment: FeldmanCommitment | FeldmanVector,
    t: int,
) -> Signature:
    """Interpolate >= t+1 verified partials into a standard signature.

    Byzantine partials are filtered by :func:`verify_partial`; raises
    :class:`SigningError` when fewer than ``t + 1`` valid ones remain.
    """
    valid: dict[int, int] = {}
    for partial in partials:
        if partial.index in valid:
            continue
        if verify_partial(group, message, partial, key_commitment, nonce_commitment):
            valid[partial.index] = partial.response
    if len(valid) < t + 1:
        raise SigningError(
            f"need {t + 1} valid partial signatures, have {len(valid)}"
        )
    chosen = sorted(valid.items())[: t + 1]
    lambdas = lagrange_coefficients([i for i, _ in chosen], 0, group.q)
    z = sum(lam * resp for lam, (_, resp) in zip(lambdas, chosen)) % group.q
    c = challenge(
        group, key_commitment.public_key(), nonce_commitment.public_key(), message
    )
    return Signature(c, z)
