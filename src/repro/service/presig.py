"""The presignature pool: shared nonces forged ahead of demand.

Threshold Schnorr signing needs a *fresh shared nonce per message*, and
in the Kate–Goldberg design a shared nonce is exactly one more run of
the DKG (§1: DKG is the building block, including for its own
applications' ephemeral keys).  Running that nonce DKG inside the
request path puts a full multi-round protocol between a client and its
signature; this pool is the amortization layer that takes it out:

* a background task keeps ``target`` presignatures forged, each the
  output of a real nonce DKG whose per-node shares are installed
  node-locally into the :class:`~repro.service.workers.SignerWorker`\\ s
  (shares never transit the pool — it only ever sees the public
  commitment);
* :meth:`take` pops one in O(1) on the signing hot path; dropping
  below ``low_watermark`` wakes the refill task;
* :meth:`invalidate` implements crash safety: when a member crashes,
  every pooled entry it *contributed to* (its sub-share of the nonce
  must be presumed exposed once the machine leaves our control) is
  discarded, and while the node stays down newly forged entries are
  screened against the same quarantine;
* :meth:`forge_now` is the unamortized fallback — the on-demand nonce
  DKG a request pays for when the pool is dry, and the baseline the
  E13 benchmark measures the pool against.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger


@dataclass(frozen=True)
class Presignature:
    """The public half of one precomputed shared nonce.

    The corresponding secret ``k`` is never materialized anywhere: each
    worker holds only its share ``k_i``, keyed by ``presig_id``.
    ``contributors`` is the nonce DKG's agreed set Q — the nodes whose
    sub-sharings sum to ``k`` and therefore the crash-invalidation
    granularity.
    """

    presig_id: int
    commitment: FeldmanCommitment | FeldmanVector
    nonce_point: int  # R = g^k = commitment.public_key()
    contributors: tuple[int, ...]


# forge(presig_id) -> (presig, {node index -> nonce share}); blocking.
Forge = Callable[[int], tuple[Presignature, dict[int, int]]]
# forge_batch(presig_ids) -> list of (presig, shares); blocking.  When a
# service provides one, whole-deficit refills run as *concurrent* DKG
# sessions multiplexed over one endpoint set (repro.runtime.sessions)
# instead of one isolated protocol world per nonce.
ForgeBatch = Callable[[list[int]], list[tuple[Presignature, dict[int, int]]]]
# install(presig, shares): place shares into live workers; loop thread.
Install = Callable[[Presignature, dict[int, int]], None]
# discard(presig_id): drop any installed shares for an invalidated entry.
Discard = Callable[[int], None]

_REFILL_RETRY_S = 0.25  # pause before retrying after a failed forge


class PresigPool:
    """A bounded pool of ready presignatures with watermark refill."""

    def __init__(
        self,
        forge: Forge,
        install: Install,
        *,
        target: int,
        low_watermark: int | None = None,
        discard: Discard | None = None,
        forge_batch: ForgeBatch | None = None,
        labels: dict[str, str] | None = None,
    ):
        if target < 0:
            raise ValueError("pool target must be >= 0")
        # Extra metric labels (e.g. {"shard": ...} when this pool is one
        # of a fleet sharing the process registry).
        self._labels = dict(labels or {})
        self.target = target
        self.low_watermark = (
            max(1, target // 2) if low_watermark is None else low_watermark
        )
        if target and self.low_watermark > target:
            raise ValueError("low watermark above target")
        self.forged = 0
        self.invalidated = 0
        self.refill_failures = 0
        self._forge = forge
        self._forge_batch = forge_batch
        self._install = install
        self._discard = discard or (lambda presig_id: None)
        self._ready: deque[Presignature] = deque()
        self._quarantine: set[int] = set()
        self._next_id = 0
        self._wakeup = asyncio.Event()
        self._refill_task: asyncio.Task | None = None
        self._closed = False
        self.logger = get_logger("repro.service.presig")

    # -- introspection ---------------------------------------------------------

    @property
    def level(self) -> int:
        """Presignatures ready to be taken right now."""
        return len(self._ready)

    @property
    def enabled(self) -> bool:
        return self.target > 0

    def _publish_level(self) -> None:
        obs_metrics.gauge_set(
            "repro_service_pool_depth",
            self.level,
            help="presignatures ready in the pool",
            **self._labels,
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self, prefill: bool = True) -> None:
        """Prefill to ``target`` (unless disabled), then keep a refill
        task parked on the low-watermark signal."""
        if not self.enabled or self._refill_task is not None:
            return
        if prefill:
            await self.refill()
        self._refill_task = asyncio.create_task(self._refill_loop())

    async def stop(self) -> None:
        self._closed = True
        if self._refill_task is not None:
            self._refill_task.cancel()
            try:
                await self._refill_task
            except asyncio.CancelledError:
                pass
            self._refill_task = None

    # -- the hot path ----------------------------------------------------------

    def take(self) -> Presignature | None:
        """Pop one ready presignature, or None when the pool is dry
        (the caller then pays for :meth:`forge_now`)."""
        presig = self._ready.popleft() if self._ready else None
        self._publish_level()
        if self.enabled and self.level < self.low_watermark:
            self._wakeup.set()
        return presig

    async def forge_now(self) -> Presignature:
        """Run one nonce DKG on demand, off the event loop, and hand
        the presignature straight to the caller (never pooled)."""
        presig, shares = await self._forge_one()
        self._install(presig, shares)
        return presig

    # -- refill ----------------------------------------------------------------

    async def _forge_one(self) -> tuple[Presignature, dict[int, int]]:
        presig_id = self._next_id
        self._next_id += 1
        loop = asyncio.get_running_loop()
        presig, shares = await loop.run_in_executor(None, self._forge, presig_id)
        self.forged += 1
        obs_metrics.counter_inc(
            "repro_service_presigs_forged_total",
            help="presignatures forged (pooled and on-demand)",
            **self._labels,
        )
        return presig, shares

    async def _forge_some(
        self, count: int
    ) -> list[tuple[Presignature, dict[int, int]]]:
        """One executor call forging ``count`` nonces as concurrent DKG
        sessions over a single multiplexed endpoint set."""
        assert self._forge_batch is not None
        ids = [self._next_id + k for k in range(count)]
        self._next_id += count
        loop = asyncio.get_running_loop()
        batch = await loop.run_in_executor(None, self._forge_batch, ids)
        self.forged += len(batch)
        obs_metrics.counter_inc(
            "repro_service_presigs_forged_total",
            amount=len(batch),
            help="presignatures forged (pooled and on-demand)",
            **self._labels,
        )
        return batch

    async def refill(self) -> None:
        """Forge until the pool is back at ``target``.  Entries whose
        contributors intersect the quarantine (forged while a crash was
        being processed) are screened out *before* any share is
        installed; if the forge keeps producing quarantined
        contributors, give up until the next wakeup rather than spin.

        With a batch forge, the whole deficit is forged as concurrent
        multiplexed DKG sessions in one call."""
        if self._closed or self.level >= self.target:
            return
        started = time.perf_counter()
        screened = 0
        while not self._closed and self.level < self.target:
            deficit = self.target - self.level
            if self._forge_batch is not None and deficit > 1:
                batch = await self._forge_some(deficit)
            else:
                batch = [await self._forge_one()]
            for presig, shares in batch:
                if self._closed:
                    return
                if self._quarantine & set(presig.contributors):
                    self.invalidated += 1
                    obs_metrics.counter_inc(
                        "repro_service_presigs_invalidated_total",
                        help="pooled presignatures discarded or screened out",
                        **self._labels,
                    )
                    screened += 1
                    continue
                self._install(presig, shares)
                self._ready.append(presig)
                self._publish_level()
            if screened > self.target:
                break
        obs_metrics.observe(
            "repro_service_pool_refill_seconds",
            time.perf_counter() - started,
            help="wall time to bring the pool back to target",
            **self._labels,
        )

    async def _refill_loop(self) -> None:
        while not self._closed:
            await self._wakeup.wait()
            self._wakeup.clear()
            try:
                await self.refill()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # A failed forge (e.g. too few live nodes for the nonce
                # DKG) must not kill the pool: signing falls back to
                # on-demand forging; retry once conditions may have
                # changed.
                self.refill_failures += 1
                self.logger.warning("presignature refill failed: %s", exc)
                await asyncio.sleep(_REFILL_RETRY_S)
                if not self._closed and self.level < self.target:
                    self._wakeup.set()

    # -- crash safety ----------------------------------------------------------

    def invalidate(self, node_index: int) -> int:
        """Drop every pooled presignature ``node_index`` contributed
        to and quarantine it for future refills; returns the number of
        entries dropped."""
        self._quarantine.add(node_index)
        survivors: deque[Presignature] = deque()
        dropped = 0
        for presig in self._ready:
            if node_index in presig.contributors:
                dropped += 1
                # Tell the workers to erase their shares of the dropped
                # nonce — otherwise they would hold them forever.
                self._discard(presig.presig_id)
            else:
                survivors.append(presig)
        self._ready = survivors
        self.invalidated += dropped
        if dropped:
            obs_metrics.counter_inc(
                "repro_service_presigs_invalidated_total",
                amount=dropped,
                help="pooled presignatures discarded or screened out",
                **self._labels,
            )
        self._publish_level()
        if self.enabled and self.level < self.low_watermark:
            self._wakeup.set()
        return dropped

    def absolve(self, node_index: int) -> None:
        """Lift the quarantine after the node recovers (it still holds
        no nonce shares — only *new* presignatures may include it)."""
        self._quarantine.discard(node_index)
