"""Per-node request handlers and the assembled threshold service.

:class:`SignerWorker` is the serving-layer stand-in for one cluster
member's *request path*: it holds the node's long-term key share from
the bootstrap DKG plus its node-local shares of pooled nonces, and
answers partial-operation calls (partial Schnorr signatures, DPRF
contributions, partial ElGamal decryptions) by reusing the
:mod:`repro.apps` logic.  Shares never leave the worker — only public,
proof-carrying partials do — and a crash wipes the worker's ephemeral
nonce shares, exactly the memory-loss semantics the paper's crash model
ascribes to rebooted nodes (§2.2).

:class:`ThresholdService` assembles a full service: it bootstraps the
group key with one DKG, builds a worker per member, attaches the
presignature pool (:mod:`repro.service.presig`) and the randomness
beacon chain, and exposes the operation handlers the frontend gateway
fans requests out to.  Every threshold combine on the signing path
verifies partials in batch (:func:`repro.apps.threshold_schnorr.batch_verify`)
rather than one by one.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.apps import (
    Beacon,
    BeaconRound,
    PartialSignature,
    dprf,
    threshold_elgamal,
    threshold_schnorr,
)
from repro.crypto import parallel, schnorr
from repro.crypto.feldman import (
    FeldmanCommitment,
    FeldmanVector,
    share_verifier,
)
from repro.crypto.backend import AbstractGroup
from repro.crypto.groups import toy_group
from repro.dkg import DkgConfig, run_dkg
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.runtime.sessions import DkgSessionSpec, run_dkg_sessions
from repro.service import protocol
from repro.service.presig import PresigPool, Presignature
from repro.sim.network import ConstantDelay

Commitment = FeldmanCommitment | FeldmanVector


def _forge_sessions(
    group: AbstractGroup,
    live: tuple[int, ...],
    t: int,
    seed: int,
    presig_ids: list[int],
) -> list[tuple[Presignature, dict[int, int]]]:
    """Run one batch of nonce DKGs as concurrent sessions multiplexed
    over one embedded runtime world.  Pure and process-safe: the serial
    forge calls it directly, the parallel forge runs one call per chunk
    in a pool worker (seeded exactly as a serial run of that chunk
    alone, so forge results are deterministic given (seed, cores))."""
    specs = [
        DkgSessionSpec(
            session=f"nonce-{presig_id}",
            config=DkgConfig(
                n=len(live),
                t=t,
                group=group,
                members=tuple(live),
                initial_leader=live[presig_id % len(live)],
                enforce_resilience=False,
            ),
            tau=presig_id,
        )
        for presig_id in presig_ids
    ]
    results = run_dkg_sessions(
        specs,
        seed=seed * 1_000_003 + presig_ids[0] + 1,
        delay_model=ConstantDelay(0.0),
    )
    batch: list[tuple[Presignature, dict[int, int]]] = []
    for presig_id in presig_ids:
        result = results[f"nonce-{presig_id}"]
        if not result.succeeded:
            raise RuntimeError(f"nonce DKG {presig_id} did not complete")
        commitment = result.commitment
        batch.append(
            (
                Presignature(
                    presig_id=presig_id,
                    commitment=commitment,
                    nonce_point=commitment.public_key(),
                    contributors=result.q_set,
                ),
                result.shares,
            )
        )
    return batch


def _forge_sessions_job(payload: tuple) -> tuple[float, list]:
    """Pool-worker wrapper around :func:`_forge_sessions`: commitments
    cross back to the parent in canonical serialized form (the
    :class:`FeldmanCommitment` memo caches are per-process and must not
    travel)."""
    spec, live, t, seed, presig_ids = payload
    started = time.perf_counter()
    group = parallel.group_from_spec(spec)
    encoded = []
    for presig, shares in _forge_sessions(group, live, t, seed, list(presig_ids)):
        rows = [
            [group.element_to_bytes(entry) for entry in row]
            for row in presig.commitment.matrix
        ]
        encoded.append(
            (presig.presig_id, tuple(presig.contributors), dict(shares), rows)
        )
    return time.perf_counter() - started, encoded


class WorkerCrashed(Exception):
    """The worker is down (or lost the requested nonce share)."""


class ServiceUnavailable(Exception):
    """Too few live contributors to reach the t+1 threshold."""


class SignerWorker:
    """One member's request-path handler, keyed by its DKG share."""

    def __init__(
        self,
        index: int,
        group: AbstractGroup,
        key_share: int,
        key_commitment: Commitment,
        seed: int = 0,
    ):
        self.index = index
        self.group = group
        self.key_commitment = key_commitment
        self.crashed = False
        self.handled = 0
        self._key_share = key_share
        self._rng = random.Random(("svc-worker", seed, index).__repr__())
        # presig id -> this node's share of the shared nonce k.
        self._nonce_shares: dict[int, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def crash(self) -> None:
        """Take the worker down; ephemeral nonce shares are memory-only
        and do not survive (the long-term key share is assumed to be on
        persistent storage, as for protocol recovery)."""
        self.crashed = True
        self._nonce_shares.clear()

    def recover(self) -> None:
        """Come back up.  Nonce shares stay lost — pooled presignatures
        this node contributed to were invalidated at crash time."""
        self.crashed = False

    def _check_up(self) -> None:
        if self.crashed:
            raise WorkerCrashed(f"node {self.index} is down")

    # -- nonce share custody ---------------------------------------------------

    def install_nonce(self, presig_id: int, nonce_share: int) -> None:
        self._check_up()
        self._nonce_shares[presig_id] = nonce_share

    def discard_nonce(self, presig_id: int) -> None:
        self._nonce_shares.pop(presig_id, None)

    @property
    def nonce_count(self) -> int:
        return len(self._nonce_shares)

    # -- partial operations ----------------------------------------------------

    async def partial_sign(
        self, presig_id: int, nonce_point: int, message: bytes
    ) -> PartialSignature:
        """z_i = k_i + c * s_i for the pooled nonce ``presig_id``.

        The nonce share is *consumed*: signing two different messages
        with one Schnorr nonce leaks the key share, so a worker only
        ever answers once per presignature.
        """
        await asyncio.sleep(0)
        self._check_up()
        if presig_id not in self._nonce_shares:
            raise WorkerCrashed(
                f"node {self.index} holds no share of presignature {presig_id}"
            )
        nonce_share = self._nonce_shares.pop(presig_id)
        response = threshold_schnorr.partial_sign(
            self.group,
            message,
            self._key_share,
            nonce_share,
            self.key_commitment.public_key(),
            nonce_point,
        )
        self.handled += 1
        return PartialSignature(self.index, response)

    async def dprf_contribute(self, tag: bytes) -> dprf.PartialEval:
        """H1(tag)^{s_i} with its DLEQ proof (PRF and beacon rounds)."""
        await asyncio.sleep(0)
        self._check_up()
        self.handled += 1
        return dprf.partial_eval(self.group, tag, self.index, self._key_share, self._rng)

    async def partial_decrypt(self, c1: int) -> threshold_elgamal.PartialDecryption:
        """c1^{s_i} with its DLEQ proof (threshold ElGamal)."""
        await asyncio.sleep(0)
        self._check_up()
        self.handled += 1
        return threshold_elgamal.partial_decrypt(
            self.group,
            threshold_elgamal.Ciphertext(c1, self.group.identity),
            self.index,
            self._key_share,
            self._rng,
        )


async def collect_partials(
    workers: list[SignerWorker],
    op: Callable[[SignerWorker], Awaitable],
    need: int,
) -> list:
    """Fan ``op`` out to every live worker concurrently.

    Crashed workers (including mid-await crashes surfacing as
    :class:`WorkerCrashed`) are tolerated; any other handler exception
    propagates.  Raises :class:`ServiceUnavailable` when fewer than
    ``need`` partials come back.
    """
    live = [w for w in workers if not w.crashed]
    results = await asyncio.gather(
        *(op(worker) for worker in live), return_exceptions=True
    )
    collected = []
    for outcome in results:
        if isinstance(outcome, WorkerCrashed):
            continue
        if isinstance(outcome, BaseException):
            raise outcome
        collected.append(outcome)
    if len(collected) < need:
        raise ServiceUnavailable(
            f"{len(collected)} live contributions, need {need}"
        )
    return collected


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters for one :class:`ThresholdService` deployment."""

    n: int = 7
    t: int = 2
    f: int = 0
    group: AbstractGroup = field(default_factory=toy_group)
    seed: int = 0
    pool_target: int = 16  # 0 disables the pool (every sign forges on demand)
    pool_low_watermark: int | None = None  # default: half the target
    beacon_output_bytes: int = 32
    forge_concurrency: int = 4  # concurrent on-demand nonce DKGs
    cores: int = 1  # process-pool width for the forge (0 = all cores)
    # Shard id when this service is one committee of a ShardRouter
    # fleet: embedded shards share the process registry, so every
    # service/pool metric is labelled with the shard for the fleet
    # merge to scope by (see repro.obs.fleet).
    shard: str | None = None


class ThresholdService:
    """A DKG'd cluster turned into a long-running request servant.

    Construction runs the bootstrap DKG (the paper's protocol, in the
    embedded deterministic runtime) and distributes the key shares to
    one :class:`SignerWorker` per member; :meth:`start` brings up the
    presignature pool.  The operation handlers return protocol response
    dataclasses ready for the wire; :meth:`handle` / :meth:`handle_batch`
    are the dispatch surface the frontend uses.
    """

    def __init__(self, config: ServiceConfig, *, bootstrap=None):
        self.config = config
        self.group = config.group
        self._labels = {"shard": config.shard} if config.shard else {}
        if bootstrap is None:
            dkg_config = DkgConfig(
                n=config.n, t=config.t, f=config.f, group=config.group
            )
            # Each member's contributed secret must depend on the
            # service seed: node-local DKG randomness is seeded by
            # (tau, node_id) alone, and every shard of a router runs
            # tau=0 — without this, all shards would derive the same
            # group key.
            secrets = {
                i: config.group.random_scalar(
                    random.Random(("svc-bootstrap", config.seed, i).__repr__())
                )
                for i in dkg_config.vss().indices
            }
            bootstrap = run_dkg(
                dkg_config,
                seed=config.seed,
                delay_model=ConstantDelay(0.0),
                secrets=secrets,
            )
            if not bootstrap.succeeded:
                raise RuntimeError("bootstrap DKG did not complete")
        # ``bootstrap`` may also be any completed key-establishment
        # outcome carrying .commitment / .shares / .public_key — e.g. a
        # GroupModClusterResult, so a committee grown over real TCP via
        # the §6.2 machinery can be commissioned as a service directly.
        if len(bootstrap.shares) != config.n:
            raise ValueError(
                f"bootstrap carries {len(bootstrap.shares)} shares "
                f"for an n={config.n} service"
            )
        self.key_commitment: Commitment = bootstrap.commitment
        self.public_key = bootstrap.public_key
        self.workers = {
            i: SignerWorker(
                i, config.group, share, self.key_commitment, seed=config.seed
            )
            for i, share in bootstrap.shares.items()
        }
        self.beacon = Beacon(
            config.group,
            self.key_commitment,
            config.t,
            output_bytes=config.beacon_output_bytes,
        )
        self.pool = PresigPool(
            self._forge_nonce,
            self._install_nonce,
            target=config.pool_target,
            low_watermark=config.pool_low_watermark,
            discard=self._discard_nonce,
            forge_batch=self._forge_nonce_batch,
            labels=self._labels,
        )
        self.served = 0
        self.failed = 0
        self.logger = get_logger(
            "repro.service.workers", n=config.n, t=config.t
        )
        self._combine_rng = random.Random(("svc-combine", config.seed).__repr__())
        self._beacon_lock = asyncio.Lock()
        self._forge_gate = asyncio.Semaphore(max(1, config.forge_concurrency))
        # The forge's process pool (None = serial).  Created and warmed
        # here, before any event loop runs, so the fork happens from a
        # quiet process.
        self.crypto_executor: parallel.CryptoExecutor | None = None
        if parallel.resolve_cores(config.cores) > 1:
            self.crypto_executor = parallel.CryptoExecutor(cores=config.cores)
            self.crypto_executor.warm()

    # -- lifecycle -------------------------------------------------------------

    async def start(self, prefill: bool = True) -> None:
        await self.pool.start(prefill=prefill)

    async def stop(self) -> None:
        await self.pool.stop()
        if self.crypto_executor is not None:
            self.crypto_executor.close()

    def crash_node(self, index: int) -> int:
        """Crash one member mid-run: its worker loses all ephemeral
        state and every pooled presignature it contributed to is
        invalidated (its nonce sub-share must be presumed exposed).
        Returns the number of presignatures dropped."""
        self.workers[index].crash()
        dropped = self.pool.invalidate(index)
        self.logger.bind(node=index).warning(
            "worker crashed; %d pooled presignatures invalidated", dropped
        )
        return dropped

    def recover_node(self, index: int) -> None:
        self.workers[index].recover()
        self.pool.absolve(index)
        self.logger.bind(node=index).info("worker recovered")

    def flush_presignatures(self) -> int:
        """Drain the pool and discard every worker's nonce shares for
        the drained presignatures (the shard-drain step: a retiring
        committee must not leave usable one-time nonces behind).
        Returns the number of presignatures flushed."""
        flushed = 0
        while (presig := self.pool.take()) is not None:
            self._discard_nonce(presig.presig_id)
            flushed += 1
        self.logger.info("flushed %d pooled presignatures", flushed)
        return flushed

    @property
    def t(self) -> int:
        return self.config.t

    @property
    def alive(self) -> list[SignerWorker]:
        return [w for w in self.workers.values() if not w.crashed]

    # -- presignature plumbing -------------------------------------------------

    def _forge_nonce_batch(
        self, presig_ids: list[int]
    ) -> list[tuple[Presignature, dict[int, int]]]:
        """Fresh shared nonces = more DKGs (§1), run among the
        currently-live members as *concurrent sessions* multiplexed
        over one runtime endpoint per node.  With a crypto executor the
        whole-deficit batch is partitioned into per-core chunks, each
        chunk one embedded protocol world in a pool worker; without one
        (or if the pool fails) the batch runs serially in one world.
        Blocking; the pool calls it off the event loop."""
        live = sorted(i for i, w in self.workers.items() if not w.crashed)
        if len(live) < 2 * self.t + 1:
            raise ServiceUnavailable(
                f"{len(live)} live nodes cannot run a t={self.t} nonce DKG"
            )
        executor = self.crypto_executor
        if executor is not None and executor.parallel and len(presig_ids) > 1:
            chunks = parallel.partition(presig_ids, executor.cores)
            if len(chunks) > 1:
                spec = parallel.group_spec(self.group)
                payloads = [
                    (spec, tuple(live), self.t, self.config.seed, chunk)
                    for chunk in chunks
                ]
                results = executor.map_jobs("forge", _forge_sessions_job, payloads)
                if results is not None:
                    batch: list[tuple[Presignature, dict[int, int]]] = []
                    for _, encoded in results:
                        batch.extend(
                            self._decode_forged(item) for item in encoded
                        )
                    return batch
        return _forge_sessions(
            self.group, tuple(live), self.t, self.config.seed, presig_ids
        )

    def _decode_forged(
        self, item: tuple
    ) -> tuple[Presignature, dict[int, int]]:
        """Rebuild one forged presignature from its canonical encoding
        (element decode validates what came back across the pool)."""
        presig_id, contributors, shares, rows = item
        group = self.group
        commitment = FeldmanCommitment(
            tuple(
                tuple(group.element_decode(raw) for raw in row) for row in rows
            ),
            group,
        )
        return (
            Presignature(
                presig_id=presig_id,
                commitment=commitment,
                nonce_point=commitment.public_key(),
                contributors=contributors,
            ),
            shares,
        )

    def _forge_nonce(self, presig_id: int) -> tuple[Presignature, dict[int, int]]:
        """Single-nonce forge (the pool's on-demand fallback path)."""
        return self._forge_nonce_batch([presig_id])[0]

    def _install_nonce(self, presig: Presignature, shares: dict[int, int]) -> None:
        # Refill-time defense in depth: check every nonce share against
        # the presignature commitment in ONE randomized-linear-
        # combination batch before any worker takes custody.  A share
        # that would later produce an unusable partial is caught here,
        # off the request path, with the culprit identified.
        _good, bad = share_verifier(presig.commitment).batch_verify(
            list(shares.items()), rng=self._combine_rng
        )
        if bad:
            raise RuntimeError(
                f"presignature {presig.presig_id}: nonce shares failed "
                f"commitment verification for nodes {sorted(bad)}"
            )
        for index, share in shares.items():
            worker = self.workers.get(index)
            if worker is not None and not worker.crashed:
                worker.install_nonce(presig.presig_id, share)

    def _discard_nonce(self, presig_id: int) -> None:
        for worker in self.workers.values():
            worker.discard_nonce(presig_id)

    # -- operations ------------------------------------------------------------

    async def sign(self, message: bytes) -> tuple[schnorr.Signature, bool]:
        """Threshold-sign ``message``; returns (signature, presig_used).

        The hot path pops a precomputed nonce from the pool; when the
        pool is dry (burst, crash invalidation, or disabled) the nonce
        DKG runs on demand — the unamortized cost the pool exists to
        hide.
        """
        presig = self.pool.take()
        from_pool = presig is not None
        if presig is None:
            async with self._forge_gate:
                presig = await self.pool.forge_now()
        partials = await collect_partials(
            list(self.workers.values()),
            lambda w: w.partial_sign(presig.presig_id, presig.nonce_point, message),
            self.t + 1,
        )
        try:
            signature = threshold_schnorr.combine(
                self.group,
                message,
                partials,
                self.key_commitment,
                presig.commitment,
                self.t,
                rng=self._combine_rng,
            )
        except threshold_schnorr.SigningError as exc:
            raise ServiceUnavailable(str(exc)) from exc
        # Defense in depth: what leaves the service must verify as an
        # ordinary single-signer Schnorr signature.
        if not schnorr.verify(self.group, self.public_key, message, signature):
            raise RuntimeError("combined signature failed verification")
        return signature, from_pool

    async def beacon_next(self) -> BeaconRound:
        """Advance the beacon chain by one round (serialized: rounds
        are chained, so advances cannot interleave)."""
        async with self._beacon_lock:
            tag = self.beacon.next_tag()
            contributions = await collect_partials(
                list(self.workers.values()),
                lambda w: w.dprf_contribute(tag),
                self.t + 1,
            )
            try:
                return self.beacon.advance(contributions)
            except dprf.EvaluationError as exc:
                raise ServiceUnavailable(str(exc)) from exc

    def beacon_get(self, round_number: int) -> BeaconRound | None:
        if 0 <= round_number < self.beacon.height:
            return self.beacon.rounds[round_number]
        return None

    async def dprf_eval(self, tag: bytes) -> bytes:
        partials = await collect_partials(
            list(self.workers.values()),
            lambda w: w.dprf_contribute(tag),
            self.t + 1,
        )
        try:
            value = dprf.combine(
                self.group, tag, self.key_commitment, partials, self.t
            )
        except dprf.EvaluationError as exc:
            raise ServiceUnavailable(str(exc)) from exc
        return dprf.prf_bytes(self.group, value, self.config.beacon_output_bytes)

    async def decrypt(self, c1: int, pad: bytes) -> bytes:
        if not self.group.is_element(c1):
            raise ValueError("c1 is not a group element")
        partials = await collect_partials(
            list(self.workers.values()),
            lambda w: w.partial_decrypt(c1),
            self.t + 1,
        )
        try:
            return threshold_elgamal.decrypt_bytes_combine(
                self.group,
                threshold_elgamal.HybridCiphertext(c1, pad),
                self.key_commitment,
                partials,
                self.t,
            )
        except threshold_elgamal.DecryptionError as exc:
            raise ServiceUnavailable(str(exc)) from exc

    def status(self, request_id: int = 0) -> protocol.StatusResponse:
        return protocol.StatusResponse(
            request_id=request_id,
            n=self.config.n,
            t=self.config.t,
            alive=len(self.alive),
            pool_ready=self.pool.level,
            pool_target=self.pool.target,
            served=self.served,
            failed=self.failed,
            beacon_height=self.beacon.height,
            public_key=self.public_key,
            group_name=self.group.name,
        )

    def ops(self, request_id: int = 0) -> protocol.OpsResponse:
        """The live metrics snapshot plus a status digest, as JSON.

        Metric families are carried opaquely (one JSON document) so
        adding instrumentation anywhere in the stack never requires a
        codec change — clients read names they know and ignore the rest.
        """
        reg = obs_metrics.registry()
        document = {
            "schema": 1,
            "status": {
                "n": self.config.n,
                "t": self.config.t,
                "alive": len(self.alive),
                "pool_ready": self.pool.level,
                "pool_target": self.pool.target,
                "served": self.served,
                "failed": self.failed,
                "beacon_height": self.beacon.height,
                "group": self.group.name,
                # Which fast paths this server actually has: native
                # probes (gmpy2, coincurve) and the forge's pool width.
                "acceleration": parallel.acceleration_status(
                    self.crypto_executor
                ),
            },
            "metrics": reg.snapshot() if reg is not None else {},
        }
        return protocol.OpsResponse(
            request_id,
            json.dumps(document, separators=(",", ":"), default=str).encode(),
        )

    # -- request dispatch ------------------------------------------------------

    async def handle(self, request) -> object:
        """Map one protocol request to its response (never raises).

        Every singly-dispatched request is timed into
        ``repro_service_request_seconds{kind}`` (coalesced batch paths
        in :meth:`handle_batch` meter themselves).
        """
        started = time.perf_counter()
        response = await self._handle_inner(request)
        kind = getattr(request, "kind", type(request).__name__)
        obs_metrics.observe(
            "repro_service_request_seconds",
            time.perf_counter() - started,
            help="request handling latency by request kind",
            kind=kind,
            **self._labels,
        )
        obs_metrics.counter_inc(
            "repro_service_requests_total",
            help="requests handled by kind and outcome",
            kind=kind,
            outcome="error"
            if isinstance(response, protocol.ErrorResponse)
            else "ok",
            **self._labels,
        )
        return response

    def _meter_batch(self, requests: list, started: float, *, ok: bool) -> None:
        """Meter a coalesced batch as if each request were handled alone."""
        elapsed = time.perf_counter() - started
        for request in requests:
            kind = getattr(request, "kind", type(request).__name__)
            obs_metrics.observe(
                "repro_service_request_seconds",
                elapsed,
                help="request handling latency by request kind",
                kind=kind,
                **self._labels,
            )
            obs_metrics.counter_inc(
                "repro_service_requests_total",
                help="requests handled by kind and outcome",
                kind=kind,
                outcome="ok" if ok else "error",
                **self._labels,
            )

    async def _handle_inner(self, request) -> object:
        rid = request.request_id
        try:
            if isinstance(request, protocol.SignRequest):
                signature, from_pool = await self.sign(request.message)
                response: object = protocol.SignResponse(
                    rid, signature.challenge, signature.response, from_pool
                )
            elif isinstance(request, protocol.BeaconNextRequest):
                round_ = await self.beacon_next()
                response = protocol.BeaconResponse(
                    rid, round_.round_number, round_.output, round_.value
                )
            elif isinstance(request, protocol.BeaconGetRequest):
                found = self.beacon_get(request.round_number)
                if found is None:
                    raise ValueError(
                        f"beacon round {request.round_number} not published"
                    )
                response = protocol.BeaconResponse(
                    rid, found.round_number, found.output, found.value
                )
            elif isinstance(request, protocol.DprfEvalRequest):
                response = protocol.DprfResponse(
                    rid, await self.dprf_eval(request.tag)
                )
            elif isinstance(request, protocol.DecryptRequest):
                response = protocol.DecryptResponse(
                    rid, await self.decrypt(request.c1, request.pad)
                )
            elif isinstance(request, protocol.StatusRequest):
                response = self.status(rid)
            elif isinstance(request, protocol.OpsRequest):
                response = self.ops(rid)
            else:
                raise ValueError(f"unsupported request {type(request).__name__}")
        except (ValueError, TypeError) as exc:
            self.failed += 1
            return protocol.ErrorResponse(rid, protocol.ERR_BAD_REQUEST, str(exc))
        except ServiceUnavailable as exc:
            self.failed += 1
            return protocol.ErrorResponse(rid, protocol.ERR_UNAVAILABLE, str(exc))
        except Exception as exc:
            self.failed += 1
            return protocol.ErrorResponse(rid, protocol.ERR_FAILED, str(exc))
        self.served += 1
        return response

    async def handle_batch(self, requests: list) -> list:
        """Handle a same-kind batch, exploiting compatibility:

        * BEACON_NEXT — the whole batch is *coalesced* into one round
          advance; every requester receives the same fresh round;
        * DPRF_EVAL — duplicate tags are deduplicated and evaluated
          once;
        * everything else (SIGN included — each signature needs its own
          nonce) runs concurrently.
        """
        if len(requests) > 1 and isinstance(requests[0], protocol.BeaconNextRequest):
            started = time.perf_counter()
            try:
                round_ = await self.beacon_next()
            except ServiceUnavailable as exc:
                self.failed += len(requests)
                self._meter_batch(requests, started, ok=False)
                return [
                    protocol.ErrorResponse(
                        r.request_id, protocol.ERR_UNAVAILABLE, str(exc)
                    )
                    for r in requests
                ]
            self.served += len(requests)
            self._meter_batch(requests, started, ok=True)
            return [
                protocol.BeaconResponse(
                    r.request_id, round_.round_number, round_.output, round_.value
                )
                for r in requests
            ]
        if len(requests) > 1 and isinstance(requests[0], protocol.DprfEvalRequest):
            started = time.perf_counter()
            unique_tags = list(dict.fromkeys(r.tag for r in requests))
            outputs: dict[bytes, object] = {}
            for tag, outcome in zip(
                unique_tags,
                await asyncio.gather(
                    *(self.dprf_eval(tag) for tag in unique_tags),
                    return_exceptions=True,
                ),
            ):
                outputs[tag] = outcome
            responses = []
            for request in requests:
                outcome = outputs[request.tag]
                if isinstance(outcome, BaseException):
                    self.failed += 1
                    self._meter_batch([request], started, ok=False)
                    responses.append(
                        protocol.ErrorResponse(
                            request.request_id,
                            protocol.ERR_UNAVAILABLE
                            if isinstance(outcome, ServiceUnavailable)
                            else protocol.ERR_FAILED,
                            str(outcome),
                        )
                    )
                else:
                    self.served += 1
                    self._meter_batch([request], started, ok=True)
                    responses.append(
                        protocol.DprfResponse(request.request_id, outcome)
                    )
            return responses
        return list(await asyncio.gather(*(self.handle(r) for r in requests)))
