"""A concurrent load generator for the serving layer (``repro loadgen``).

:class:`ServiceClient` is a minimal pipelining client: requests carry
client-chosen correlation ids, a single reader task matches responses
back to awaiting futures, so one connection can have many requests in
flight.  :class:`LoadGenerator` opens ``clients`` such connections and
drives a closed loop on each (issue, await, repeat), measuring
per-request wall latency; the report carries p50/p99, throughput and
the busy-rejection count — the numbers the E13 benchmark and the CI
smoke step read off.

Signatures are verified client-side against the service's STATUS
response (group + public key): a threshold signature is just a Schnorr
signature, so the client needs nothing but the group parameters.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass, field

from repro.analysis import percentile
from repro.crypto import schnorr
from repro.net import wire
from repro.service import protocol
from repro.service.shard import api as shard_api

_CONNECT_ATTEMPTS = 40
_CONNECT_BACKOFF_S = 0.25
_BUSY_RETRIES = 50
_BUSY_BACKOFF_S = 0.05

OPS = ("sign", "beacon", "dprf", "decrypt", "status", "mix", "shard")


class ServiceClient:
    """One pipelined client connection to a service frontend."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        group=None,
    ):
        self._reader = reader
        self._writer = writer
        # Element-decoding context for responses (and element-bearing
        # requests); STATUS responses are self-describing, so the first
        # status round-trip can bootstrap this from None.
        self.group = group
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        group=None,
        attempts: int = _CONNECT_ATTEMPTS,
        backoff: float = _CONNECT_BACKOFF_S,
    ) -> "ServiceClient":
        """Dial the frontend, retrying while the service boots."""
        last: Exception = ConnectionError(f"no route to {host}:{port}")
        for attempt in range(attempts):
            try:
                reader, writer = await asyncio.open_connection(host, port)
                return cls(reader, writer, group=group)
            except (ConnectionError, OSError) as exc:
                last = exc
                await asyncio.sleep(backoff * min(attempt + 1, 4))
        raise ConnectionError(f"service at {host}:{port} unreachable: {last}")

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(4)
                body = await self._reader.readexactly(
                    int.from_bytes(header, "big")
                )
                response = wire.decode(header + body, group=self.group)
                future = self._pending.pop(response.request_id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            wire.WireError,
        ) as exc:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError(f"stream lost: {exc}"))
            self._pending.clear()
        except asyncio.CancelledError:
            pass

    async def request(self, build) -> object:
        """Send ``build(request_id)`` and await the matching response."""
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(wire.encode(build(request_id), group=self.group))
        await self._writer.drain()
        return await future

    # -- typed conveniences ----------------------------------------------------

    async def sign(self, message: bytes) -> object:
        return await self.request(lambda rid: protocol.SignRequest(rid, message))

    async def beacon_next(self) -> object:
        return await self.request(protocol.BeaconNextRequest)

    async def beacon_get(self, round_number: int) -> object:
        return await self.request(
            lambda rid: protocol.BeaconGetRequest(rid, round_number)
        )

    async def dprf_eval(self, tag: bytes) -> object:
        return await self.request(lambda rid: protocol.DprfEvalRequest(rid, tag))

    async def decrypt(self, c1, pad: bytes) -> object:
        return await self.request(
            lambda rid: protocol.DecryptRequest(rid, c1, pad)
        )

    async def status(self) -> protocol.StatusResponse:
        response = await self.request(protocol.StatusRequest)
        if not isinstance(response, protocol.StatusResponse):
            raise RuntimeError(f"status failed: {response}")
        return response

    async def ops(self) -> dict:
        """Fetch the server's live observability snapshot (codec v5)."""
        response = await self.request(protocol.OpsRequest)
        if not isinstance(response, protocol.OpsResponse):
            raise RuntimeError(f"ops failed: {response}")
        return json.loads(response.snapshot.decode())

    # -- shard-router conveniences (codec v6) ----------------------------------

    async def shard_sign(self, key_id: bytes, message: bytes) -> object:
        return await self.request(
            lambda rid: shard_api.ShardSignRequest(rid, key_id, message)
        )

    async def shard_status(self, key_id: bytes) -> protocol.StatusResponse:
        response = await self.request(
            lambda rid: shard_api.ShardStatusRequest(rid, key_id)
        )
        if not isinstance(response, protocol.StatusResponse):
            raise RuntimeError(f"shard status failed: {response}")
        return response

    async def fleet_ops(self) -> dict:
        """The router's aggregated fleet snapshot (see repro.obs.fleet)."""
        response = await self.request(shard_api.FleetOpsRequest)
        if not isinstance(response, shard_api.FleetOpsResponse):
            raise RuntimeError(f"fleet ops failed: {response}")
        return json.loads(response.snapshot.decode())

    async def shardctl(self, op: str, shard_id: str = "") -> dict:
        """Administer the shard set; returns the outcome document."""
        response = await self.request(
            lambda rid: shard_api.ShardCtlRequest(rid, op, shard_id)
        )
        if isinstance(response, protocol.ErrorResponse):
            raise RuntimeError(
                f"shardctl {op} failed: {response.detail}"
            )
        if not isinstance(response, shard_api.ShardCtlResponse):
            raise RuntimeError(f"shardctl {op} failed: {response}")
        return json.loads(response.document.decode())


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    clients: int
    completed: int = 0
    presig_hits: int = 0
    errors: int = 0
    busy_rejections: int = 0
    invalid_signatures: int = 0
    wall_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    # The server's OPS snapshot (schema/status/metrics), when the
    # frontend speaks codec v5; None against older servers.
    server_snapshot: dict | None = None

    def _percentile(self, fraction: float) -> float:
        if not self.latencies:
            return 0.0
        return percentile(sorted(self.latencies), fraction)

    @property
    def p50_ms(self) -> float:
        return self._percentile(0.50) * 1000

    @property
    def p99_ms(self) -> float:
        return self._percentile(0.99) * 1000

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def as_dict(self) -> dict:
        report = {
            "clients": self.clients,
            "completed": self.completed,
            "presig_hits": self.presig_hits,
            "errors": self.errors,
            "busy_rejections": self.busy_rejections,
            "invalid_signatures": self.invalid_signatures,
            "wall_seconds": round(self.wall_seconds, 4),
            "p50_ms": round(self.p50_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
            "throughput_rps": round(self.throughput, 2),
        }
        if self.server_snapshot is not None:
            report["server"] = self.server_snapshot
        return report


class LoadGenerator:
    """Closed-loop concurrent clients against one service frontend."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        clients: int = 8,
        requests_per_client: int = 10,
        op: str = "sign",
        payload_bytes: int = 16,
        expect_backend: str | None = None,
        keys: int = 16,
    ):
        if op not in OPS:
            raise ValueError(f"unknown op {op!r} (choose from {OPS})")
        if keys < 1:
            raise ValueError("keys must be >= 1")
        self.host = host
        self.port = port
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.op = op
        self.payload_bytes = payload_bytes
        self.expect_backend = expect_backend
        # Shard mode: requests spread over this many distinct key ids,
        # so consistent hashing exercises every shard of the fleet.
        self.keys = keys
        self._group = None
        self._public_key = 0
        self._shard_pubkeys: dict[bytes, int] = {}

    async def run(self) -> LoadReport:
        report = LoadReport(clients=self.clients)
        probe = await ServiceClient.connect(self.host, self.port)
        try:
            if self.op == "shard":
                # Against a shard router there is no fleet-wide public
                # key: resolve each key id's owning committee up front
                # (STATUS per key) so signatures verify per shard.
                for index in range(self.keys):
                    key_id = self._key_id(index)
                    status = await probe.shard_status(key_id)
                    self._shard_pubkeys[key_id] = status.public_key
            else:
                status = await probe.status()
                self._public_key = status.public_key
            self._group = wire._group_from_name(status.group_name)
        finally:
            await probe.close()
        if self.expect_backend is not None:
            actual = (
                "secp256k1" if status.group_name == "secp256k1" else "modp"
            )
            if actual != self.expect_backend:
                raise RuntimeError(
                    f"service runs the {actual} backend "
                    f"({status.group_name!r}), expected {self.expect_backend}"
                )
        connections = await asyncio.gather(
            *(
                ServiceClient.connect(self.host, self.port, group=self._group)
                for _ in range(self.clients)
            )
        )
        start = time.perf_counter()
        try:
            await asyncio.gather(
                *(
                    self._drive(client_id, connection, report)
                    for client_id, connection in enumerate(connections)
                )
            )
        finally:
            report.wall_seconds = time.perf_counter() - start
            await asyncio.gather(
                *(connection.close() for connection in connections)
            )
        # Merge the server's view: client percentiles are half the
        # story; the OPS snapshot adds pool depth, refill lag and
        # server-side per-kind latency.  Older servers (codec < 5)
        # break the connection on the unknown frame — tolerate that.
        try:
            probe = await ServiceClient.connect(
                self.host, self.port, group=self._group, attempts=2
            )
            try:
                report.server_snapshot = (
                    await probe.fleet_ops()
                    if self.op == "shard"
                    else await probe.ops()
                )
            finally:
                await probe.close()
        except Exception:
            report.server_snapshot = None
        return report

    def _op_for(self, client_id: int, sequence: int) -> str:
        if self.op != "mix":
            return self.op
        return ("sign", "beacon", "dprf", "status")[
            (client_id + sequence) % 4
        ]

    async def _drive(
        self, client_id: int, client: ServiceClient, report: LoadReport
    ) -> None:
        for sequence in range(self.requests_per_client):
            op = self._op_for(client_id, sequence)
            started = time.perf_counter()
            try:
                response = await self._issue(client, client_id, sequence, op, report)
            except (ConnectionError, RuntimeError):
                report.errors += 1
                continue
            elapsed = time.perf_counter() - started
            if isinstance(response, protocol.ErrorResponse):
                report.errors += 1
                continue
            report.completed += 1
            report.latencies.append(elapsed)
            if isinstance(response, protocol.SignResponse):
                if response.presig_used:
                    report.presig_hits += 1
                if not self._verify(
                    client_id, sequence, response
                ):  # pragma: no cover - would flag a service bug
                    report.invalid_signatures += 1

    def _payload(self, client_id: int, sequence: int) -> bytes:
        seedline = f"load|{client_id}|{sequence}|".encode()
        return (seedline * (self.payload_bytes // len(seedline) + 1))[
            : self.payload_bytes
        ]

    def _key_id(self, index: int) -> bytes:
        return f"key-{index % self.keys}".encode()

    def _verify(
        self, client_id: int, sequence: int, response: protocol.SignResponse
    ) -> bool:
        if self._group is None:
            return True
        public_key = self._public_key
        if self.op == "shard":
            public_key = self._shard_pubkeys[
                self._key_id(client_id + sequence)
            ]
        return schnorr.verify(
            self._group,
            public_key,
            self._payload(client_id, sequence),
            schnorr.Signature(response.challenge, response.response),
        )

    async def _issue(
        self,
        client: ServiceClient,
        client_id: int,
        sequence: int,
        op: str,
        report: LoadReport,
    ) -> object:
        for attempt in range(_BUSY_RETRIES):
            response = await self._issue_once(client, client_id, sequence, op)
            if (
                isinstance(response, protocol.ErrorResponse)
                and response.code == protocol.ERR_BUSY
            ):
                # Backpressure: the polite client backs off and retries.
                report.busy_rejections += 1
                await asyncio.sleep(_BUSY_BACKOFF_S * (attempt + 1))
                continue
            return response
        return response

    async def _issue_once(
        self, client: ServiceClient, client_id: int, sequence: int, op: str
    ) -> object:
        if op == "sign":
            return await client.sign(self._payload(client_id, sequence))
        if op == "shard":
            return await client.shard_sign(
                self._key_id(client_id + sequence),
                self._payload(client_id, sequence),
            )
        if op == "beacon":
            return await client.beacon_next()
        if op == "dprf":
            return await client.dprf_eval(self._payload(client_id, sequence))
        if op == "decrypt":
            raise RuntimeError(
                "decrypt load requires a ciphertext; use the Python API"
            )
        return await client.status()


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 7710,
    *,
    clients: int = 8,
    requests_per_client: int = 10,
    op: str = "sign",
    payload_bytes: int = 16,
    expect_backend: str | None = None,
    keys: int = 16,
) -> LoadReport:
    """Synchronous convenience wrapper around :class:`LoadGenerator`."""
    generator = LoadGenerator(
        host,
        port,
        clients=clients,
        requests_per_client=requests_per_client,
        op=op,
        payload_bytes=payload_bytes,
        expect_backend=expect_backend,
        keys=keys,
    )
    return asyncio.run(generator.run())
