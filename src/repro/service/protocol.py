"""Client-facing request/response frames for the serving layer.

These are the messages that cross the *northbound* wire: an external
client speaks them to the :class:`~repro.service.frontend.ServiceFrontend`
gateway over the same length-prefixed binary framing as the protocol
traffic (:mod:`repro.net.wire`, codec version 2).  Each operation maps
to one of the threshold applications the paper motivates DKG with
(§1): SIGN to threshold Schnorr, BEACON_* to the chained randomness
beacon, DPRF_EVAL to the DDH distributed PRF, DECRYPT to threshold
(hashed) ElGamal, STATUS to service introspection.

Every request carries a client-chosen ``request_id`` echoed in the
response, so a client may pipeline many requests on one connection and
correlate out-of-order completions.  The gateway answers every request
with exactly one frame: the matching ``*Response`` on success, or an
:class:`ErrorResponse` carrying one of the ``ERR_*`` codes (``ERR_BUSY``
is the backpressure signal — the bounded queue or the per-client
in-flight cap was hit).
"""

from __future__ import annotations

from dataclasses import dataclass

# Error codes carried by ErrorResponse.
ERR_BUSY = 1  # backpressure: request queue or per-client cap full
ERR_BAD_REQUEST = 2  # malformed/unsupported operation parameters
ERR_UNAVAILABLE = 3  # too few live signers to reach the threshold
ERR_FAILED = 4  # operation ran but could not produce a valid result

ERROR_NAMES = {
    ERR_BUSY: "busy",
    ERR_BAD_REQUEST: "bad-request",
    ERR_UNAVAILABLE: "unavailable",
    ERR_FAILED: "failed",
}


# -- requests ------------------------------------------------------------------


@dataclass(frozen=True)
class SignRequest:
    """Produce a threshold Schnorr signature over ``message``."""

    request_id: int
    message: bytes

    kind = "svc.sign"


@dataclass(frozen=True)
class BeaconNextRequest:
    """Advance the randomness beacon and return the new round."""

    request_id: int

    kind = "svc.beacon-next"


@dataclass(frozen=True)
class BeaconGetRequest:
    """Fetch an already-published beacon round by number."""

    request_id: int
    round_number: int

    kind = "svc.beacon-get"


@dataclass(frozen=True)
class DprfEvalRequest:
    """Evaluate the distributed PRF f_s(tag) = H1(tag)^s."""

    request_id: int
    tag: bytes

    kind = "svc.dprf-eval"


@dataclass(frozen=True)
class DecryptRequest:
    """Threshold-decrypt a hashed-ElGamal ciphertext (c1, pad)."""

    request_id: int
    c1: int
    pad: bytes

    kind = "svc.decrypt"


@dataclass(frozen=True)
class StatusRequest:
    """Service introspection: thresholds, pool level, counters."""

    request_id: int

    kind = "svc.status"


@dataclass(frozen=True)
class OpsRequest:
    """Observability introspection: the cluster's metrics snapshot."""

    request_id: int

    kind = "svc.ops"


# -- responses -----------------------------------------------------------------


@dataclass(frozen=True)
class SignResponse:
    """A standard Schnorr signature (c, z) under the group key.

    ``presig_used`` reports whether the nonce came from the
    presignature pool (amortized) or an on-demand nonce DKG.
    """

    request_id: int
    challenge: int
    response: int
    presig_used: bool

    kind = "svc.sign.ok"


@dataclass(frozen=True)
class BeaconResponse:
    """One beacon round: chained output bytes + the group element."""

    request_id: int
    round_number: int
    output: bytes
    value: int

    kind = "svc.beacon.ok"


@dataclass(frozen=True)
class DprfResponse:
    """The PRF output string H2(H1(tag)^s)."""

    request_id: int
    output: bytes

    kind = "svc.dprf.ok"


@dataclass(frozen=True)
class DecryptResponse:
    """The recovered plaintext bytes."""

    request_id: int
    plaintext: bytes

    kind = "svc.decrypt.ok"


@dataclass(frozen=True)
class StatusResponse:
    """Service health snapshot.

    ``public_key`` is the DKG group key, letting clients verify
    signatures locally with plain :func:`repro.crypto.schnorr.verify`
    (threshold signatures are indistinguishable from single-signer
    ones); ``group_name`` resolves the parameters via
    :func:`repro.crypto.groups.group_by_name`.
    """

    request_id: int
    n: int
    t: int
    alive: int
    pool_ready: int
    pool_target: int
    served: int
    failed: int
    beacon_height: int
    public_key: int
    group_name: str

    kind = "svc.status.ok"


@dataclass(frozen=True)
class OpsResponse:
    """The metrics registry snapshot, JSON-encoded.

    ``snapshot`` is a UTF-8 JSON document ``{"schema": 1, "status":
    {...}, "metrics": {...}}`` — the same registry schema the
    ``/metrics.json`` HTTP endpoint serves, carried opaquely so new
    metric families never need a codec change.
    """

    request_id: int
    snapshot: bytes

    kind = "svc.ops.ok"


@dataclass(frozen=True)
class ErrorResponse:
    """Request-level failure; ``code`` is one of the ``ERR_*`` values."""

    request_id: int
    code: int
    detail: str

    kind = "svc.err"


REQUEST_TYPES = (
    SignRequest,
    BeaconNextRequest,
    BeaconGetRequest,
    DprfEvalRequest,
    DecryptRequest,
    StatusRequest,
    OpsRequest,
)

RESPONSE_TYPES = (
    SignResponse,
    BeaconResponse,
    DprfResponse,
    DecryptResponse,
    StatusResponse,
    OpsResponse,
    ErrorResponse,
)
