"""The shard router: M independent committees behind one dispatch surface.

:class:`ShardRouter` owns a set of :class:`ShardHandle`\\ s, each one
DKG committee with its own presignature pool — **embedded** (a
:class:`~repro.service.workers.ThresholdService` in this process, its
metrics scoped by a ``shard`` label) or **remote** (a service frontend
in another process, reached through a pipelined
:class:`~repro.service.loadgen.ServiceClient`).  A consistent-hash
ring (:mod:`repro.service.shard.ring`) maps every ``key_id`` to its
owning shard; the keyed requests of :mod:`repro.service.shard.api`
are unwrapped to the ordinary single-committee frames and dispatched
there, so a sharded signature is wire-identical to a plain one.

Live topology changes reuse the protocol machinery instead of
inventing ops-plane magic:

* **add** spins up a fresh committee — by embedded bootstrap DKG, or
  with ``commission="tcp"`` by running the full §6.1 agreement + §6.2
  member-addition lifecycle over real sockets
  (:func:`repro.net.groupmod.run_groupmod_cluster`) and commissioning
  the grown committee's key material directly as a service;
* **drain** retires a shard without failing anything in flight:
  *stop-routing* (the shard leaves the ring atomically with respect to
  routing decisions) → *wait for in-flight requests to complete* →
  *pool-flush* (unused one-time nonces are discarded on every worker)
  → *retire*.  Draining the last active shard is refused.

The router is deliberately duck-type-compatible with
``ThresholdService`` where the frontend machinery cares (``group``,
``handle``, ``handle_batch``), so :class:`ShardFrontend` is the
ordinary gateway with a different request-type gate.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from typing import Any

from repro.obs import metrics as obs_metrics
from repro.obs.fleet import merge_fleet
from repro.obs.logging import get_logger
from repro.service import protocol
from repro.service.loadgen import ServiceClient
from repro.service.shard import api
from repro.service.shard.ring import DEFAULT_VNODES, HashRing
from repro.service.workers import (
    ServiceConfig,
    ServiceUnavailable,
    ThresholdService,
)

ACTIVE = "active"
DRAINING = "draining"
RETIRED = "retired"

#: Seed spacing between shard committees — each shard's bootstrap DKG
#: and forge stream must be independent of its siblings'.
_SEED_STRIDE = 7919


class ShardHandle:
    """One committee as the router sees it: backend + routing state."""

    def __init__(
        self,
        shard_id: str,
        *,
        service: ThresholdService | None = None,
        remote: tuple[str, int] | None = None,
    ):
        if (service is None) == (remote is None):
            raise ValueError("a shard is embedded xor remote")
        self.shard_id = shard_id
        self.service = service
        self.remote = remote
        self.state = ACTIVE
        self.routed_total = 0
        self.inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._client: ServiceClient | None = None
        self._dial = asyncio.Lock()

    @property
    def embedded(self) -> bool:
        return self.service is not None

    # -- in-flight accounting (the drain barrier) ------------------------------

    def begin(self) -> None:
        self.inflight += 1
        self.routed_total += 1
        self._idle.clear()

    def end(self) -> None:
        self.inflight -= 1
        if self.inflight <= 0:
            self._idle.set()

    async def wait_idle(self) -> None:
        await self._idle.wait()

    # -- backend access --------------------------------------------------------

    async def client(self) -> ServiceClient:
        """The (lazily dialed) connection to a remote shard.  The dial
        is serialized: concurrent first requests must share one
        connection, not leak one each."""
        assert self.remote is not None
        if self._client is None:
            async with self._dial:
                if self._client is None:
                    host, port = self.remote
                    self._client = await ServiceClient.connect(host, port)
        return self._client

    async def dispatch(self, request) -> object:
        """Hand one single-committee request to the backend, preserving
        the caller's correlation id across the remote hop."""
        if self.service is not None:
            return await self.service.handle(request)
        client = await self.client()
        response = await client.request(
            lambda rid: dataclasses.replace(request, request_id=rid)
        )
        return dataclasses.replace(response, request_id=request.request_id)

    async def ops_document(self) -> dict:
        """The shard's OPS snapshot as a dict (either backend)."""
        if self.service is not None:
            return json.loads(self.service.ops().snapshot.decode())
        client = await self.client()
        return await client.ops()

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()
            self._client = None


class ShardRouter:
    """Consistent-hash routing + lifecycle over a fleet of committees."""

    def __init__(
        self,
        template: ServiceConfig,
        *,
        vnodes: int = DEFAULT_VNODES,
    ):
        self.template = template
        self.group = template.group
        self.ring = HashRing(vnodes=vnodes)
        self.handles: dict[str, ShardHandle] = {}
        self.logger = get_logger("repro.service.shard")
        self._counter = 0
        # Serializes routing decisions against membership changes, so a
        # request is never routed to a shard after drain removed it.
        self._lock = asyncio.Lock()

    # -- lifecycle -------------------------------------------------------------

    async def start(self, shards: int = 1, *, prefill: bool = True) -> None:
        """Bring up ``shards`` embedded committees."""
        if shards < 1:
            raise ValueError("a router needs at least one shard")
        for _ in range(shards):
            await self.add_shard(prefill=prefill)

    async def stop(self) -> None:
        for handle in self.handles.values():
            if handle.service is not None and handle.state != RETIRED:
                await handle.service.stop()
            await handle.close()

    def _next_id(self) -> str:
        while (sid := f"shard-{self._counter}") in self.handles:
            self._counter += 1
        self._counter += 1
        return sid

    def _shard_config(self, shard_id: str, index: int, **overrides) -> ServiceConfig:
        return dataclasses.replace(
            self.template,
            seed=self.template.seed + _SEED_STRIDE * (index + 1),
            shard=shard_id,
            **overrides,
        )

    # -- topology: add ---------------------------------------------------------

    async def add_shard(
        self,
        shard_id: str | None = None,
        *,
        commission: str = "embedded",
        prefill: bool = True,
    ) -> ShardHandle:
        """Commission a fresh committee and put it in rotation.

        ``commission="embedded"`` bootstraps the committee's DKG in the
        deterministic embedded runtime; ``commission="tcp"`` runs the
        §6.1 + §6.2 lifecycle over real sockets — an n-member committee
        bootstraps, agrees on an add proposal, reshares to the joiner —
        and commissions the resulting (n+1)-member committee's key
        material directly (the shard then serves n+1 workers).
        """
        if commission not in ("embedded", "tcp"):
            raise ValueError(f"unknown commission mode {commission!r}")
        async with self._lock:
            sid = shard_id or self._next_id()
            if sid in self.handles:
                raise ValueError(f"shard {sid!r} already exists")
            index = len(self.handles)
        if commission == "tcp":
            service = await self._commission_tcp(sid, index)
        else:
            config = self._shard_config(sid, index)
            # The bootstrap DKG is CPU-bound and synchronous; keep the
            # event loop (and any in-flight requests) responsive.
            service = await asyncio.to_thread(ThresholdService, config)
        await service.start(prefill=prefill)
        handle = ShardHandle(sid, service=service)
        async with self._lock:
            self.handles[sid] = handle
            self.ring.add(sid)
        self.logger.info(
            "shard %s commissioned (%s, n=%d)", sid, commission, service.config.n
        )
        return handle

    async def _commission_tcp(self, shard_id: str, index: int) -> ThresholdService:
        from repro.dkg.config import DkgConfig
        from repro.net.groupmod import run_groupmod_cluster

        config = self._shard_config(shard_id, index)
        dkg_config = DkgConfig(
            n=config.n, t=config.t, f=config.f, group=config.group
        )
        # run_groupmod_cluster owns its own event loop (asyncio.run);
        # it must not run on ours.
        result = await asyncio.to_thread(
            run_groupmod_cluster, dkg_config, config.seed
        )
        if not result.succeeded:
            raise RuntimeError(
                f"shard {shard_id}: groupmod commissioning failed "
                f"({[str(e) for e in result.errors] or 'join incomplete'})"
            )
        grown = dataclasses.replace(config, n=config.n + 1)
        return await asyncio.to_thread(
            ThresholdService, grown, bootstrap=result
        )

    async def add_remote_shard(
        self, shard_id: str, host: str, port: int
    ) -> ShardHandle:
        """Put an already-serving frontend (another process) in
        rotation as a shard."""
        async with self._lock:
            if shard_id in self.handles:
                raise ValueError(f"shard {shard_id!r} already exists")
            handle = ShardHandle(shard_id, remote=(host, port))
            self.handles[shard_id] = handle
            self.ring.add(shard_id)
        self.logger.info("remote shard %s at %s:%d in rotation", shard_id, host, port)
        return handle

    # -- topology: drain -------------------------------------------------------

    async def drain(self, shard_id: str) -> dict:
        """Retire ``shard_id``: stop-routing → wait in-flight →
        pool-flush → retire.  Returns the drain report document."""
        async with self._lock:
            handle = self.handles.get(shard_id)
            if handle is None:
                raise ValueError(f"no shard {shard_id!r}")
            if handle.state != ACTIVE:
                raise ValueError(f"shard {shard_id!r} is {handle.state}")
            active = [
                h for h in self.handles.values() if h.state == ACTIVE
            ]
            if len(active) <= 1:
                raise ValueError("refusing to drain the last active shard")
            # Stop-routing happens atomically with respect to routing
            # decisions: after this point route() cannot name the shard.
            self.ring.remove(shard_id)
            handle.state = DRAINING
        await handle.wait_idle()
        flushed = 0
        if handle.service is not None:
            # Stop first (the refill task must not replace what we
            # flush), then discard every pooled one-time nonce.
            await handle.service.stop()
            flushed = handle.service.flush_presignatures()
        await handle.close()
        handle.state = RETIRED
        self.logger.info(
            "shard %s retired (%d presignatures flushed)", shard_id, flushed
        )
        return {
            "api_version": api.SHARD_API_VERSION,
            "shard": shard_id,
            "state": RETIRED,
            "flushed_presignatures": flushed,
            "remote": not handle.embedded,
            "ring": self.ring.describe(),
        }

    # -- introspection ---------------------------------------------------------

    def describe(self) -> dict:
        """The shard map: ring + per-shard routing state."""
        return {
            "api_version": api.SHARD_API_VERSION,
            "ring": self.ring.describe(),
            "shards": {
                sid: {
                    "state": handle.state,
                    "embedded": handle.embedded,
                    "inflight": handle.inflight,
                    "routed_total": handle.routed_total,
                }
                for sid, handle in sorted(self.handles.items())
            },
        }

    async def fleet_document(self) -> dict:
        """Aggregate every shard's OPS snapshot into the fleet view."""

        async def entry(handle: ShardHandle) -> dict[str, Any]:
            record: dict[str, Any] = {
                "state": handle.state,
                "inflight": handle.inflight,
                "routed_total": handle.routed_total,
                "labeled": handle.embedded,
                "document": None,
                "error": None,
            }
            if handle.state == RETIRED:
                record["error"] = "retired"
                return record
            try:
                record["document"] = await handle.ops_document()
            except Exception as exc:  # crashed shard: degrade, don't die
                record["error"] = f"{type(exc).__name__}: {exc}"
            return record

        items = sorted(self.handles.items())
        records = await asyncio.gather(*(entry(h) for _, h in items))
        document = merge_fleet(
            {sid: record for (sid, _), record in zip(items, records)},
            ring=self.ring.describe(),
        )
        document["api_version"] = api.SHARD_API_VERSION
        return document

    # -- request dispatch ------------------------------------------------------

    async def handle(self, request) -> object:
        """Map one shard-API request to its response (never raises)."""
        started = time.perf_counter()
        response = await self._handle_inner(request)
        kind = getattr(request, "kind", type(request).__name__)
        obs_metrics.observe(
            "repro_shard_router_request_seconds",
            time.perf_counter() - started,
            help="router request latency by request kind",
            kind=kind,
        )
        obs_metrics.counter_inc(
            "repro_shard_router_requests_total",
            help="router requests by kind and outcome",
            kind=kind,
            outcome="error"
            if isinstance(response, protocol.ErrorResponse)
            else "ok",
        )
        return response

    async def handle_batch(self, requests: list) -> list:
        return list(await asyncio.gather(*(self.handle(r) for r in requests)))

    async def _handle_inner(self, request) -> object:
        rid = request.request_id
        try:
            if isinstance(request, api.ShardSignRequest):
                return await self._keyed(
                    request.key_id,
                    protocol.SignRequest(rid, request.message),
                )
            if isinstance(request, api.ShardStatusRequest):
                return await self._keyed(
                    request.key_id, protocol.StatusRequest(rid)
                )
            if isinstance(request, api.FleetOpsRequest):
                document = await self.fleet_document()
                return api.FleetOpsResponse(rid, _json_bytes(document))
            if isinstance(request, api.ShardCtlRequest):
                return api.ShardCtlResponse(
                    rid, _json_bytes(await self.shardctl(request.op, request.shard_id))
                )
            raise ValueError(f"unsupported request {type(request).__name__}")
        except (ValueError, TypeError) as exc:
            return protocol.ErrorResponse(rid, protocol.ERR_BAD_REQUEST, str(exc))
        except ServiceUnavailable as exc:
            return protocol.ErrorResponse(rid, protocol.ERR_UNAVAILABLE, str(exc))
        except ConnectionError as exc:
            return protocol.ErrorResponse(
                rid, protocol.ERR_UNAVAILABLE, f"shard unreachable: {exc}"
            )
        except Exception as exc:
            return protocol.ErrorResponse(rid, protocol.ERR_FAILED, str(exc))

    async def _keyed(self, key_id: bytes, inner) -> object:
        """Route one keyed request: ring lookup and in-flight accounting
        are atomic against drain's stop-routing step."""
        if not key_id:
            raise ValueError("key_id must be non-empty")
        async with self._lock:
            shard_id = self.ring.route(key_id)  # KeyError when ring empty
            handle = self.handles[shard_id]
            handle.begin()
        obs_metrics.counter_inc(
            "repro_shard_router_routed_total",
            help="keyed requests routed, by owning shard",
            shard=shard_id,
        )
        try:
            return await handle.dispatch(inner)
        finally:
            handle.end()

    # -- admin -----------------------------------------------------------------

    async def shardctl(self, op: str, shard_id: str = "") -> dict:
        """The ``repro shardctl`` verbs (also the SHARDCTL frame)."""
        if op == "status":
            return self.describe()
        if op == "add":
            handle = await self.add_shard(shard_id or None)
            return {
                "api_version": api.SHARD_API_VERSION,
                "shard": handle.shard_id,
                "state": handle.state,
                "n": handle.service.config.n if handle.service else None,
                "ring": self.ring.describe(),
            }
        if op == "drain":
            if not shard_id:
                raise ValueError("drain needs a shard id")
            return await self.drain(shard_id)
        raise ValueError(f"unknown shardctl op {op!r}")


def _json_bytes(document: dict) -> bytes:
    return json.dumps(document, separators=(",", ":"), default=str).encode()
