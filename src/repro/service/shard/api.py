"""Versioned typed request/response models for the shard router.

This is the router's *client surface*: frozen dataclasses mirroring
:mod:`repro.service.protocol` (same correlation-id discipline, same
``kind`` strings, same framing via :mod:`repro.net.wire` — codec
version 6), shaped after the thin typed-model API slice the related
``neo4j-ai`` service uses in front of its backend.  The keyed data
path adds exactly one field to the single-committee frames — the
``key_id`` that consistent hashing maps to a shard — and the admin
path carries opaque JSON documents, so the shard map can grow fields
without another codec bump.

``SHARD_API_VERSION`` stamps every document the router emits
(``shardctl`` replies and fleet snapshots); clients check it the way
they check ``schema`` on OPS documents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.protocol import (
    ErrorResponse,
    SignResponse,
    StatusResponse,
)

SHARD_API_VERSION = 1

# Admin verbs carried by ShardCtlRequest, in wire order (encoded as a
# one-byte index — extend by appending only).
SHARDCTL_OPS = ("add", "drain", "status")


# -- keyed data path -----------------------------------------------------------


@dataclass(frozen=True)
class ShardSignRequest:
    """Threshold-sign ``message`` under the committee owning ``key_id``.

    Answered with the plain :class:`~repro.service.protocol.SignResponse`
    of the owning shard — a threshold signature is indistinguishable
    from a single-signer one, and so is a sharded one.
    """

    request_id: int
    key_id: bytes
    message: bytes

    kind = "svc.shard-sign"


@dataclass(frozen=True)
class ShardStatusRequest:
    """Introspect the shard owning ``key_id`` (its STATUS response
    carries the group name + public key a client verifies against)."""

    request_id: int
    key_id: bytes

    kind = "svc.shard-status"


# -- fleet observability -------------------------------------------------------


@dataclass(frozen=True)
class FleetOpsRequest:
    """One aggregated observability snapshot across every shard."""

    request_id: int

    kind = "svc.fleet-ops"


@dataclass(frozen=True)
class FleetOpsResponse:
    """The fleet snapshot, JSON-encoded.

    ``snapshot`` is a UTF-8 JSON document ``{"schema": 1,
    "api_version": 1, "fleet": {...}, "shards": {...}, "ring": {...},
    "metrics": {...}}`` (see :mod:`repro.obs.fleet`), carried opaquely
    for the same reason OPS snapshots are: new fields never need a
    codec change.
    """

    request_id: int
    snapshot: bytes

    kind = "svc.fleet-ops.ok"


# -- admin path ----------------------------------------------------------------


@dataclass(frozen=True)
class ShardCtlRequest:
    """Administer the shard set: ``add`` | ``drain`` | ``status``.

    ``shard_id`` names the target for ``drain`` (and optionally for
    ``add``); empty means "router's choice" for add and "whole map"
    for status.
    """

    request_id: int
    op: str
    shard_id: str

    kind = "svc.shardctl"


@dataclass(frozen=True)
class ShardCtlResponse:
    """The admin outcome as a JSON document (api_version-stamped)."""

    request_id: int
    document: bytes

    kind = "svc.shardctl.ok"


ROUTER_REQUEST_TYPES = (
    ShardSignRequest,
    ShardStatusRequest,
    FleetOpsRequest,
    ShardCtlRequest,
)

ROUTER_RESPONSE_TYPES = (
    SignResponse,
    StatusResponse,
    FleetOpsResponse,
    ShardCtlResponse,
    ErrorResponse,
)
