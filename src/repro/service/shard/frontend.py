"""The router's TCP surface: the ordinary gateway, shard-API framed.

:class:`ShardFrontend` is :class:`~repro.service.frontend.ServiceFrontend`
with exactly one thing changed — the set of frames it admits.  All the
load discipline (per-client in-flight caps, the bounded global queue,
ERR_BUSY shedding, drain-and-group batching) applies unchanged, because
the :class:`~repro.service.shard.router.ShardRouter` duck-types the
service the gateway drives: ``group``, ``handle`` and ``handle_batch``.
"""

from __future__ import annotations

from repro.service.frontend import ServiceFrontend
from repro.service.shard import api


class ShardFrontend(ServiceFrontend):
    """Accepts shard-API connections and drives the shard router."""

    request_types = api.ROUTER_REQUEST_TYPES
