"""repro.service.shard — M independent DKG committees behind one router.

The paper's unit of deployment is one committee of ``n`` nodes holding
one key.  A service for many keys runs *many* committees; this
subpackage is the layer that makes them look like one endpoint:

* :mod:`repro.service.shard.ring` — deterministic consistent-hash
  key→shard routing (stable under add/remove, pinned-vector tested);
* :mod:`repro.service.shard.api` — the versioned typed request/response
  models of the router's client surface (wire codec v6);
* :mod:`repro.service.shard.router` — :class:`ShardRouter`: per-shard
  :class:`~repro.service.workers.ThresholdService` committees (embedded
  or remote processes), live add — optionally commissioning the new
  committee through the §6.2 groupmod lifecycle over real TCP — and
  drain (stop-routing → wait in-flight → pool-flush → retire), plus
  fleet ops aggregation (:mod:`repro.obs.fleet`);
* :mod:`repro.service.shard.frontend` — :class:`ShardFrontend`, the
  router's TCP surface (the gateway's accept/backpressure/dispatch
  machinery, accepting the shard API frames).

Exports are lazy (PEP 562) so :mod:`repro.net.wire` can register the
v6 frame codecs without importing the server machinery.
"""

from __future__ import annotations

_EXPORTS = {
    "HashRing": "ring",
    "ShardFrontend": "frontend",
    "ShardHandle": "router",
    "ShardRouter": "router",
    "SHARD_API_VERSION": "api",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
