"""Consistent-hash key→shard routing for the multi-committee layer.

One shard is one DKG committee; the router in front of M of them must
send every operation on a given key id to the *same* committee (the key
share only exists there) while keeping the key space balanced and —
critically for live add/drain — moving as few keys as possible when the
shard set changes.  A classic consistent-hash ring does exactly that:
each shard owns ``vnodes`` pseudo-random points on a 64-bit circle, a
key routes to the first shard point clockwise of its own hash, and
adding or removing one shard only reassigns the arcs adjacent to that
shard's points (~1/M of the key space) instead of reshuffling
everything.

Determinism is a contract here, not an accident: the point placement is
pure SHA-256 over domain-separated inputs, with no process-local salt,
so every router instance — today's and next release's — routes a key
identically.  ``tests/service/test_shard_ring.py`` pins a golden
routing vector; a change that silently reshuffles the ring fails it.
"""

from __future__ import annotations

import bisect
import hashlib

DEFAULT_VNODES = 64

# Domain-separation tags: shard points and key points must never
# collide structurally, and neither may drift between releases.
_RING_TAG = b"repro-shard-ring|"
_KEY_TAG = b"repro-shard-key|"


def _shard_point(shard_id: str, replica: int) -> int:
    payload = _RING_TAG + shard_id.encode() + b"|" + replica.to_bytes(4, "big")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def key_point(key_id: bytes) -> int:
    """A key's position on the 64-bit circle."""
    return int.from_bytes(hashlib.sha256(_KEY_TAG + key_id).digest()[:8], "big")


class HashRing:
    """A deterministic consistent-hash ring over shard ids.

    ``version`` increments on every membership change, so snapshots of
    the shard map (STATUS / fleet ops) can be ordered and a client can
    tell a stale map from a current one.
    """

    def __init__(self, *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.version = 0
        self._members: set[str] = set()
        # Sorted lockstep arrays: point value -> owning shard.  Ties
        # (astronomically unlikely 64-bit collisions) resolve by shard
        # id via the tuple sort, keeping the ring order deterministic.
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []

    # -- membership ------------------------------------------------------------

    def add(self, shard_id: str) -> None:
        if not shard_id:
            raise ValueError("shard id must be non-empty")
        if shard_id in self._members:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        self._members.add(shard_id)
        for replica in range(self.vnodes):
            entry = (_shard_point(shard_id, replica), shard_id)
            index = bisect.bisect(self._points, entry)
            self._points.insert(index, entry)
            self._hashes.insert(index, entry[0])
        self.version += 1

    def remove(self, shard_id: str) -> None:
        if shard_id not in self._members:
            raise KeyError(f"shard {shard_id!r} is not on the ring")
        self._members.discard(shard_id)
        kept = [entry for entry in self._points if entry[1] != shard_id]
        self._points = kept
        self._hashes = [point for point, _ in kept]
        self.version += 1

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def shards(self) -> list[str]:
        return sorted(self._members)

    # -- routing ---------------------------------------------------------------

    def route(self, key_id: bytes) -> str:
        """The shard owning ``key_id`` — first point clockwise."""
        if not self._points:
            raise KeyError("ring is empty")
        index = bisect.bisect_right(self._hashes, key_point(key_id))
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._points[index][1]

    def spread(self, keys: list[bytes]) -> dict[str, int]:
        """Keys-per-shard histogram (balance diagnostics and tests)."""
        counts = {shard: 0 for shard in self._members}
        for key in keys:
            counts[self.route(key)] += 1
        return counts

    def describe(self) -> dict:
        """The shard-map document STATUS/fleet snapshots embed."""
        return {
            "vnodes": self.vnodes,
            "version": self.version,
            "shards": self.shards,
        }
