"""repro.service — a client-facing threshold-crypto serving layer.

The paper's opening claim (§1) is that a practical *dealerless* DKG is
the missing building block for Internet-scale distributed services:
threshold signatures, threshold encryption, distributed PRFs, random
oracles and coin tossing all start from a shared key that no dealer
ever held.  :mod:`repro.dkg` produces that key and :mod:`repro.net`
runs the protocol over real sockets; this package is the layer §1
promises on top — a long-running service that external clients can
actually send requests to:

* :mod:`repro.service.protocol` — the client wire frames (SIGN,
  BEACON_NEXT/GET, DPRF_EVAL, DECRYPT, STATUS) on the
  :mod:`repro.net.wire` framing, codec version 2;
* :mod:`repro.service.workers` — per-node request handlers holding the
  key/nonce shares, threshold fan-out with batch partial verification,
  and :class:`ThresholdService`, the assembled service (bootstrap DKG,
  workers, pool, beacon chain);
* :mod:`repro.service.presig` — the presignature pool: signing needs a
  *fresh shared nonce, which is another DKG* (§1's "building block"
  observation cuts both ways) — the pool keeps K nonce DKGs
  precomputed off the request path, refills at a low watermark and
  invalidates entries a crashed node contributed to;
* :mod:`repro.service.frontend` — the asyncio TCP gateway with
  per-client backpressure, a bounded request queue and request
  batching;
* :mod:`repro.service.loadgen` — a concurrent client load generator
  with latency percentiles (``repro loadgen``);
* :mod:`repro.service.shard` — the multi-committee layer: a
  consistent-hash router over M independent committees with live
  add/drain (§6.2 over real sockets) and fleet ops aggregation
  (``repro serve --shards``, ``repro shardctl``, codec version 6).

Exports are lazy (PEP 562) so :mod:`repro.net.wire` can register the
protocol frame codecs without importing the server machinery.
"""

from __future__ import annotations

_EXPORTS = {
    "ERR_BAD_REQUEST": "protocol",
    "ERR_BUSY": "protocol",
    "ERR_FAILED": "protocol",
    "ERR_UNAVAILABLE": "protocol",
    "HashRing": "shard.ring",
    "LoadGenerator": "loadgen",
    "LoadReport": "loadgen",
    "PresigPool": "presig",
    "Presignature": "presig",
    "ServiceClient": "loadgen",
    "ServiceConfig": "workers",
    "ServiceFrontend": "frontend",
    "ServiceUnavailable": "workers",
    "ShardFrontend": "shard.frontend",
    "ShardHandle": "shard.router",
    "ShardRouter": "shard.router",
    "SignerWorker": "workers",
    "ThresholdService": "workers",
    "WorkerCrashed": "workers",
    "run_loadgen": "loadgen",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
