"""The asyncio gateway: client sockets in, threshold fan-out behind.

One :class:`ServiceFrontend` owns a TCP server speaking the service
frames of :mod:`repro.service.protocol` (codec v2 on the
:mod:`repro.net.wire` framing).  Load discipline, in order:

1. **per-client backpressure** — each connection may have at most
   ``max_inflight_per_client`` requests outstanding; excess requests
   are answered immediately with ``ERR_BUSY`` instead of being
   buffered without bound;
2. **a bounded request queue** — one global queue of
   ``max_queue`` admitted requests; when it is full, new arrivals get
   ``ERR_BUSY`` (shed load early, at the cheap layer);
3. **request batching** — the dispatcher drains up to ``batch_max``
   already-queued requests at a time and groups them by kind, so
   compatible work is handed to
   :meth:`~repro.service.workers.ThresholdService.handle_batch`
   together (BEACON_NEXT coalesces into one round advance, DPRF_EVAL
   deduplicates tags, SIGNs run concurrently).  Draining never waits:
   under light load a lone request is dispatched immediately.

Responses are written back on the requesting connection, serialized by
a per-connection lock so frames from concurrent handlers never
interleave.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.net import wire
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.service import protocol
from repro.service.workers import ThresholdService

_DEFAULT_MAX_QUEUE = 256
_DEFAULT_CLIENT_INFLIGHT = 32
_DEFAULT_BATCH_MAX = 16


@dataclass
class _ClientConn:
    """Per-connection bookkeeping: serialized writes + in-flight cap."""

    writer: asyncio.StreamWriter
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    inflight: int = 0
    closed: bool = False

    async def send(self, response: object, group) -> None:
        if self.closed:
            return
        frame = wire.encode(response, group=group)
        async with self.lock:
            if self.closed:
                return
            try:
                self.writer.write(frame)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closed = True


class ServiceFrontend:
    """Accepts client connections and drives the threshold service."""

    # The frame types this frontend admits; subclasses serving a
    # different dispatch surface (the shard router) override this.
    request_types: tuple[type, ...] = protocol.REQUEST_TYPES

    def __init__(
        self,
        service: ThresholdService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_queue: int = _DEFAULT_MAX_QUEUE,
        max_inflight_per_client: int = _DEFAULT_CLIENT_INFLIGHT,
        batch_max: int = _DEFAULT_BATCH_MAX,
    ):
        if max_queue < 1 or max_inflight_per_client < 1 or batch_max < 1:
            raise ValueError("frontend capacities must be >= 1")
        self.service = service
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.max_inflight_per_client = max_inflight_per_client
        self.batch_max = batch_max
        self.rejected_busy = 0
        self.connections_total = 0
        self.logger = get_logger("repro.service.frontend")
        self._queue: asyncio.Queue[tuple[_ClientConn, object]] = asyncio.Queue()
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._batch_tasks):
            task.cancel()
        if self._batch_tasks:
            await asyncio.gather(*self._batch_tasks, return_exceptions=True)

    async def __aenter__(self) -> "ServiceFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- the accept path -------------------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_total += 1
        obs_metrics.counter_inc(
            "repro_service_connections_total",
            help="client connections accepted by the gateway",
        )
        self.logger.debug("client connected (%d total)", self.connections_total)
        client = _ClientConn(writer)
        try:
            while True:
                header = await reader.readexactly(4)
                length = int.from_bytes(header, "big")
                if length > wire.MAX_FRAME_BYTES:
                    break  # garbled stream: close rather than resync
                body = await reader.readexactly(length)
                try:
                    request = wire.decode(
                        header + body, group=self.service.group
                    )
                except wire.WireError:
                    break
                if not isinstance(request, self.request_types):
                    await client.send(
                        protocol.ErrorResponse(
                            getattr(request, "request_id", 0),
                            protocol.ERR_BAD_REQUEST,
                            f"not a service request: {type(request).__name__}",
                        ),
                        self.service.group,
                    )
                    continue
                await self._admit(client, request)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            client.closed = True
            writer.close()
            self.logger.debug("client disconnected")

    async def _admit(self, client: _ClientConn, request) -> None:
        """Apply both backpressure layers before queueing."""
        if (
            client.inflight >= self.max_inflight_per_client
            or self._queue.qsize() >= self.max_queue
        ):
            self.rejected_busy += 1
            obs_metrics.counter_inc(
                "repro_service_busy_rejections_total",
                help="requests shed with ERR_BUSY by the gateway",
            )
            await client.send(
                protocol.ErrorResponse(
                    request.request_id, protocol.ERR_BUSY, "service saturated"
                ),
                self.service.group,
            )
            return
        client.inflight += 1
        self._queue.put_nowait((client, request))
        obs_metrics.gauge_set(
            "repro_service_queue_depth",
            self._queue.qsize(),
            help="admitted requests waiting for the dispatcher",
        )

    # -- the dispatch path -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            drained = [first]
            while len(drained) < self.batch_max and not self._queue.empty():
                drained.append(self._queue.get_nowait())
            obs_metrics.gauge_set(
                "repro_service_queue_depth",
                self._queue.qsize(),
                help="admitted requests waiting for the dispatcher",
            )
            obs_metrics.observe(
                "repro_service_batch_size",
                len(drained),
                help="requests drained per dispatch cycle",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            )
            by_kind: dict[str, list[tuple[_ClientConn, object]]] = {}
            for item in drained:
                by_kind.setdefault(item[1].kind, []).append(item)
            for batch in by_kind.values():
                task = asyncio.create_task(self._run_batch(batch))
                self._batch_tasks.add(task)
                task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: list[tuple[_ClientConn, object]]) -> None:
        responses = await self.service.handle_batch([req for _, req in batch])
        for (client, _), response in zip(batch, responses):
            client.inflight -= 1
            await client.send(response, self.service.group)
