"""Share renewal (§5.2): the DKG modified for proactive refresh.

A :class:`RenewalNode` differs from a :class:`~repro.dkg.node.DkgNode`
in exactly the paper's three modifications:

1. On its local clock tick it reshares its previous-phase share
   ``s_{i, tau-1}`` (not a fresh random secret), then *erases* the old
   share and the dealt polynomials, and broadcasts its clock tick.
   Retransmitted ``send`` messages carry only commitments.
2. It waits for ``t + 1`` identical clock ticks before proceeding with
   the other Sh instances (incoming protocol messages are buffered
   until the gate opens).
3. On deciding ``Q`` it Lagrange-*interpolates* the received subshares
   at index 0 — ``s_i' = sum_d lambda_d^(Q,0) s_{i,d}`` — instead of
   summing them, and publishes the vector commitment
   ``V_l = prod_d ((C_d)_{l0})^(lambda_d)``.

The renewed shares lie on a fresh degree-t polynomial whose value at 0
is the *original* secret; old and new shares are mutually useless to a
mobile adversary (tested in tests/proactive/).

Each node additionally verifies that every dealer reshared the value it
was supposed to: the dealer's ``C[0][0]`` must equal the public
per-node share commitment ``g^{s_{d, tau-1}}`` derived from the
previous phase's commitment.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.polynomials import lagrange_coefficients
from repro.sim.node import Context
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.dkg.config import DkgConfig
from repro.dkg.messages import DkgCompletedOutput
from repro.dkg.node import DkgNode
from repro.proactive.messages import ClockTickMsg, RenewInput, RenewedOutput


def share_commitment_at(
    commitment: FeldmanCommitment | FeldmanVector, index: int
):
    """g^{share of node `index`} from either commitment shape.

    Both shapes evaluate through per-commitment Straus tables shared
    across indices, so deriving all n dealers' expected resharing
    targets costs one table build plus n O(t) evaluations instead of
    n O(t^2) exponentiation loops.
    """
    if isinstance(commitment, FeldmanCommitment):
        return commitment.share_commitment(index)
    return commitment.evaluate_in_exponent(index)


class RenewalNode(DkgNode):
    """One node of the share renewal protocol for phase ``phase``."""

    def __init__(
        self,
        node_id: int,
        config: DkgConfig,
        keystore: KeyStore,
        ca: CertificateAuthority,
        phase: int,
        prev_share: int | None,
        prev_commitment: FeldmanCommitment | FeldmanVector | None = None,
    ):
        # prev_share may be None for a member that holds no share of the
        # previous phase (e.g. freshly added at this phase boundary, §6.2
        # note on additions "at the start of a new phase"): it cannot
        # contribute a sharing but participates in everyone else's.
        super().__init__(
            node_id,
            config,
            keystore,
            ca,
            tau=phase,
            secret=prev_share if prev_share is not None else 0,
        )
        self._deals = prev_share is not None
        self.phase = phase
        if prev_commitment is not None:
            for dealer, session in self.sessions.items():
                session.expected_secret_commitment = share_commitment_at(
                    prev_commitment, dealer
                )
        self.ticks: set[int] = set()
        self._buffer: list[tuple[int, Any]] = []
        self.renewed: RenewedOutput | None = None

    # -- clock-tick gate (modifications 1 and 2) ------------------------------

    @property
    def _gate_open(self) -> bool:
        return len(self.ticks) >= self.config.t + 1

    def on_operator(self, payload: Any, ctx: Context) -> None:
        if isinstance(payload, RenewInput):
            self._local_tick(ctx)
        else:
            super().on_operator(payload, ctx)

    def _local_tick(self, ctx: Context) -> None:
        """Modification 1: reshare s_{i, tau-1}, erase, broadcast tick."""
        if self.started:
            return
        self.started = True
        if self._deals:
            session = self.sessions[self.node_id]
            session.start_dealing(self.secret, ctx)
            # Erasure: forget the old share (it lives on only as
            # subshares spread across the network) and the dealt rows.
            self.secret = None  # type: ignore[assignment]
            session.erase_dealt_polynomials()
        self.ticks.add(self.node_id)
        # Ticks go through the B log so that help-driven retransmission
        # lets a crashed-and-recovered node reopen its tick gate.
        self._log_and_broadcast(ctx, ClockTickMsg(self.phase))
        self._drain_buffer(ctx)

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        if isinstance(payload, ClockTickMsg):
            if payload.phase == self.phase:
                self.ticks.add(sender)
                self._drain_buffer(ctx)
            return
        if not self._gate_open:
            # Modification 2: hold protocol traffic until t+1 ticks.
            self._buffer.append((sender, payload))
            return
        super().on_message(sender, payload, ctx)

    def _drain_buffer(self, ctx: Context) -> None:
        if not self._gate_open or not self._buffer:
            return
        pending, self._buffer = self._buffer, []
        for sender, payload in pending:
            super().on_message(sender, payload, ctx)

    # -- modification 3: interpolate instead of sum ------------------------------

    def _try_complete(self, ctx: Context) -> None:
        if self.completed is not None or self.decided_q is None:
            return
        outputs = []
        for dealer in self.decided_q:
            session = self.sessions.get(dealer)
            if session is None or session.completed is None:
                return
            outputs.append((dealer, session.completed))
        group = self.config.group
        dealers = [d for d, _ in outputs]
        lambdas = lagrange_coefficients(dealers, 0, group.q)
        share = (
            sum(lam * out.share for lam, (_, out) in zip(lambdas, outputs))
            % group.q
        )
        # V_l = prod_{P_d in Q} ((C_d)_{l0})^{lambda_d^{Q,0}} — each
        # entry is one interleaved multiexp over the t+1 dealers in Q.
        entries = [
            group.multiexp(
                (out.commitment.matrix[ell][0], lam)
                for lam, (_, out) in zip(lambdas, outputs)
            )
            for ell in range(self.config.t + 1)
        ]
        vector = FeldmanVector(tuple(entries), group)
        self._stop_timer(ctx)
        self.renewed = RenewedOutput(self.phase, vector, share, self.decided_q)
        self.completed = DkgCompletedOutput(
            tau=self.tau,
            view=self.view,
            q_set=self.decided_q,
            commitment=vector,
            share=share,
            public_key=vector.public_key(),
        )
        ctx.output(self.renewed)
