"""Messages and outputs for the proactive protocols (§5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.feldman import FeldmanVector
from repro.vss.messages import WIRE_FRAME_OVERHEAD


@dataclass(frozen=True)
class ClockTickMsg:
    """A node announcing its local clock tick for ``phase`` (§5.1).

    Nodes wait for t+1 identical ticks before proceeding with the
    renewal Sh instances, which synchronizes phases without a common
    clock."""

    phase: int

    kind = "proactive.tick"

    def byte_size(self) -> int:
        return WIRE_FRAME_OVERHEAD + 4


@dataclass(frozen=True)
class RenewInput:
    """Operator: your local clock ticked for ``phase`` — start renewal."""

    phase: int

    kind = "proactive.in.renew"


@dataclass(frozen=True)
class RenewedOutput:
    """A node's result of share renewal for ``phase``.

    ``commitment`` is the degree-t univariate Feldman vector
    V_l = prod_d ((C_d)_l0)^(lambda_d) of §5.2; ``share`` the renewed
    share.  ``commitment.public_key()`` equals g^s for the *original*
    secret s — renewal never changes the secret."""

    phase: int
    commitment: FeldmanVector
    share: int
    q_set: tuple[int, ...]

    kind = "proactive.out.renewed"
