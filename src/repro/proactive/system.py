"""Multi-phase proactive DKG orchestration (§5).

:class:`ProactiveSystem` strings together an initial DKG (phase 0) and
successive share-renewal phases, each run as its own deterministic
simulation.  It tracks the authoritative share set and commitment
across phases, injects per-node clock skew (local clocks, §5.1),
applies per-phase crash/corruption schedules, and rotates the keys of
recovering nodes (§5.1's reboot procedure).

A mobile adversary is modelled by giving each phase its own corruption
set; the system records what the adversary saw (the corrupted nodes'
shares) so tests can check that cross-phase share collections are
useless.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.shares import Share, reconstruct_secret
from repro.sim.adversary import Adversary
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel, UniformDelay
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.sim.runner import Simulation
from repro.dkg.config import DkgConfig
from repro.dkg.runner import DkgResult, run_dkg
from repro.proactive.messages import RenewInput
from repro.proactive.renewal import RenewalNode


@dataclass
class PhaseReport:
    """Result of one renewal phase."""

    phase: int
    shares: dict[int, int]
    commitment: FeldmanVector
    metrics: Metrics
    exposed_shares: dict[int, int] = field(default_factory=dict)
    q_set: tuple[int, ...] = ()

    @property
    def public_key(self) -> int:
        return self.commitment.public_key()


class ProactiveSystem:
    """A long-lived (n, t, f) threshold system with periodic renewal."""

    def __init__(self, config: DkgConfig, seed: int = 0):
        self.config = config
        self.seed = seed
        self.phase = 0
        self.shares: dict[int, int] = {}
        self.commitment: FeldmanCommitment | FeldmanVector | None = None
        self.public_key: int | None = None
        self.reports: list[PhaseReport] = []
        self.adversary_view: dict[int, dict[int, int]] = {}  # phase -> node -> share
        self._rng = random.Random(("proactive", seed).__repr__())

    # -- phase 0: the initial DKG ----------------------------------------------

    def bootstrap(self, **kwargs: object) -> DkgResult:
        """Run the initial DKG and adopt its shares as phase 0."""
        result = run_dkg(self.config, seed=self.seed, **kwargs)  # type: ignore[arg-type]
        if not result.completions:
            raise RuntimeError("bootstrap DKG did not complete")
        self.shares = dict(result.shares)
        self.commitment = result.commitment
        self.public_key = result.public_key
        return result

    # -- renewal phases ------------------------------------------------------------

    def renew(
        self,
        corrupted: set[int] | None = None,
        crash_plan: list[tuple[float, int, float | None]] | None = None,
        delay_model: DelayModel | None = None,
        clock_skews: dict[int, float] | None = None,
        until: float | None = None,
    ) -> PhaseReport:
        """Run one share-renewal phase.

        ``corrupted`` — the mobile adversary's choice of nodes *this
        phase* (their current shares are recorded as exposed); they
        still follow the protocol (honest-but-curious corruption),
        which suffices for the mobile-adversary privacy experiments.
        ``crash_plan`` — per-phase crash/recovery schedule.
        ``clock_skews`` — per-node local-clock offsets for the tick.
        """
        if self.commitment is None:
            raise RuntimeError("bootstrap() must run before renew()")
        corrupted = corrupted or set()
        if len(corrupted) > self.config.t:
            raise ValueError("mobile adversary exceeds t corruptions in a phase")
        self.phase += 1
        phase = self.phase

        # The adversary reads the corrupted nodes' current shares.
        exposed = {i: self.shares[i] for i in corrupted if i in self.shares}
        self.adversary_view[phase] = dict(exposed)

        adversary = (
            Adversary.crash_only(self.config.t, self.config.f, crash_plan)
            if crash_plan
            else Adversary.passive(self.config.t, self.config.f)
        )
        sim = Simulation(
            delay_model=delay_model or UniformDelay(),
            adversary=adversary,
            seed=(self.seed * 1009 + phase),
        )
        ca = CertificateAuthority(self.config.group)
        enroll_rng = random.Random(("proactive-pki", self.seed, phase).__repr__())
        nodes: dict[int, RenewalNode] = {}
        for i in range(1, self.config.n + 1):
            if i not in self.shares:
                continue  # node lost its share (e.g. crashed through a phase)
            keystore = KeyStore.enroll(i, ca, enroll_rng)
            node = RenewalNode(
                i,
                self.config,
                keystore,
                ca,
                phase=phase,
                prev_share=self.shares[i],
                prev_commitment=self.commitment,
            )
            sim.add_node(node)
            nodes[i] = node
        skews = clock_skews or {}
        for i in nodes:
            sim.inject(i, RenewInput(phase), at=skews.get(i, 0.0))
        sim.run(until=until)

        renewed = {
            i: node.renewed for i, node in nodes.items() if node.renewed is not None
        }
        if not renewed:
            raise RuntimeError(f"renewal phase {phase} did not complete")
        commitments = {out.commitment for out in renewed.values()}
        if len(commitments) != 1:
            raise AssertionError("renewal consistency violation")
        commitment = commitments.pop()
        # §5.1: safety over liveness — shares not renewed this phase are
        # gone (their owners deleted them when the protocol started).
        self.shares = {i: out.share for i, out in renewed.items()}
        self.commitment = commitment
        q_sets = {out.q_set for out in renewed.values()}
        if len(q_sets) != 1:
            raise AssertionError("renewal agreement violation on Q")
        report = PhaseReport(
            phase=phase,
            shares=dict(self.shares),
            commitment=commitment,
            metrics=sim.metrics,
            exposed_shares=exposed,
            q_set=q_sets.pop(),
        )
        self.reports.append(report)
        return report

    # -- oracle helpers for tests/benches ---------------------------------------------

    def reconstruct(self) -> int:
        """Reconstruct the current secret from the live share set."""
        if self.commitment is None:
            raise RuntimeError("no shares yet")
        shares = [Share(i, v, self.commitment) for i, v in self.shares.items()]
        return reconstruct_secret(shares, self.config.t, self.config.group.q)

    def exposed_union(self) -> dict[int, list[tuple[int, int]]]:
        """Everything the mobile adversary ever saw: phase -> (node, share)."""
        return {
            phase: sorted(view.items())
            for phase, view in self.adversary_view.items()
        }
