"""Proactive security (§5): phases, share renewal and share recovery.

Renewal refreshes every node's share at each phase boundary so that a
mobile adversary's collection of <= t shares per phase never combines
into the secret; recovery lets rebooted nodes reclaim their shares via
the HybridVSS help mechanism.
"""

from repro.proactive.messages import ClockTickMsg, RenewInput, RenewedOutput
from repro.proactive.renewal import RenewalNode, share_commitment_at
from repro.proactive.system import PhaseReport, ProactiveSystem

__all__ = [
    "ClockTickMsg",
    "PhaseReport",
    "ProactiveSystem",
    "RenewInput",
    "RenewalNode",
    "RenewedOutput",
    "share_commitment_at",
]
