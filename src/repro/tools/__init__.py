"""Developer tooling that ships with the package but stays off every
runtime path: documentation generators and similar build-time scripts.

* :mod:`repro.tools.gendocs` — emit ``docs/cli.md`` from the live
  argparse tree (``python -m repro.tools.gendocs``; ``--check`` is the
  CI regenerate-and-diff gate).
"""
